//! Small deterministic pseudo-random generator for Monte-Carlo studies.
//!
//! The workspace needs reproducible random streams (device-variation
//! sampling, synthetic workload traces, randomised property tests) but no
//! cryptographic strength, so a tiny self-contained generator beats an
//! external dependency. The core is xoshiro256++ seeded through
//! SplitMix64 — the combination recommended by the xoshiro authors for
//! arbitrary 64-bit seeds — plus the handful of distributions the
//! simulator uses (uniform ranges, the standard normal via Box–Muller).
//!
//! Reproducibility contract: for a fixed seed the sequence of values is
//! stable across platforms and releases, and [`Rng64::split`] derives
//! statistically independent per-task streams from one master seed so
//! parallel fan-out (one stream per Monte-Carlo sample) yields results
//! independent of the worker count.

/// One SplitMix64 step: advances `state` and returns the next value.
/// Used for seeding and for deriving sub-stream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use nvpg_numeric::rng::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0.25..0.75);
/// assert!((0.25..0.75).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seeds the generator from a single 64-bit value (via SplitMix64, so
    /// nearby seeds yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derives the seed of the `index`-th independent sub-stream of
    /// `master`. Deterministic in `(master, index)` only, so parallel
    /// workers produce identical streams regardless of scheduling.
    pub fn subseed(master: u64, index: u64) -> u64 {
        let mut sm = master ^ index.wrapping_mul(0xa076_1d64_78bd_642f);
        splitmix64(&mut sm)
    }

    /// Convenience: a generator for the `index`-th sub-stream.
    pub fn split(master: u64, index: u64) -> Self {
        Rng64::seed_from_u64(Self::subseed(master, index))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    #[inline]
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "gen_range requires a finite non-empty range"
        );
        let x = range.start + (range.end - range.start) * self.gen_f64();
        // Floating rounding can land exactly on `end`; fold it back.
        if x >= range.end {
            range.start
        } else {
            x
        }
    }

    /// Uniform integer sample in `[lo, hi)` (unbiased via rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(
            range.start < range.end,
            "gen_range_u64 requires a non-empty range"
        );
        let span = range.end - range.start;
        // Lemire-style rejection: retry while in the biased zone.
        let zone = u64::MAX - u64::MAX.wrapping_rem(span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + v % span;
            }
        }
    }

    /// Standard-normal sample via Box–Muller.
    #[inline]
    pub fn normal(&mut self) -> f64 {
        let u1 = self.gen_range(f64::MIN_POSITIVE..1.0);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = Rng64::seed_from_u64(0x5eed);
        let mut b = Rng64::seed_from_u64(0x5eed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(0x5eee);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_range_and_moments() {
        let mut rng = Rng64::seed_from_u64(1);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng64::seed_from_u64(42);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn integer_range_unbiased_endpoints() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range_u64(10..15);
            assert!((10..15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn substreams_are_schedule_independent() {
        // The stream for (master, i) must not depend on other streams
        // having been drawn — the property parallel Monte-Carlo relies on.
        let master = 0xdead_beef;
        let direct: Vec<u64> = (0..8).map(|i| Rng64::split(master, i).next_u64()).collect();
        let mut reversed: Vec<u64> = (0..8)
            .rev()
            .map(|i| Rng64::split(master, i).next_u64())
            .collect();
        reversed.reverse();
        assert_eq!(direct, reversed);
        // And the streams differ from each other.
        assert_ne!(direct[0], direct[1]);
    }
}
