//! Batched Newton solving: one symbolic schedule, many simultaneous points.
//!
//! Monte-Carlo variation, thermal sweeps, and BET design-space scans all
//! solve the *same topology* at different parameter points. The serial path
//! pays structure costs per point: dense workspace sizing, sparse ordering +
//! symbolic analysis, Newton driver bookkeeping. This module amortises all
//! of that across a batch of lanes:
//!
//! * [`BatchedSolver`] — the backend trait, shaped as four explicit phases
//!   (**upload** per-lane assembly → **factor** over the whole stack →
//!   **solve** over the whole stack → results read back by the caller) with
//!   no borrowed iterators crossing a phase boundary, so a GPU backend can
//!   later implement the same trait with device-resident stacks and bulk
//!   transfers at the phase edges.
//! * [`BatchedDenseLu`] — a stack of same-size dense Jacobians factored by
//!   the *same* `factor_in_place`/`substitute_in_place` kernels the serial
//!   [`LuWorkspace`](crate::matrix::LuWorkspace) uses. A batched dense lane
//!   therefore reproduces the serial plain-Newton result **bit for bit**.
//! * [`BatchedSparseLu`] — one [`SparseLu`] symbolic analysis (ordering,
//!   pivot sequence, L/U patterns, scratch) shared by every lane; only the
//!   numeric L/U values live per lane, filled by the fixed-pattern
//!   refactorisation. The symbolic cost is paid once per batch *series*,
//!   not once per point — the serial path pays it once per point.
//! * [`BatchedNewton`] — a lock-step Newton driver with per-lane
//!   convergence masking. Converged lanes stop evaluating; lanes that hit
//!   any rescue-worthy condition (singular/unstable factorisation,
//!   non-finite state, iteration limit, cancellation) **peel off** with a
//!   [`PeelReason`] so the caller can rerun just those points through the
//!   serial rescue ladder, preserving fail-soft semantics and the
//!   `RunReport` taxonomy per point.
//!
//! The driver intentionally supports only plain damped Newton (no
//! backtracking line search, no modified-Newton Jacobian reuse): those are
//! rescue-path features, and rescue happens serially after a peel.

use crate::cancel;
use crate::matrix::{self, DenseMatrix};
use crate::newton::{NewtonOptions, NonlinearSystem};
use crate::sparse::{CscMatrix, SparseLu, SparsePattern};

/// Per-lane result of a [`BatchedNewton::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOutcome {
    /// The lane converged under the same per-unknown tolerances as the
    /// serial driver.
    Converged {
        /// Iterations taken (counting the converging one).
        iterations: usize,
    },
    /// The lane left the lock-step batch; the caller should resolve this
    /// point through the serial rescue ladder.
    Peeled {
        /// Iteration at which the lane peeled off.
        iteration: usize,
        /// Why it peeled.
        reason: PeelReason,
    },
}

/// Why a lane peeled off the lock-step batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeelReason {
    /// The lane's Jacobian failed to factor (dense backend, or the sparse
    /// backend's anchor full factorisation).
    SingularJacobian {
        /// Pivot column at which factorisation failed.
        column: usize,
    },
    /// The shared pivot sequence is not numerically admissible for this
    /// lane's values (sparse backend only).
    UnstableRefactor,
    /// A residual or state entry went non-finite.
    NonFiniteState,
    /// The lane did not converge within `max_iter` lock-step iterations.
    IterationLimit,
    /// A cancellation token fired while the lane was still active.
    Cancelled,
}

/// Per-lane factor-phase status reported by [`BatchedSolver::factor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneFactor {
    /// Factorisation succeeded; the lane can be solved.
    Ok,
    /// Factorisation failed at the given pivot column.
    Singular(usize),
    /// The cached pivot sequence rejected this lane's values.
    Unstable,
}

/// A batched linear-solver backend: a stack of same-structure Jacobians
/// factored and solved lane-wise.
///
/// The trait is deliberately phase-structured for GPU-readiness:
///
/// 1. **upload** — per-lane residual + Jacobian assembly into the backend's
///    stack (host-side for the CPU backends; a device transfer later);
/// 2. **factor** — factorise every active lane in one call over the stack;
/// 3. **solve** — solve `J·Δ = -F` for every active lane in one call;
/// 4. results are read from caller-owned flat buffers (the download phase).
///
/// No references are held across phase boundaries, so a device backend can
/// keep the stacks resident and synchronise only at the edges.
pub trait BatchedSolver {
    /// Unknowns per lane.
    fn dim(&self) -> usize;

    /// Number of lanes in the stack.
    fn lanes(&self) -> usize;

    /// Assembles lane `lane`'s residual and Jacobian at state `x`.
    ///
    /// `x` and `residual` are single-lane slices of length [`dim`]
    /// (BatchedSolver::dim); `residual` arrives zeroed.
    fn upload<S: NonlinearSystem>(
        &mut self,
        lane: usize,
        system: &mut S,
        x: &[f64],
        residual: &mut [f64],
    );

    /// Factorises every lane with `active[lane]` set, writing a
    /// [`LaneFactor`] per active lane into `results` (inactive entries are
    /// left untouched).
    fn factor(&mut self, active: &[bool], results: &mut [LaneFactor]);

    /// Solves `J_lane · Δ_lane = -F_lane` for every active lane whose last
    /// factor phase reported [`LaneFactor::Ok`].
    ///
    /// `residuals` and `deltas` are flat `lanes × dim` buffers; lane `i`
    /// occupies `i*dim..(i+1)*dim`.
    fn solve_neg(
        &mut self,
        active: &[bool],
        results: &[LaneFactor],
        residuals: &[f64],
        deltas: &mut [f64],
    );
}

/// Batched dense backend: a stack of row-major LU factorisations sharing
/// the serial kernels, so each lane is bit-identical to a serial
/// plain-Newton solve of the same point.
#[derive(Debug, Clone)]
pub struct BatchedDenseLu {
    n: usize,
    jac: Vec<DenseMatrix>,
    /// `lanes × n²` factor stack.
    lu: Vec<f64>,
    /// `lanes × n` permutation stack.
    perm: Vec<usize>,
}

impl BatchedDenseLu {
    /// A dense stack of `lanes` lanes of `n` unknowns each. All buffers are
    /// allocated here; the solve phases allocate nothing.
    pub fn new(n: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a batch needs at least one lane");
        BatchedDenseLu {
            n,
            jac: (0..lanes).map(|_| DenseMatrix::zeros(n, n)).collect(),
            lu: vec![0.0; lanes * n * n],
            perm: vec![0; lanes * n],
        }
    }
}

impl BatchedSolver for BatchedDenseLu {
    fn dim(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.jac.len()
    }

    fn upload<S: NonlinearSystem>(
        &mut self,
        lane: usize,
        system: &mut S,
        x: &[f64],
        residual: &mut [f64],
    ) {
        let jac = &mut self.jac[lane];
        jac.clear();
        system.eval(x, residual, jac);
    }

    fn factor(&mut self, active: &[bool], results: &mut [LaneFactor]) {
        let n = self.n;
        let nn = n * n;
        for (lane, jac) in self.jac.iter().enumerate() {
            if !active[lane] {
                continue;
            }
            // Mirror `LuWorkspace::factor_from`: copy, identity permutation,
            // then the shared in-place kernel — the bit-identity contract.
            let lu = &mut self.lu[lane * nn..(lane + 1) * nn];
            let perm = &mut self.perm[lane * n..(lane + 1) * n];
            lu.copy_from_slice(jac.data());
            for (i, p) in perm.iter_mut().enumerate() {
                *p = i;
            }
            results[lane] = match matrix::factor_in_place(n, lu, perm) {
                Ok(_sign) => LaneFactor::Ok,
                Err(err) => LaneFactor::Singular(err.column),
            };
        }
    }

    fn solve_neg(
        &mut self,
        active: &[bool],
        results: &[LaneFactor],
        residuals: &[f64],
        deltas: &mut [f64],
    ) {
        let n = self.n;
        let nn = n * n;
        for lane in 0..self.jac.len() {
            if !active[lane] || results[lane] != LaneFactor::Ok {
                continue;
            }
            let lu = &self.lu[lane * nn..(lane + 1) * nn];
            let perm = &self.perm[lane * n..(lane + 1) * n];
            let b = &residuals[lane * n..(lane + 1) * n];
            let x = &mut deltas[lane * n..(lane + 1) * n];
            // Mirror `LuWorkspace::solve_neg_into`.
            for i in 0..n {
                x[i] = -b[perm[i]];
            }
            matrix::substitute_in_place(n, lu, x);
        }
    }
}

/// Batched sparse backend: one [`SparseLu`] symbolic analysis (fill-reducing
/// ordering, pivot sequence, L/U patterns, elimination scratch) shared by
/// all lanes, with per-lane numeric L/U value stacks.
///
/// The first [`factor`](BatchedSolver::factor) call performs one full
/// (re-pivoting, symbolic) factorisation on the first factorable active lane
/// to establish the schedule, allocates the value stacks, and then runs the
/// fixed-pattern refactorisation for every lane — including the anchor lane,
/// so all lanes go through the identical numeric path. Later calls (and
/// later batches through the same backend) only refactorise. A lane whose
/// values don't admit the shared pivot sequence reports
/// [`LaneFactor::Unstable`] and is peeled to the serial rescue ladder, which
/// re-pivots for that point alone.
#[derive(Debug, Clone)]
pub struct BatchedSparseLu {
    jac: Vec<CscMatrix>,
    lu: SparseLu,
    /// `lanes × nnz(L)` numeric stack (allocated at symbolic establishment).
    l_stack: Vec<f64>,
    /// `lanes × nnz(U)` numeric stack.
    u_stack: Vec<f64>,
    symbolic_ready: bool,
}

impl BatchedSparseLu {
    /// A sparse stack of `lanes` lanes over one structural `pattern`.
    ///
    /// The L/U value stacks are sized by the symbolic analysis, so they are
    /// allocated on the first factor phase rather than here; everything
    /// after that first phase is allocation-free.
    pub fn new(pattern: &SparsePattern, lanes: usize) -> Self {
        assert!(lanes > 0, "a batch needs at least one lane");
        BatchedSparseLu {
            jac: (0..lanes)
                .map(|_| CscMatrix::from_pattern(pattern))
                .collect(),
            lu: SparseLu::new(),
            l_stack: Vec::new(),
            u_stack: Vec::new(),
            symbolic_ready: false,
        }
    }

    /// The shared factorisation workspace (symbolic/refactorisation
    /// telemetry).
    pub fn sparse_lu(&self) -> &SparseLu {
        &self.lu
    }
}

impl BatchedSolver for BatchedSparseLu {
    fn dim(&self) -> usize {
        self.jac[0].dim()
    }

    fn lanes(&self) -> usize {
        self.jac.len()
    }

    fn upload<S: NonlinearSystem>(
        &mut self,
        lane: usize,
        system: &mut S,
        x: &[f64],
        residual: &mut [f64],
    ) {
        let jac = &mut self.jac[lane];
        jac.clear();
        assert!(
            system.eval_sparse(x, residual, jac),
            "batched sparse backend requires NonlinearSystem::eval_sparse support"
        );
    }

    fn factor(&mut self, active: &[bool], results: &mut [LaneFactor]) {
        let lanes = self.jac.len();
        for lane in 0..lanes {
            if active[lane] {
                results[lane] = LaneFactor::Ok;
            }
        }
        if !self.symbolic_ready {
            // Establish the shared schedule from the first factorable
            // active lane; lanes the anchor attempt rejects peel as
            // singular exactly as a serial solve of that point would.
            let mut anchored = false;
            for lane in 0..lanes {
                if !active[lane] {
                    continue;
                }
                match self.lu.factor(&self.jac[lane]) {
                    Ok(()) => {
                        anchored = true;
                        break;
                    }
                    Err(err) => results[lane] = LaneFactor::Singular(err.column),
                }
            }
            if !anchored {
                return;
            }
            self.l_stack = vec![0.0; lanes * self.lu.nnz_l()];
            self.u_stack = vec![0.0; lanes * self.lu.nnz_u()];
            self.symbolic_ready = true;
        }
        let nl = self.lu.nnz_l();
        let nu = self.lu.nnz_u();
        let BatchedSparseLu {
            jac,
            lu,
            l_stack,
            u_stack,
            ..
        } = self;
        for lane in 0..lanes {
            if !active[lane] || results[lane] != LaneFactor::Ok {
                continue;
            }
            let l = &mut l_stack[lane * nl..(lane + 1) * nl];
            let u = &mut u_stack[lane * nu..(lane + 1) * nu];
            if lu.refactor_into(&jac[lane], l, u).is_err() {
                results[lane] = LaneFactor::Unstable;
            }
        }
    }

    fn solve_neg(
        &mut self,
        active: &[bool],
        results: &[LaneFactor],
        residuals: &[f64],
        deltas: &mut [f64],
    ) {
        let n = self.dim();
        let nl = self.lu.nnz_l();
        let nu = self.lu.nnz_u();
        for lane in 0..self.jac.len() {
            if !active[lane] || results[lane] != LaneFactor::Ok {
                continue;
            }
            let l = &self.l_stack[lane * nl..(lane + 1) * nl];
            let u = &self.u_stack[lane * nu..(lane + 1) * nu];
            self.lu.solve_neg_with(
                l,
                u,
                &residuals[lane * n..(lane + 1) * n],
                &mut deltas[lane * n..(lane + 1) * n],
            );
        }
    }
}

/// Lock-step Newton over a [`BatchedSolver`] stack with per-lane
/// convergence masking.
///
/// Each lane follows exactly the serial plain-Newton iteration of
/// [`NewtonSolver::solve`](crate::newton::NewtonSolver::solve) —
/// cancellation checkpoint, residual/Jacobian assembly, NaN-guarded ∞-norm,
/// factorisation, damped update, combined abs/rel per-unknown convergence
/// test — but all active lanes advance together so the factor and solve
/// phases run over the whole stack. Converged lanes leave the active mask
/// and stop costing anything; lanes that hit a rescue condition peel with a
/// [`PeelReason`] for the caller to resolve serially.
///
/// After construction (and, for the sparse backend, the first factor phase)
/// the steady state performs no heap allocation.
#[derive(Debug, Clone)]
pub struct BatchedNewton<B> {
    solver: B,
    options: NewtonOptions,
    /// Flat `lanes × n` residual stack.
    residuals: Vec<f64>,
    /// Flat `lanes × n` update stack.
    deltas: Vec<f64>,
    /// Lock-step mask: which lanes are still iterating.
    active: Vec<bool>,
    /// Factor-phase status per lane.
    factor_status: Vec<LaneFactor>,
    /// Residual ∞-norm per lane (this iteration).
    res_norm: Vec<f64>,
}

impl<B: BatchedSolver> BatchedNewton<B> {
    /// Wraps a backend stack with a Newton driver.
    ///
    /// # Panics
    ///
    /// Panics if `options` enables the backtracking line search or
    /// modified-Newton Jacobian reuse — both are serial rescue-path
    /// features; batched callers must peel instead.
    pub fn new(solver: B, options: NewtonOptions) -> Self {
        assert_eq!(
            options.backtrack, 0,
            "batched Newton does not support backtracking; peel to serial"
        );
        assert!(
            !options.reuse_jacobian,
            "batched Newton does not support Jacobian reuse; peel to serial"
        );
        let n = solver.dim();
        let lanes = solver.lanes();
        BatchedNewton {
            solver,
            options,
            residuals: vec![0.0; lanes * n],
            deltas: vec![0.0; lanes * n],
            active: vec![false; lanes],
            factor_status: vec![LaneFactor::Ok; lanes],
            res_norm: vec![0.0; lanes],
        }
    }

    /// Unknowns per lane.
    pub fn dim(&self) -> usize {
        self.solver.dim()
    }

    /// Lanes in the backend stack.
    pub fn lanes(&self) -> usize {
        self.solver.lanes()
    }

    /// The backend (telemetry access).
    pub fn solver(&self) -> &B {
        &self.solver
    }

    /// Runs lock-step Newton over `systems`, one lane per system.
    ///
    /// `x` is a flat `systems.len() × dim` stack of initial states, updated
    /// in place; `outcomes` receives one [`LaneOutcome`] per system. A tail
    /// batch may use fewer systems than the backend has lanes.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or `systems.len() > lanes()`.
    #[allow(clippy::needless_range_loop)] // `lane` walks active/outcomes/norms in lockstep
    pub fn solve<S: NonlinearSystem>(
        &mut self,
        systems: &mut [S],
        x: &mut [f64],
        outcomes: &mut [LaneOutcome],
    ) {
        let n = self.solver.dim();
        let lanes = self.solver.lanes();
        let used = systems.len();
        assert!(used <= lanes, "more systems than backend lanes");
        assert_eq!(
            x.len(),
            used * n,
            "state stack length must be systems × dim"
        );
        assert_eq!(outcomes.len(), used, "one outcome slot per system");
        for system in systems.iter() {
            assert_eq!(system.dim(), n, "every lane must match the backend dim");
        }

        for lane in 0..lanes {
            self.active[lane] = lane < used;
        }
        for out in outcomes.iter_mut() {
            *out = LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::IterationLimit,
            };
        }
        let mut remaining = used;

        for iter in 0..self.options.max_iter {
            if remaining == 0 {
                return;
            }
            // One cancellation checkpoint per lock-step iteration, like the
            // serial driver's one per iteration.
            if cancel::checkpoint() {
                for lane in 0..used {
                    if self.active[lane] {
                        self.active[lane] = false;
                        outcomes[lane] = LaneOutcome::Peeled {
                            iteration: iter,
                            reason: PeelReason::Cancelled,
                        };
                    }
                }
                return;
            }

            // Upload phase: assemble residual + Jacobian per active lane,
            // with the serial driver's NaN-guarded ∞-norm.
            for lane in 0..used {
                if !self.active[lane] {
                    continue;
                }
                let res = &mut self.residuals[lane * n..(lane + 1) * n];
                res.fill(0.0);
                self.solver
                    .upload(lane, &mut systems[lane], &x[lane * n..(lane + 1) * n], res);
                let mut norm = 0.0f64;
                let mut finite = true;
                for r in self.residuals[lane * n..(lane + 1) * n].iter() {
                    if !r.is_finite() {
                        finite = false;
                        break;
                    }
                    if r.abs() > norm {
                        norm = r.abs();
                    }
                }
                if !finite {
                    self.active[lane] = false;
                    remaining -= 1;
                    outcomes[lane] = LaneOutcome::Peeled {
                        iteration: iter,
                        reason: PeelReason::NonFiniteState,
                    };
                    continue;
                }
                self.res_norm[lane] = norm;
            }
            if remaining == 0 {
                return;
            }

            // Factor phase over the whole stack.
            self.solver.factor(&self.active, &mut self.factor_status);
            for lane in 0..used {
                if !self.active[lane] {
                    continue;
                }
                let reason = match self.factor_status[lane] {
                    LaneFactor::Ok => continue,
                    // The sparse backends bail out of long factorisations
                    // when a token fires mid-factor; mirror the serial
                    // driver's re-classification.
                    _ if cancel::cancelled() => PeelReason::Cancelled,
                    LaneFactor::Singular(column) => PeelReason::SingularJacobian { column },
                    LaneFactor::Unstable => PeelReason::UnstableRefactor,
                };
                self.active[lane] = false;
                remaining -= 1;
                outcomes[lane] = LaneOutcome::Peeled {
                    iteration: iter,
                    reason,
                };
            }
            if remaining == 0 {
                return;
            }

            // Solve phase over the whole stack: J·Δ = -F per lane.
            self.solver.solve_neg(
                &self.active,
                &self.factor_status,
                &self.residuals,
                &mut self.deltas,
            );

            // Update + convergence test, exactly the serial per-component
            // arithmetic (damping clamp, abs+rel tolerance at the updated
            // state, residual-norm gate).
            for lane in 0..used {
                if !self.active[lane] {
                    continue;
                }
                let delta = &mut self.deltas[lane * n..(lane + 1) * n];
                if self.options.max_step.is_finite() {
                    for d in delta.iter_mut() {
                        *d = d.clamp(-self.options.max_step, self.options.max_step);
                    }
                }
                let xs = &mut x[lane * n..(lane + 1) * n];
                let mut converged = true;
                let mut nonfinite = false;
                for (xi, di) in xs.iter_mut().zip(delta.iter()) {
                    *xi += di;
                    if !xi.is_finite() {
                        nonfinite = true;
                        break;
                    }
                    let tol = self.options.abstol + self.options.reltol * xi.abs();
                    if di.abs() > tol {
                        converged = false;
                    }
                }
                if nonfinite {
                    self.active[lane] = false;
                    remaining -= 1;
                    outcomes[lane] = LaneOutcome::Peeled {
                        iteration: iter,
                        reason: PeelReason::NonFiniteState,
                    };
                    continue;
                }
                if converged && self.res_norm[lane] <= self.options.residual_tol {
                    self.active[lane] = false;
                    remaining -= 1;
                    outcomes[lane] = LaneOutcome::Converged {
                        iterations: iter + 1,
                    };
                }
            }
        }

        for lane in 0..used {
            if self.active[lane] {
                self.active[lane] = false;
                outcomes[lane] = LaneOutcome::Peeled {
                    iteration: self.options.max_iter,
                    reason: PeelReason::IterationLimit,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newton::NewtonSolver;
    use crate::sparse::PatternBuilder;

    /// `F_i = x_i + 0.3·x_{(i+1) mod n} + c·x_i³ − b_i`: mildly nonlinear,
    /// well-conditioned, with a cyclic off-diagonal so dense and sparse
    /// assembly exercise real structure.
    struct Ring {
        n: usize,
        c: f64,
        b: Vec<f64>,
        /// Test hook: suppress Jacobian stamps to force a singular factor.
        singular: bool,
    }

    impl Ring {
        fn new(n: usize, c: f64, shift: f64) -> Self {
            Ring {
                n,
                c,
                b: (0..n).map(|i| shift + 0.1 * i as f64).collect(),
                singular: false,
            }
        }

        fn pattern(n: usize) -> SparsePattern {
            let mut p = PatternBuilder::new(n);
            for i in 0..n {
                p.add(i, i);
                p.add(i, (i + 1) % n);
            }
            p.build()
        }
    }

    impl NonlinearSystem for Ring {
        fn dim(&self) -> usize {
            self.n
        }

        fn eval(&mut self, x: &[f64], residual: &mut [f64], jacobian: &mut DenseMatrix) {
            for i in 0..self.n {
                let j = (i + 1) % self.n;
                residual[i] = x[i] + 0.3 * x[j] + self.c * x[i] * x[i] * x[i] - self.b[i];
                if !self.singular {
                    jacobian.add(i, i, 1.0 + 3.0 * self.c * x[i] * x[i]);
                    jacobian.add(i, j, 0.3);
                }
            }
        }

        fn eval_sparse(
            &mut self,
            x: &[f64],
            residual: &mut [f64],
            jacobian: &mut CscMatrix,
        ) -> bool {
            for i in 0..self.n {
                let j = (i + 1) % self.n;
                residual[i] = x[i] + 0.3 * x[j] + self.c * x[i] * x[i] * x[i] - self.b[i];
                if !self.singular {
                    jacobian.add(i, i, 1.0 + 3.0 * self.c * x[i] * x[i]);
                    jacobian.add(i, j, 0.3);
                }
            }
            true
        }
    }

    fn opts() -> NewtonOptions {
        NewtonOptions {
            max_iter: 50,
            ..NewtonOptions::default()
        }
    }

    #[test]
    fn batched_dense_matches_serial_bitwise() {
        let n = 7;
        let lanes = 5;
        let mut systems: Vec<Ring> = (0..lanes)
            .map(|k| Ring::new(n, 0.05, 0.5 + 0.3 * k as f64))
            .collect();
        let mut x = vec![0.0; lanes * n];
        let mut outcomes = vec![
            LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::IterationLimit
            };
            lanes
        ];
        let mut newton = BatchedNewton::new(BatchedDenseLu::new(n, lanes), opts());
        newton.solve(&mut systems, &mut x, &mut outcomes);

        for k in 0..lanes {
            let mut serial = NewtonSolver::new(opts());
            let mut sys = Ring::new(n, 0.05, 0.5 + 0.3 * k as f64);
            let mut xs = vec![0.0; n];
            let out = serial.solve(&mut sys, &mut xs);
            let serial_iters = match out {
                crate::newton::NewtonOutcome::Converged { iterations } => iterations,
                other => panic!("serial lane {k} did not converge: {other:?}"),
            };
            assert_eq!(
                outcomes[k],
                LaneOutcome::Converged {
                    iterations: serial_iters
                },
                "lane {k} iteration history diverged"
            );
            for i in 0..n {
                assert_eq!(
                    x[k * n + i].to_bits(),
                    xs[i].to_bits(),
                    "lane {k} unknown {i} not bit-identical"
                );
            }
        }
    }

    #[test]
    fn batched_sparse_matches_serial_within_tolerance() {
        let n = 40;
        let lanes = 6;
        let pattern = Ring::pattern(n);
        let mut systems: Vec<Ring> = (0..lanes)
            .map(|k| Ring::new(n, 0.02, 0.4 + 0.25 * k as f64))
            .collect();
        let mut x = vec![0.0; lanes * n];
        let mut outcomes = vec![
            LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::IterationLimit
            };
            lanes
        ];
        let mut newton = BatchedNewton::new(BatchedSparseLu::new(&pattern, lanes), opts());
        newton.solve(&mut systems, &mut x, &mut outcomes);

        for k in 0..lanes {
            assert!(
                matches!(outcomes[k], LaneOutcome::Converged { .. }),
                "lane {k}: {:?}",
                outcomes[k]
            );
            let mut serial = NewtonSolver::with_sparse(opts(), &pattern);
            let mut sys = Ring::new(n, 0.02, 0.4 + 0.25 * k as f64);
            let mut xs = vec![0.0; n];
            let out = serial.solve(&mut sys, &mut xs);
            assert!(
                matches!(out, crate::newton::NewtonOutcome::Converged { .. }),
                "serial lane {k}: {out:?}"
            );
            for i in 0..n {
                let d = (x[k * n + i] - xs[i]).abs();
                let tol = 1e-9 + 1e-9 * xs[i].abs();
                assert!(
                    d <= tol,
                    "lane {k} unknown {i}: batched {} vs serial {}",
                    x[k * n + i],
                    xs[i]
                );
            }
        }
        // One symbolic analysis for the whole batch.
        assert_eq!(newton.solver().sparse_lu().full_factorizations(), 1);
    }

    #[test]
    fn singular_lane_peels_others_converge() {
        let n = 5;
        let lanes = 3;
        let mut systems: Vec<Ring> = (0..lanes)
            .map(|k| Ring::new(n, 0.05, 0.6 + 0.2 * k as f64))
            .collect();
        systems[1].singular = true;
        let mut x = vec![0.0; lanes * n];
        let mut outcomes = vec![
            LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::IterationLimit
            };
            lanes
        ];
        let mut newton = BatchedNewton::new(BatchedDenseLu::new(n, lanes), opts());
        newton.solve(&mut systems, &mut x, &mut outcomes);

        assert!(matches!(outcomes[0], LaneOutcome::Converged { .. }));
        assert!(matches!(
            outcomes[1],
            LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::SingularJacobian { .. }
            }
        ));
        assert!(matches!(outcomes[2], LaneOutcome::Converged { .. }));
    }

    #[test]
    fn sparse_backend_reuses_symbolic_across_batches() {
        let n = 24;
        let lanes = 4;
        let pattern = Ring::pattern(n);
        let mut newton = BatchedNewton::new(BatchedSparseLu::new(&pattern, lanes), opts());
        for round in 0..3 {
            let mut systems: Vec<Ring> = (0..lanes)
                .map(|k| Ring::new(n, 0.02, 0.3 + 0.2 * (round * lanes + k) as f64))
                .collect();
            let mut x = vec![0.0; lanes * n];
            let mut outcomes = vec![
                LaneOutcome::Peeled {
                    iteration: 0,
                    reason: PeelReason::IterationLimit
                };
                lanes
            ];
            newton.solve(&mut systems, &mut x, &mut outcomes);
            for (k, o) in outcomes.iter().enumerate() {
                assert!(
                    matches!(o, LaneOutcome::Converged { .. }),
                    "round {round} lane {k}: {o:?}"
                );
            }
        }
        assert_eq!(newton.solver().sparse_lu().full_factorizations(), 1);
    }

    #[test]
    fn tail_batch_uses_fewer_lanes() {
        let n = 6;
        let mut newton = BatchedNewton::new(BatchedDenseLu::new(n, 8), opts());
        let mut systems: Vec<Ring> = (0..3)
            .map(|k| Ring::new(n, 0.05, 0.5 + 0.1 * k as f64))
            .collect();
        let mut x = vec![0.0; 3 * n];
        let mut outcomes = vec![
            LaneOutcome::Peeled {
                iteration: 0,
                reason: PeelReason::IterationLimit
            };
            3
        ];
        newton.solve(&mut systems, &mut x, &mut outcomes);
        for o in &outcomes {
            assert!(matches!(o, LaneOutcome::Converged { .. }));
        }
    }
}
