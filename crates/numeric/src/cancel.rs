//! Cooperative cancellation: shared tokens with deadlines, polled from the
//! solver hot loops.
//!
//! A [`CancelToken`] is a cheap, clonable handle (one `Arc`) carrying a
//! cancellation flag, an optional deadline, a first-cause reason, and a
//! progress heartbeat. Cancellation is *cooperative*: nothing is interrupted
//! pre-emptively; instead the long-running loops in this workspace — the
//! Newton iteration loop, the transient step loop, the DC rescue ladder, and
//! the sparse factorisation column loop — poll [`checkpoint`] and unwind
//! with a typed outcome when the installed token has fired.
//!
//! # Scoping
//!
//! Tokens reach the solver loops through a thread-local scope rather than
//! through every function signature: [`with_token`] installs a token for the
//! duration of a closure (panic-safe, restores the previous token on exit),
//! and [`checkpoint`]/[`cancelled`] poll whatever is installed. When no
//! token is installed a poll is a single thread-local read — effectively
//! free — so code that never uses cancellation pays nothing. This mirrors
//! the thread-scoped fault-injection plan in `nvpg-circuit`.
//!
//! Because the token itself is shared (`Arc`), another thread — a server
//! watchdog, a client-disconnect monitor — can hold a clone and fire
//! [`CancelToken::cancel`] while the solve thread polls. The deadline is
//! checked lazily at each poll, so an expired deadline latches the cancelled
//! flag with the reason `"deadline exceeded"` on the next checkpoint.
//!
//! # Heartbeats
//!
//! Every [`checkpoint`] bumps the token's progress counter. A watchdog can
//! sample [`CancelToken::progress`] and fire cancellation when the counter
//! stops advancing: a solve that is merely *slow* keeps beating, one that is
//! wedged (or starved) does not.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sentinel for "no deadline" in `deadline_ns`.
const NO_DEADLINE: u64 = u64::MAX;

struct Inner {
    cancelled: AtomicBool,
    /// Deadline as nanoseconds after `started`; `NO_DEADLINE` when unarmed.
    deadline_ns: AtomicU64,
    /// Monotone progress heartbeat, bumped by every solver checkpoint.
    progress: AtomicU64,
    /// First cancellation cause; later causes are ignored.
    reason: Mutex<Option<String>>,
    started: Instant,
}

/// A shared cancellation token. Clones refer to the same underlying state.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                progress: AtomicU64::new(0),
                reason: Mutex::new(None),
                started: Instant::now(),
            }),
        }
    }

    /// A fresh token that auto-cancels `deadline` after creation.
    pub fn with_deadline(deadline: Duration) -> Self {
        let t = Self::new();
        t.set_deadline(deadline);
        t
    }

    /// Arms (or tightens) the deadline, measured from token creation. A
    /// later call can only move the deadline earlier, never extend it.
    pub fn set_deadline(&self, deadline: Duration) {
        let ns = u64::try_from(deadline.as_nanos()).unwrap_or(NO_DEADLINE - 1);
        self.inner.deadline_ns.fetch_min(ns, Ordering::Relaxed);
    }

    /// The armed deadline measured from token creation, if any.
    pub fn deadline(&self) -> Option<Duration> {
        match self.inner.deadline_ns.load(Ordering::Relaxed) {
            NO_DEADLINE => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Fires cancellation with `reason`. The first reason wins; subsequent
    /// calls are no-ops. Safe to call from any thread.
    pub fn cancel(&self, reason: &str) {
        {
            let mut slot = self.inner.reason.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(reason.to_owned());
            }
        }
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once the token has been cancelled or its deadline has passed.
    /// An expired deadline latches the flag with reason `"deadline
    /// exceeded"` so later polls are flag-only.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE {
            let elapsed = self.inner.started.elapsed().as_nanos();
            if elapsed >= u128::from(deadline) {
                self.cancel("deadline exceeded");
                return true;
            }
        }
        false
    }

    /// The recorded cancellation cause (empty-cause tokens report
    /// `"cancelled"`).
    pub fn reason(&self) -> String {
        self.inner
            .reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
            .unwrap_or_else(|| "cancelled".to_owned())
    }

    /// Wall-clock time since the token was created.
    pub fn elapsed(&self) -> Duration {
        self.inner.started.elapsed()
    }

    /// Bumps the progress heartbeat (one solver checkpoint).
    pub fn heartbeat(&self) {
        self.inner.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// The heartbeat counter. Monotone; a stalled solve stops advancing it.
    pub fn progress(&self) -> u64 {
        self.inner.progress.load(Ordering::Relaxed)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Installs `token` as the current thread's cancellation scope for the
/// duration of `f`. Nests: the previous token (if any) is restored on exit,
/// including on panic.
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(token.clone()));
    let _restore = Restore(prev);
    f()
}

/// Runs `f` with *no* active token, shielding work that must not inherit
/// the caller's cancellation — e.g. process-wide one-time initialisation
/// whose result outlives any single request (a half-cancelled
/// initialisation would poison every later caller). Restores the previous
/// scope on exit, including on panic.
pub fn shielded<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| a.borrow_mut().take());
    let _restore = Restore(prev);
    f()
}

/// One solver checkpoint: bumps the installed token's heartbeat and reports
/// whether it has been cancelled. A single thread-local read when no token
/// is installed.
pub fn checkpoint() -> bool {
    ACTIVE.with(|a| match a.borrow().as_ref() {
        None => false,
        Some(t) => {
            t.heartbeat();
            t.is_cancelled()
        }
    })
}

/// Polls the installed token without beating the heart. Used by watchers
/// that must not mask a stall by registering progress themselves.
pub fn cancelled() -> bool {
    ACTIVE.with(|a| a.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// Cause and elapsed time of the installed token, for error construction
/// after a checkpoint fired. `None` when no token is installed.
pub fn details() -> Option<(String, Duration)> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|t| (t.reason(), t.elapsed())))
}

/// A clone of the installed token, if any — lets a driver loop re-install
/// the scope on worker threads it spawns.
pub fn current() -> Option<CancelToken> {
    ACTIVE.with(|a| a.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled_and_polls_are_false() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        assert!(!checkpoint(), "no installed token");
        assert!(!cancelled());
        assert_eq!(details(), None);
    }

    #[test]
    fn cancel_latches_first_reason() {
        let t = CancelToken::new();
        t.cancel("client disconnected");
        t.cancel("deadline exceeded");
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), "client disconnected");
    }

    #[test]
    fn deadline_fires_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), "deadline exceeded");
    }

    #[test]
    fn set_deadline_only_tightens() {
        let t = CancelToken::with_deadline(Duration::from_secs(1));
        t.set_deadline(Duration::from_secs(30));
        assert_eq!(t.deadline(), Some(Duration::from_secs(1)));
        t.set_deadline(Duration::from_millis(10));
        assert_eq!(t.deadline(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn scope_installs_restores_and_nests() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        with_token(&outer, || {
            assert!(!checkpoint());
            with_token(&inner, || {
                inner.cancel("inner");
                assert!(checkpoint());
            });
            // Outer scope restored: outer token is still live.
            assert!(!cancelled());
            outer.cancel("outer");
            assert!(checkpoint());
            assert_eq!(details().unwrap().0, "outer");
        });
        assert!(!checkpoint(), "scope removed on exit");
    }

    #[test]
    fn scope_restores_on_panic() {
        let t = CancelToken::new();
        let caught = std::panic::catch_unwind(|| with_token(&t, || panic!("boom")));
        assert!(caught.is_err());
        assert!(!checkpoint(), "panic unwound the scope");
    }

    #[test]
    fn checkpoints_beat_the_heart_cross_thread() {
        let t = CancelToken::new();
        let watcher = t.clone();
        with_token(&t, || {
            for _ in 0..5 {
                assert!(!checkpoint());
            }
        });
        assert_eq!(watcher.progress(), 5);
        watcher.cancel("watchdog: progress stalled");
        with_token(&t, || assert!(checkpoint()));
        assert_eq!(t.reason(), "watchdog: progress stalled");
    }
}
