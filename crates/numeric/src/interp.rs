//! Table interpolation: linear and monotone cubic (Fritsch–Carlson).
//!
//! Cell characterisation produces tables such as leakage-vs-`V_CTRL`
//! (Fig. 3(a)) that downstream sweeps sample at arbitrary points. Monotone
//! cubic interpolation preserves the physical monotonicity of such curves
//! (no spurious ringing), while plain linear interpolation is used where
//! only bracketing accuracy matters.

use std::fmt;

/// Error returned when constructing an interpolant from invalid samples.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildInterpError {
    /// Fewer than two sample points were supplied.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
    },
    /// The x-coordinates are not strictly increasing at this index.
    NotStrictlyIncreasing {
        /// Index `i` where `x[i] >= x[i+1]`.
        index: usize,
    },
    /// x and y have different lengths.
    LengthMismatch {
        /// Length of the x slice.
        x_len: usize,
        /// Length of the y slice.
        y_len: usize,
    },
}

impl fmt::Display for BuildInterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildInterpError::TooFewPoints { got } => {
                write!(f, "need at least two sample points, got {got}")
            }
            BuildInterpError::NotStrictlyIncreasing { index } => {
                write!(
                    f,
                    "x values must be strictly increasing (violated at index {index})"
                )
            }
            BuildInterpError::LengthMismatch { x_len, y_len } => {
                write!(f, "x and y lengths differ: {x_len} vs {y_len}")
            }
        }
    }
}

impl std::error::Error for BuildInterpError {}

fn validate(x: &[f64], y: &[f64]) -> Result<(), BuildInterpError> {
    if x.len() != y.len() {
        return Err(BuildInterpError::LengthMismatch {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(BuildInterpError::TooFewPoints { got: x.len() });
    }
    for i in 0..x.len() - 1 {
        if x[i] >= x[i + 1] {
            return Err(BuildInterpError::NotStrictlyIncreasing { index: i });
        }
    }
    Ok(())
}

/// Piecewise-linear interpolant with constant extrapolation.
///
/// # Examples
///
/// ```
/// use nvpg_numeric::LinearInterp;
/// let f = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-1.0), 0.0);  // clamped
/// # Ok::<(), nvpg_numeric::interp::BuildInterpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant over strictly increasing `x`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildInterpError`] for mismatched lengths, fewer than two
    /// points, or non-increasing `x`.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, BuildInterpError> {
        validate(&x, &y)?;
        Ok(LinearInterp { x, y })
    }

    /// Evaluates the interpolant, clamping outside the sample range.
    pub fn eval(&self, xq: f64) -> f64 {
        let n = self.x.len();
        if xq <= self.x[0] {
            return self.y[0];
        }
        if xq >= self.x[n - 1] {
            return self.y[n - 1];
        }
        let idx = match self.x.partition_point(|&v| v <= xq) {
            0 => 0,
            i => i - 1,
        };
        let t = (xq - self.x[idx]) / (self.x[idx + 1] - self.x[idx]);
        self.y[idx] + t * (self.y[idx + 1] - self.y[idx])
    }

    /// The sampled x range.
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().expect("validated non-empty"))
    }
}

/// Monotonicity-preserving cubic Hermite interpolant (Fritsch–Carlson).
///
/// On monotone data the interpolant is monotone; on general data it is C¹
/// and overshoot-free within each interval. Extrapolation is constant.
///
/// # Examples
///
/// ```
/// use nvpg_numeric::MonotoneCubic;
/// let f = MonotoneCubic::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.1, 5.0, 5.1])?;
/// // Strictly inside the data's range despite the abrupt slope change:
/// for i in 0..=30 {
///     let y = f.eval(i as f64 / 10.0);
///     assert!((-1e-12..=5.1 + 1e-12).contains(&y));
/// }
/// # Ok::<(), nvpg_numeric::interp::BuildInterpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Endpoint-slope table (one tangent per sample).
    m: Vec<f64>,
}

impl MonotoneCubic {
    /// Builds the interpolant over strictly increasing `x`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildInterpError`] for mismatched lengths, fewer than two
    /// points, or non-increasing `x`.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self, BuildInterpError> {
        validate(&x, &y)?;
        let n = x.len();
        // Secant slopes.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (y[i + 1] - y[i]) / (x[i + 1] - x[i]))
            .collect();
        // Initial tangents: average of adjacent secants (one-sided at ends).
        let mut m = vec![0.0; n];
        m[0] = d[0];
        m[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            m[i] = if d[i - 1] * d[i] <= 0.0 {
                0.0 // local extremum: flat tangent preserves monotonicity
            } else {
                0.5 * (d[i - 1] + d[i])
            };
        }
        // Fritsch–Carlson limiter.
        for i in 0..n - 1 {
            if d[i] == 0.0 {
                m[i] = 0.0;
                m[i + 1] = 0.0;
            } else {
                let a = m[i] / d[i];
                let b = m[i + 1] / d[i];
                let s = a * a + b * b;
                if s > 9.0 {
                    let tau = 3.0 / s.sqrt();
                    m[i] = tau * a * d[i];
                    m[i + 1] = tau * b * d[i];
                }
            }
        }
        Ok(MonotoneCubic { x, y, m })
    }

    /// Evaluates the interpolant, clamping outside the sample range.
    pub fn eval(&self, xq: f64) -> f64 {
        let n = self.x.len();
        if xq <= self.x[0] {
            return self.y[0];
        }
        if xq >= self.x[n - 1] {
            return self.y[n - 1];
        }
        let idx = match self.x.partition_point(|&v| v <= xq) {
            0 => 0,
            i => i - 1,
        };
        let h = self.x[idx + 1] - self.x[idx];
        let t = (xq - self.x[idx]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.y[idx]
            + h10 * h * self.m[idx]
            + h01 * self.y[idx + 1]
            + h11 * h * self.m[idx + 1]
    }

    /// The sampled x range.
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], *self.x.last().expect("validated non-empty"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_samples_and_midpoints() {
        let f = LinearInterp::new(vec![0.0, 1.0, 3.0], vec![1.0, 3.0, -1.0]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(1.0), 3.0);
        assert_eq!(f.eval(3.0), -1.0);
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.eval(2.0), 1.0);
        assert_eq!(f.domain(), (0.0, 3.0));
    }

    #[test]
    fn linear_clamps_extrapolation() {
        let f = LinearInterp::new(vec![0.0, 1.0], vec![5.0, 6.0]).unwrap();
        assert_eq!(f.eval(-100.0), 5.0);
        assert_eq!(f.eval(100.0), 6.0);
    }

    #[test]
    fn cubic_interpolates_samples_exactly() {
        let x = vec![0.0, 0.5, 1.2, 2.0];
        let y = vec![1.0, 0.4, 0.1, 0.05];
        let f = MonotoneCubic::new(x.clone(), y.clone()).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((f.eval(*xi) - yi).abs() < 1e-12);
        }
    }

    #[test]
    fn cubic_preserves_monotonicity() {
        // Exponential-decay-like leakage data.
        let x: Vec<f64> = (0..9).map(|i| i as f64 * 0.025).collect();
        let y: Vec<f64> = x.iter().map(|v| 1e-9 * (-v / 0.03).exp()).collect();
        let f = MonotoneCubic::new(x, y).unwrap();
        let mut prev = f.eval(0.0);
        for i in 1..=200 {
            let cur = f.eval(i as f64 * 0.001);
            assert!(cur <= prev + 1e-18, "non-monotone at {i}");
            prev = cur;
        }
    }

    #[test]
    fn cubic_no_overshoot_on_step_data() {
        let f = MonotoneCubic::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        for i in 0..=300 {
            let y = f.eval(i as f64 / 100.0);
            assert!((-1e-12..=1.0 + 1e-12).contains(&y), "overshoot: {y}");
        }
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            LinearInterp::new(vec![0.0], vec![1.0]).unwrap_err(),
            BuildInterpError::TooFewPoints { got: 1 }
        );
        assert_eq!(
            LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            BuildInterpError::NotStrictlyIncreasing { index: 0 }
        );
        assert_eq!(
            MonotoneCubic::new(vec![0.0, 1.0], vec![1.0]).unwrap_err(),
            BuildInterpError::LengthMismatch { x_len: 2, y_len: 1 }
        );
        let msg = BuildInterpError::TooFewPoints { got: 0 }.to_string();
        assert!(msg.contains("two sample points"));
    }

    #[test]
    fn cubic_clamps_extrapolation() {
        let f = MonotoneCubic::new(vec![0.0, 1.0], vec![2.0, 4.0]).unwrap();
        assert_eq!(f.eval(-5.0), 2.0);
        assert_eq!(f.eval(5.0), 4.0);
        assert_eq!(f.domain(), (0.0, 1.0));
    }
}
