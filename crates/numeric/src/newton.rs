//! Damped Newton–Raphson for nonlinear algebraic systems.
//!
//! The circuit engine solves `F(x) = 0` where `x` is the MNA unknown vector
//! and `F` collects KCL residuals plus source branch equations. The driver
//! here is deliberately SPICE-flavoured:
//!
//! * convergence is judged per-unknown with combined absolute + relative
//!   tolerances (`reltol`/`abstol`), matching SPICE's `RELTOL`/`VNTOL`;
//! * the update can be damped (`max_step`) to keep exponential device
//!   models from overflowing, which is the textbook cure for the
//!   subthreshold-FET blow-up;
//! * the caller supplies a [`NonlinearSystem`] that evaluates the residual
//!   and Jacobian together (devices naturally produce both at once).

use std::fmt;

use crate::matrix::{DenseMatrix, LuWorkspace};

/// A solver option failed validation (non-finite tolerance, inverted
/// bounds, …). Produced by [`NewtonOptions::validate`] and by the
/// analysis-level option validators built on top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOptionsError {
    /// The offending field, e.g. `"reltol"`.
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: String,
}

impl fmt::Display for InvalidOptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid option `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidOptionsError {}

/// A nonlinear system `F(x) = 0` with analytic Jacobian.
pub trait NonlinearSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` and Jacobian `J(x) = ∂F/∂x`.
    ///
    /// `residual` and `jacobian` arrive zeroed; implementations accumulate
    /// ("stamp") into them.
    fn eval(&mut self, x: &[f64], residual: &mut [f64], jacobian: &mut DenseMatrix);
}

/// Tuning knobs for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Relative tolerance on each unknown's update (SPICE `RELTOL`).
    pub reltol: f64,
    /// Absolute tolerance on each unknown's update (SPICE `VNTOL`).
    pub abstol: f64,
    /// Maximum residual ∞-norm accepted at convergence.
    pub residual_tol: f64,
    /// Iteration limit.
    pub max_iter: usize,
    /// Per-iteration cap on any unknown's update magnitude; `f64::INFINITY`
    /// disables damping.
    pub max_step: f64,
    /// Maximum residual-backtracking halvings per iteration (`0` disables
    /// the line search; the default). When enabled, a Newton step whose
    /// trial residual is worse than the current one is halved up to this
    /// many times — the middle rung of the convergence-rescue ladder.
    pub backtrack: u32,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            residual_tol: 1e-9,
            max_iter: 200,
            max_step: 0.5,
            backtrack: 0,
        }
    }
}

impl NewtonOptions {
    /// Checks every field for sanity: tolerances must be positive and
    /// finite, the iteration limit nonzero, and `max_step` positive
    /// (infinity allowed — it disables damping).
    ///
    /// # Errors
    ///
    /// Returns the first offending field as an [`InvalidOptionsError`].
    pub fn validate(&self) -> Result<(), InvalidOptionsError> {
        let finite_positive = |field: &'static str, v: f64| {
            if !v.is_finite() || v <= 0.0 {
                Err(InvalidOptionsError {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                })
            } else {
                Ok(())
            }
        };
        finite_positive("reltol", self.reltol)?;
        finite_positive("abstol", self.abstol)?;
        finite_positive("residual_tol", self.residual_tol)?;
        if self.max_iter == 0 {
            return Err(InvalidOptionsError {
                field: "max_iter",
                reason: "must be at least 1".to_owned(),
            });
        }
        if self.max_step.is_nan() || self.max_step <= 0.0 {
            return Err(InvalidOptionsError {
                field: "max_step",
                reason: format!("must be positive (infinity allowed), got {}", self.max_step),
            });
        }
        Ok(())
    }
}

/// Result of a Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonOutcome {
    /// Converged in the given number of iterations.
    Converged {
        /// Iterations taken.
        iterations: usize,
    },
    /// Iteration limit hit; the best iterate is left in the state vector.
    IterationLimit {
        /// Final update ∞-norm.
        last_delta: f64,
        /// Final residual ∞-norm.
        last_residual: f64,
        /// Index of the unknown with the largest final residual — the
        /// circuit layer maps this back to a node name for diagnostics.
        worst_index: usize,
    },
    /// The Jacobian went singular.
    SingularJacobian {
        /// Iteration at which it happened.
        iteration: usize,
    },
    /// The residual or the state vector went non-finite (NaN/∞); the
    /// iteration bails out immediately instead of spinning to the limit.
    NonFiniteState {
        /// Iteration at which the first non-finite value appeared.
        iteration: usize,
    },
}

impl NewtonOutcome {
    /// `true` if the solve converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, NewtonOutcome::Converged { .. })
    }
}

/// Reusable Newton–Raphson workspace.
///
/// # Examples
///
/// Solving `x² = 4` written as a one-unknown system:
///
/// ```
/// use nvpg_numeric::{DenseMatrix, NewtonOptions, NewtonSolver, NonlinearSystem};
///
/// struct Square;
/// impl NonlinearSystem for Square {
///     fn dim(&self) -> usize { 1 }
///     fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
///         r[0] = x[0] * x[0] - 4.0;
///         j[(0, 0)] = 2.0 * x[0];
///     }
/// }
///
/// let mut solver = NewtonSolver::new(NewtonOptions { max_step: f64::INFINITY, ..Default::default() });
/// let mut x = vec![3.0];
/// let outcome = solver.solve(&mut Square, &mut x);
/// assert!(outcome.is_converged());
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct NewtonSolver {
    options: NewtonOptions,
    residual: Vec<f64>,
    jacobian: DenseMatrix,
    lu: LuWorkspace,
    delta: Vec<f64>,
    /// Trial point for the backtracking line search.
    x_try: Vec<f64>,
    total_iterations: u64,
    total_solves: u64,
    total_backtracks: u64,
}

impl NewtonSolver {
    /// Creates a solver with the given options.
    pub fn new(options: NewtonOptions) -> Self {
        NewtonSolver {
            options,
            residual: Vec::new(),
            jacobian: DenseMatrix::zeros(0, 0),
            lu: LuWorkspace::new(),
            delta: Vec::new(),
            x_try: Vec::new(),
            total_iterations: 0,
            total_solves: 0,
            total_backtracks: 0,
        }
    }

    /// The active options.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// Newton iterations accumulated over every `solve` call on this
    /// workspace (convergence telemetry for benchmarks).
    pub fn total_iterations(&self) -> u64 {
        self.total_iterations
    }

    /// Number of `solve` calls on this workspace.
    pub fn total_solves(&self) -> u64 {
        self.total_solves
    }

    /// Backtracking half-steps taken across every `solve` call (zero
    /// unless [`NewtonOptions::backtrack`] is enabled).
    pub fn total_backtracks(&self) -> u64 {
        self.total_backtracks
    }

    /// Replaces the active options (used by the rescue ladder to retry a
    /// failed solve with stronger damping on the same warm workspace).
    pub fn set_options(&mut self, options: NewtonOptions) {
        self.options = options;
    }

    /// Runs Newton iteration on `system`, starting from and updating `x`.
    ///
    /// After the first iteration at a given dimension the loop performs
    /// no heap allocations: the Jacobian is factored in place in a
    /// reusable [`LuWorkspace`] and the update is solved directly into a
    /// persistent `delta` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != system.dim()`.
    pub fn solve<S: NonlinearSystem>(&mut self, system: &mut S, x: &mut [f64]) -> NewtonOutcome {
        let n = system.dim();
        assert_eq!(x.len(), n, "state vector length must equal system dim");
        if self.residual.len() != n {
            self.residual = vec![0.0; n];
            self.jacobian = DenseMatrix::zeros(n, n);
            self.delta = vec![0.0; n];
            self.x_try = vec![0.0; n];
        }
        self.total_solves += 1;

        let mut last_delta = f64::INFINITY;
        let mut last_residual = f64::INFINITY;
        let mut worst_index = 0usize;

        for iter in 0..self.options.max_iter {
            self.residual.fill(0.0);
            self.jacobian.clear();
            system.eval(x, &mut self.residual, &mut self.jacobian);
            self.total_iterations += 1;

            // ∞-norm with explicit NaN detection: `f64::max` drops NaN
            // operands, so a folded max would silently mask a poisoned
            // residual and spin to the iteration limit.
            last_residual = 0.0;
            for (i, r) in self.residual.iter().enumerate() {
                if !r.is_finite() {
                    return NewtonOutcome::NonFiniteState { iteration: iter };
                }
                if r.abs() > last_residual {
                    last_residual = r.abs();
                    worst_index = i;
                }
            }

            if self.lu.factor_from(&self.jacobian).is_err() {
                return NewtonOutcome::SingularJacobian { iteration: iter };
            }
            // Newton step: J·Δ = -F  ⇒  Δ = -J⁻¹F, solved without
            // materialising -F or allocating Δ.
            self.lu.solve_neg_into(&self.residual, &mut self.delta);

            // Damping: clip the whole step so no unknown moves more than
            // max_step (preserves direction scaling per component, which is
            // what SPICE's voltage limiting effectively does).
            if self.options.max_step.is_finite() {
                for d in &mut self.delta {
                    *d = d.clamp(-self.options.max_step, self.options.max_step);
                }
            }

            // Backtracking line search (rescue rung, off by default):
            // halve the step while the trial residual is worse than the
            // current one, up to `backtrack` times.
            let mut scale = 1.0_f64;
            if self.options.backtrack > 0 {
                for _ in 0..self.options.backtrack {
                    for ((t, xi), di) in self.x_try.iter_mut().zip(x.iter()).zip(&self.delta) {
                        *t = xi + scale * di;
                    }
                    self.residual.fill(0.0);
                    self.jacobian.clear();
                    system.eval(&self.x_try, &mut self.residual, &mut self.jacobian);
                    let trial_norm = self
                        .residual
                        .iter()
                        .map(|r| r.abs())
                        .fold(0.0_f64, f64::max);
                    if trial_norm.is_finite() && trial_norm < last_residual {
                        break;
                    }
                    scale *= 0.5;
                    self.total_backtracks += 1;
                }
            }

            let mut converged = true;
            last_delta = 0.0;
            for (xi, di) in x.iter_mut().zip(&self.delta) {
                let step = scale * di;
                *xi += step;
                if !xi.is_finite() {
                    return NewtonOutcome::NonFiniteState { iteration: iter };
                }
                let tol = self.options.abstol + self.options.reltol * xi.abs();
                if step.abs() > tol {
                    converged = false;
                }
                last_delta = last_delta.max(step.abs());
            }

            if converged && last_residual <= self.options.residual_tol {
                return NewtonOutcome::Converged {
                    iterations: iter + 1,
                };
            }
        }

        NewtonOutcome::IterationLimit {
            last_delta,
            last_residual,
            worst_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Poly;
    impl NonlinearSystem for Poly {
        fn dim(&self) -> usize {
            2
        }
        // F = [x² + y - 3, x + y² - 5]; root near (1.2088…, 1.5388…).
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 1.0;
            j[(1, 0)] = 1.0;
            j[(1, 1)] = 2.0 * x[1];
        }
    }

    #[test]
    fn converges_on_2d_polynomial_system() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![1.0, 1.0];
        let outcome = solver.solve(&mut Poly, &mut x);
        assert!(outcome.is_converged(), "{outcome:?}");
        assert!((x[0] * x[0] + x[1] - 3.0).abs() < 1e-8);
        assert!((x[0] + x[1] * x[1] - 5.0).abs() < 1e-8);
    }

    struct Exponential;
    impl NonlinearSystem for Exponential {
        fn dim(&self) -> usize {
            1
        }
        // Diode-like: exp(40x) - 2 = 0, root at ln(2)/40 ≈ 0.0173.
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            let e = (40.0 * x[0]).min(700.0).exp();
            r[0] = e - 2.0;
            j[(0, 0)] = 40.0 * e;
        }
    }

    #[test]
    fn damping_tames_exponential() {
        // From x = 1 the first undamped step would be astronomically wrong;
        // the damped iteration must still converge.
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_step: 0.5,
            ..Default::default()
        });
        let mut x = vec![1.0];
        let outcome = solver.solve(&mut Exponential, &mut x);
        assert!(outcome.is_converged(), "{outcome:?}");
        assert!((x[0] - (2.0_f64).ln() / 40.0).abs() < 1e-8);
    }

    struct Singular;
    impl NonlinearSystem for Singular {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&mut self, _x: &[f64], r: &mut [f64], _j: &mut DenseMatrix) {
            r[0] = 1.0;
            r[1] = 1.0;
            // Jacobian left all-zero: singular.
        }
    }

    #[test]
    fn singular_jacobian_reported() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![0.0, 0.0];
        let outcome = solver.solve(&mut Singular, &mut x);
        assert_eq!(outcome, NewtonOutcome::SingularJacobian { iteration: 0 });
        assert!(!outcome.is_converged());
    }

    struct NoRoot;
    impl NonlinearSystem for NoRoot {
        fn dim(&self) -> usize {
            1
        }
        // x² + 1 = 0 has no real root; the iteration must hit its limit.
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            r[0] = x[0] * x[0] + 1.0;
            j[(0, 0)] = if x[0].abs() < 1e-12 { 1e-6 } else { 2.0 * x[0] };
        }
    }

    #[test]
    fn iteration_limit_reported() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_iter: 20,
            ..Default::default()
        });
        let mut x = vec![1.0];
        match solver.solve(&mut NoRoot, &mut x) {
            NewtonOutcome::IterationLimit { last_residual, .. } => {
                assert!(last_residual >= 1.0);
            }
            other => panic!("expected iteration limit, got {other:?}"),
        }
    }

    #[test]
    fn linear_system_converges_in_one_iteration() {
        struct Linear;
        impl NonlinearSystem for Linear {
            fn dim(&self) -> usize {
                2
            }
            fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
                r[0] = 2.0 * x[0] + x[1] - 3.0;
                r[1] = x[0] + 3.0 * x[1] - 5.0;
                j[(0, 0)] = 2.0;
                j[(0, 1)] = 1.0;
                j[(1, 0)] = 1.0;
                j[(1, 1)] = 3.0;
            }
        }
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_step: f64::INFINITY,
            ..Default::default()
        });
        let mut x = vec![0.0, 0.0];
        match solver.solve(&mut Linear, &mut x) {
            // One step to land exactly, a second to verify convergence.
            NewtonOutcome::Converged { iterations } => assert!(iterations <= 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_across_dimensions() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x1 = vec![1.0];
        assert!(solver.solve(&mut Exponential, &mut x1).is_converged());
        let mut x2 = vec![1.0, 1.0];
        assert!(solver.solve(&mut Poly, &mut x2).is_converged());
        assert_eq!(solver.options().max_iter, 200);
    }

    #[test]
    fn iteration_telemetry_accumulates() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        assert_eq!(solver.total_iterations(), 0);
        assert_eq!(solver.total_solves(), 0);
        let mut x = vec![1.0, 1.0];
        let outcome = solver.solve(&mut Poly, &mut x);
        let NewtonOutcome::Converged { iterations } = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(solver.total_iterations(), iterations as u64);
        assert_eq!(solver.total_solves(), 1);
        let mut x2 = vec![1.0, 1.0];
        solver.solve(&mut Poly, &mut x2);
        assert_eq!(solver.total_solves(), 2);
        assert!(solver.total_iterations() >= 2 * iterations as u64);
    }
}
