//! Damped Newton–Raphson for nonlinear algebraic systems.
//!
//! The circuit engine solves `F(x) = 0` where `x` is the MNA unknown vector
//! and `F` collects KCL residuals plus source branch equations. The driver
//! here is deliberately SPICE-flavoured:
//!
//! * convergence is judged per-unknown with combined absolute + relative
//!   tolerances (`reltol`/`abstol`), matching SPICE's `RELTOL`/`VNTOL`;
//! * the update can be damped (`max_step`) to keep exponential device
//!   models from overflowing, which is the textbook cure for the
//!   subthreshold-FET blow-up;
//! * the caller supplies a [`NonlinearSystem`] that evaluates the residual
//!   and Jacobian together (devices naturally produce both at once).

use std::fmt;

use crate::cancel;
use crate::matrix::{DenseMatrix, LuWorkspace, SingularMatrixError};
use crate::simd;
use crate::sparse::{CscMatrix, SparseLu, SparsePattern};

/// A solver option failed validation (non-finite tolerance, inverted
/// bounds, …). Produced by [`NewtonOptions::validate`] and by the
/// analysis-level option validators built on top of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOptionsError {
    /// The offending field, e.g. `"reltol"`.
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: String,
}

impl fmt::Display for InvalidOptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid option `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidOptionsError {}

/// A nonlinear system `F(x) = 0` with analytic Jacobian.
pub trait NonlinearSystem {
    /// Number of unknowns.
    fn dim(&self) -> usize;

    /// Evaluates the residual `F(x)` and Jacobian `J(x) = ∂F/∂x`.
    ///
    /// `residual` and `jacobian` arrive zeroed; implementations accumulate
    /// ("stamp") into them.
    fn eval(&mut self, x: &[f64], residual: &mut [f64], jacobian: &mut DenseMatrix);

    /// Evaluates only the residual `F(x)`, skipping Jacobian assembly.
    ///
    /// Returns `true` if the system supports the cheap path; the default
    /// returns `false`, which makes the solver fall back to a full
    /// [`eval`](NonlinearSystem::eval) plus refactorisation. Used by the
    /// modified-Newton iteration ([`NewtonOptions::reuse_jacobian`]) so
    /// that iterations running on a stale LU factorisation avoid both
    /// Jacobian assembly and factorisation.
    ///
    /// `residual` arrives zeroed; implementations accumulate into it.
    fn eval_residual_only(&mut self, _x: &[f64], _residual: &mut [f64]) -> bool {
        false
    }

    /// Evaluates the residual and stamps the Jacobian into a sparse matrix
    /// whose pattern was fixed up front (see [`SparsePattern`]).
    ///
    /// Returns `true` if the system supports sparse assembly; the default
    /// returns `false`. A [`NewtonSolver`] constructed with
    /// [`NewtonSolver::with_sparse`] requires this path — it panics if the
    /// system declines, because silently falling back to dense would defeat
    /// the entire point of choosing the sparse backend.
    ///
    /// `residual` and `jacobian` arrive zeroed; implementations accumulate
    /// into them.
    fn eval_sparse(
        &mut self,
        _x: &[f64],
        _residual: &mut [f64],
        _jacobian: &mut CscMatrix,
    ) -> bool {
        false
    }
}

/// Linear-solver backend for the Newton iteration: dense LU for cell-sized
/// systems (the default), sparse LU with cached symbolic analysis for
/// array-scale systems. Both preserve the zero-alloc steady state, the
/// modified-Newton stale-factorisation reuse, and NaN-safe pivoting.
// One `LinearSolver` lives per `NewtonSolver`, never in collections, so
// boxing the sparse workspace would buy nothing and cost an indirection
// on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LinearSolver {
    /// Dense row-major Jacobian + partial-pivoting LU workspace.
    Dense {
        /// Assembled Jacobian.
        jacobian: DenseMatrix,
        /// Reusable factorisation workspace.
        lu: LuWorkspace,
    },
    /// Fixed-pattern CSC Jacobian + sparse LU with symbolic caching.
    Sparse {
        /// Assembled Jacobian over the analysed pattern.
        jacobian: CscMatrix,
        /// Reusable sparse factorisation workspace.
        lu: SparseLu,
    },
}

impl LinearSolver {
    /// Dense backend (storage grows on first use).
    pub fn dense() -> Self {
        LinearSolver::Dense {
            jacobian: DenseMatrix::zeros(0, 0),
            lu: LuWorkspace::new(),
        }
    }

    /// Sparse backend over a precomputed structural pattern.
    pub fn sparse(pattern: &SparsePattern) -> Self {
        LinearSolver::Sparse {
            jacobian: CscMatrix::from_pattern(pattern),
            lu: SparseLu::new(),
        }
    }

    /// `true` for the sparse backend.
    pub fn is_sparse(&self) -> bool {
        matches!(self, LinearSolver::Sparse { .. })
    }

    /// The sparse factorisation workspace, when this is the sparse backend
    /// (fill-in and refactorisation telemetry).
    pub fn sparse_lu(&self) -> Option<&SparseLu> {
        match self {
            LinearSolver::Dense { .. } => None,
            LinearSolver::Sparse { lu, .. } => Some(lu),
        }
    }

    fn ensure_dim(&mut self, n: usize) {
        match self {
            LinearSolver::Dense { jacobian, .. } => {
                if jacobian.rows() != n {
                    *jacobian = DenseMatrix::zeros(n, n);
                }
            }
            LinearSolver::Sparse { jacobian, .. } => {
                assert_eq!(
                    jacobian.dim(),
                    n,
                    "sparse pattern dimension must match the system dimension"
                );
            }
        }
    }

    /// Full residual + Jacobian assembly through the backend-appropriate
    /// [`NonlinearSystem`] entry point. `residual` must arrive zeroed.
    fn eval_full<S: NonlinearSystem>(&mut self, system: &mut S, x: &[f64], residual: &mut [f64]) {
        match self {
            LinearSolver::Dense { jacobian, .. } => {
                jacobian.clear();
                system.eval(x, residual, jacobian);
            }
            LinearSolver::Sparse { jacobian, .. } => {
                jacobian.clear();
                assert!(
                    system.eval_sparse(x, residual, jacobian),
                    "sparse Newton backend requires NonlinearSystem::eval_sparse support"
                );
            }
        }
    }

    fn factor(&mut self) -> Result<(), SingularMatrixError> {
        match self {
            LinearSolver::Dense { jacobian, lu } => lu.factor_from(jacobian),
            LinearSolver::Sparse { jacobian, lu } => lu.factor(jacobian),
        }
    }

    fn solve_neg_into(&mut self, residual: &[f64], delta: &mut [f64]) {
        match self {
            LinearSolver::Dense { lu, .. } => lu.solve_neg_into(residual, delta),
            LinearSolver::Sparse { lu, .. } => lu.solve_neg_into(residual, delta),
        }
    }
}

/// Tuning knobs for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Relative tolerance on each unknown's update (SPICE `RELTOL`).
    pub reltol: f64,
    /// Absolute tolerance on each unknown's update (SPICE `VNTOL`).
    pub abstol: f64,
    /// Maximum residual ∞-norm accepted at convergence.
    pub residual_tol: f64,
    /// Iteration limit.
    pub max_iter: usize,
    /// Per-iteration cap on any unknown's update magnitude; `f64::INFINITY`
    /// disables damping.
    pub max_step: f64,
    /// Maximum residual-backtracking halvings per iteration (`0` disables
    /// the line search; the default). When enabled, a Newton step whose
    /// trial residual is worse than the current one is halved up to this
    /// many times — the middle rung of the convergence-rescue ladder.
    pub backtrack: u32,
    /// Modified-Newton mode: keep the previous LU factorisation across
    /// iterations *and* across `solve` calls, refreshing only when the
    /// step contraction rate degrades past [`reuse_contraction`]
    /// (NewtonOptions::reuse_contraction) or the factorisation exceeds
    /// [`reuse_max_age`](NewtonOptions::reuse_max_age) stale iterations.
    /// Residuals are still evaluated genuinely every iteration, so a
    /// converged answer satisfies the same tolerances as full Newton.
    pub reuse_jacobian: bool,
    /// Contraction threshold for the stale-Jacobian monitor: a reused
    /// factorisation is kept while ‖δ_k‖ ≤ `reuse_contraction`·‖δ_{k-1}‖;
    /// when a stale iteration contracts slower than this, the next
    /// iteration refactorises. Must lie in `(0, 1)`.
    pub reuse_contraction: f64,
    /// Hard cap on consecutive stale iterations per factorisation (a
    /// safety net on top of the contraction monitor). Must be ≥ 1.
    pub reuse_max_age: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            reltol: 1e-6,
            abstol: 1e-9,
            residual_tol: 1e-9,
            max_iter: 200,
            max_step: 0.5,
            backtrack: 0,
            reuse_jacobian: false,
            reuse_contraction: 0.5,
            reuse_max_age: 50,
        }
    }
}

impl NewtonOptions {
    /// Checks every field for sanity: tolerances must be positive and
    /// finite, the iteration limit nonzero, and `max_step` positive
    /// (infinity allowed — it disables damping).
    ///
    /// # Errors
    ///
    /// Returns the first offending field as an [`InvalidOptionsError`].
    pub fn validate(&self) -> Result<(), InvalidOptionsError> {
        let finite_positive = |field: &'static str, v: f64| {
            if !v.is_finite() || v <= 0.0 {
                Err(InvalidOptionsError {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                })
            } else {
                Ok(())
            }
        };
        finite_positive("reltol", self.reltol)?;
        finite_positive("abstol", self.abstol)?;
        finite_positive("residual_tol", self.residual_tol)?;
        if self.max_iter == 0 {
            return Err(InvalidOptionsError {
                field: "max_iter",
                reason: "must be at least 1".to_owned(),
            });
        }
        if self.max_step.is_nan() || self.max_step <= 0.0 {
            return Err(InvalidOptionsError {
                field: "max_step",
                reason: format!("must be positive (infinity allowed), got {}", self.max_step),
            });
        }
        if !self.reuse_contraction.is_finite()
            || self.reuse_contraction <= 0.0
            || self.reuse_contraction >= 1.0
        {
            return Err(InvalidOptionsError {
                field: "reuse_contraction",
                reason: format!(
                    "must lie strictly between 0 and 1, got {}",
                    self.reuse_contraction
                ),
            });
        }
        if self.reuse_max_age == 0 {
            return Err(InvalidOptionsError {
                field: "reuse_max_age",
                reason: "must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Result of a Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonOutcome {
    /// Converged in the given number of iterations.
    Converged {
        /// Iterations taken.
        iterations: usize,
    },
    /// Iteration limit hit; the best iterate is left in the state vector.
    IterationLimit {
        /// Final update ∞-norm.
        last_delta: f64,
        /// Final residual ∞-norm.
        last_residual: f64,
        /// Index of the unknown with the largest final residual — the
        /// circuit layer maps this back to a node name for diagnostics.
        worst_index: usize,
    },
    /// The Jacobian went singular.
    SingularJacobian {
        /// Iteration at which it happened.
        iteration: usize,
        /// Original unknown index of the pivot column that failed — the
        /// circuit layer maps this back to a node or branch name. Identical
        /// semantics on the dense and sparse backends.
        column: usize,
    },
    /// The residual or the state vector went non-finite (NaN/∞); the
    /// iteration bails out immediately instead of spinning to the limit.
    NonFiniteState {
        /// Iteration at which the first non-finite value appeared.
        iteration: usize,
    },
    /// The thread's installed [`crate::cancel::CancelToken`] fired
    /// (explicit cancellation or deadline expiry). The retained Jacobian is
    /// invalidated before returning, so the same solver instance can run a
    /// fresh solve afterwards with no state carried over.
    Cancelled {
        /// Iteration at which the cancellation checkpoint fired.
        iteration: usize,
    },
}

impl NewtonOutcome {
    /// `true` if the solve converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, NewtonOutcome::Converged { .. })
    }
}

/// Reusable Newton–Raphson workspace.
///
/// # Examples
///
/// Solving `x² = 4` written as a one-unknown system:
///
/// ```
/// use nvpg_numeric::{DenseMatrix, NewtonOptions, NewtonSolver, NonlinearSystem};
///
/// struct Square;
/// impl NonlinearSystem for Square {
///     fn dim(&self) -> usize { 1 }
///     fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
///         r[0] = x[0] * x[0] - 4.0;
///         j[(0, 0)] = 2.0 * x[0];
///     }
/// }
///
/// let mut solver = NewtonSolver::new(NewtonOptions { max_step: f64::INFINITY, ..Default::default() });
/// let mut x = vec![3.0];
/// let outcome = solver.solve(&mut Square, &mut x);
/// assert!(outcome.is_converged());
/// assert!((x[0] - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct NewtonSolver {
    options: NewtonOptions,
    residual: Vec<f64>,
    linear: LinearSolver,
    delta: Vec<f64>,
    /// Trial point for the backtracking line search.
    x_try: Vec<f64>,
    /// Whether `lu` holds a usable factorisation from an earlier iteration
    /// or solve (modified-Newton reuse).
    jac_valid: bool,
    /// Consecutive stale iterations served by the current factorisation.
    jac_age: usize,
    /// Refresh request latched by the contraction monitor: the next
    /// iteration must refactorise even if reuse is otherwise allowed.
    jac_refresh: bool,
    total_iterations: u64,
    total_solves: u64,
    total_backtracks: u64,
    total_refactorizations: u64,
    refactorizations_avoided: u64,
}

impl NewtonSolver {
    /// Creates a solver with the given options and the dense linear-solver
    /// backend (the right default for cell-sized systems).
    pub fn new(options: NewtonOptions) -> Self {
        NewtonSolver::with_linear_solver(options, LinearSolver::dense())
    }

    /// Creates a solver on the sparse backend over a precomputed structural
    /// pattern. The system must implement
    /// [`NonlinearSystem::eval_sparse`]; symbolic analysis happens on the
    /// first factorisation and is reused by all later ones.
    pub fn with_sparse(options: NewtonOptions, pattern: &SparsePattern) -> Self {
        NewtonSolver::with_linear_solver(options, LinearSolver::sparse(pattern))
    }

    /// Creates a solver with an explicit linear-solver backend.
    pub fn with_linear_solver(options: NewtonOptions, linear: LinearSolver) -> Self {
        NewtonSolver {
            options,
            residual: Vec::new(),
            linear,
            delta: Vec::new(),
            x_try: Vec::new(),
            jac_valid: false,
            jac_age: 0,
            jac_refresh: false,
            total_iterations: 0,
            total_solves: 0,
            total_backtracks: 0,
            total_refactorizations: 0,
            refactorizations_avoided: 0,
        }
    }

    /// The active options.
    pub fn options(&self) -> &NewtonOptions {
        &self.options
    }

    /// The linear-solver backend in use.
    pub fn linear_solver(&self) -> &LinearSolver {
        &self.linear
    }

    /// Newton iterations accumulated over every `solve` call on this
    /// workspace (convergence telemetry for benchmarks).
    pub fn total_iterations(&self) -> u64 {
        self.total_iterations
    }

    /// Number of `solve` calls on this workspace.
    pub fn total_solves(&self) -> u64 {
        self.total_solves
    }

    /// Backtracking half-steps taken across every `solve` call (zero
    /// unless [`NewtonOptions::backtrack`] is enabled).
    pub fn total_backtracks(&self) -> u64 {
        self.total_backtracks
    }

    /// LU refactorisations performed across every `solve` call.
    pub fn total_refactorizations(&self) -> u64 {
        self.total_refactorizations
    }

    /// Iterations served by a stale (reused) factorisation — each one
    /// skipped both Jacobian assembly and LU factorisation. Zero unless
    /// [`NewtonOptions::reuse_jacobian`] is enabled and the system
    /// implements [`NonlinearSystem::eval_residual_only`].
    pub fn refactorizations_avoided(&self) -> u64 {
        self.refactorizations_avoided
    }

    /// Discards the retained LU factorisation so the next iteration
    /// refactorises. Callers must invoke this whenever the system's
    /// Jacobian changes shape out from under the solver — e.g. the
    /// transient engine changes the time step, which rescales every
    /// companion-model `C/dt` term.
    pub fn invalidate_jacobian(&mut self) {
        self.jac_valid = false;
        self.jac_age = 0;
        self.jac_refresh = false;
    }

    /// Replaces the active options (used by the rescue ladder to retry a
    /// failed solve with stronger damping on the same warm workspace).
    pub fn set_options(&mut self, options: NewtonOptions) {
        self.options = options;
    }

    /// Runs Newton iteration on `system`, starting from and updating `x`.
    ///
    /// After the first iteration at a given dimension the loop performs
    /// no heap allocations: the Jacobian is factored in place in a
    /// reusable [`LuWorkspace`] and the update is solved directly into a
    /// persistent `delta` buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != system.dim()`.
    pub fn solve<S: NonlinearSystem>(&mut self, system: &mut S, x: &mut [f64]) -> NewtonOutcome {
        let n = system.dim();
        assert_eq!(x.len(), n, "state vector length must equal system dim");
        if self.residual.len() != n {
            self.residual = vec![0.0; n];
            self.linear.ensure_dim(n);
            self.delta = vec![0.0; n];
            self.x_try = vec![0.0; n];
            self.invalidate_jacobian();
        }
        self.total_solves += 1;

        let mut last_delta = f64::INFINITY;
        let mut last_residual = f64::INFINITY;
        let mut prev_delta = f64::INFINITY;
        let mut worst_index = 0usize;

        for iter in 0..self.options.max_iter {
            // Cooperative cancellation checkpoint: one thread-local read
            // when no token is installed. The early return invalidates the
            // retained Jacobian exactly like the other bail-outs, so a
            // cancelled solve leaves no poisoned state behind.
            if cancel::checkpoint() {
                self.invalidate_jacobian();
                return NewtonOutcome::Cancelled { iteration: iter };
            }
            // Modified-Newton fast path: when the retained factorisation is
            // still trusted, evaluate only the residual and skip Jacobian
            // assembly + LU entirely. The system may decline (returns
            // `false`), in which case this iteration is a full one.
            let mut stale = false;
            if self.options.reuse_jacobian
                && self.jac_valid
                && !self.jac_refresh
                && self.jac_age < self.options.reuse_max_age
            {
                self.residual.fill(0.0);
                if system.eval_residual_only(x, &mut self.residual) {
                    stale = true;
                    self.jac_age += 1;
                    self.refactorizations_avoided += 1;
                }
            }
            if !stale {
                self.residual.fill(0.0);
                self.linear.eval_full(system, x, &mut self.residual);
            }
            self.total_iterations += 1;

            // ∞-norm with explicit NaN detection: `f64::max` drops NaN
            // operands, so a folded max would silently mask a poisoned
            // residual and spin to the iteration limit.
            last_residual = 0.0;
            for (i, r) in self.residual.iter().enumerate() {
                if !r.is_finite() {
                    self.invalidate_jacobian();
                    return NewtonOutcome::NonFiniteState { iteration: iter };
                }
                if r.abs() > last_residual {
                    last_residual = r.abs();
                    worst_index = i;
                }
            }

            if !stale {
                if let Err(err) = self.linear.factor() {
                    self.invalidate_jacobian();
                    // The sparse backend bails out of a long factorisation
                    // when the token fires mid-factor; a cancelled token
                    // re-classifies the factor error as a cancellation.
                    if cancel::cancelled() {
                        return NewtonOutcome::Cancelled { iteration: iter };
                    }
                    return NewtonOutcome::SingularJacobian {
                        iteration: iter,
                        column: err.column,
                    };
                }
                self.jac_valid = true;
                self.jac_age = 0;
                self.jac_refresh = false;
                self.total_refactorizations += 1;
            }
            // Newton step: J·Δ = -F  ⇒  Δ = -J⁻¹F, solved without
            // materialising -F or allocating Δ.
            self.linear.solve_neg_into(&self.residual, &mut self.delta);

            // Damping: clip the whole step so no unknown moves more than
            // max_step (preserves direction scaling per component, which is
            // what SPICE's voltage limiting effectively does).
            if self.options.max_step.is_finite() {
                for d in &mut self.delta {
                    *d = d.clamp(-self.options.max_step, self.options.max_step);
                }
            }

            // Backtracking line search (rescue rung, off by default):
            // halve the step while the trial residual is worse than the
            // current one, up to `backtrack` times.
            let mut scale = 1.0_f64;
            if self.options.backtrack > 0 {
                for _ in 0..self.options.backtrack {
                    for ((t, xi), di) in self.x_try.iter_mut().zip(x.iter()).zip(&self.delta) {
                        *t = xi + scale * di;
                    }
                    // Trial points only need the residual norm; take the
                    // cheap path when the system offers one.
                    self.residual.fill(0.0);
                    if !system.eval_residual_only(&self.x_try, &mut self.residual) {
                        self.residual.fill(0.0);
                        self.linear
                            .eval_full(system, &self.x_try, &mut self.residual);
                    }
                    // SIMD ∞-norm; non-finite trial residuals propagate and
                    // fail the acceptance test below.
                    let trial_norm = simd::norm_inf(&self.residual);
                    if trial_norm.is_finite() && trial_norm < last_residual {
                        break;
                    }
                    scale *= 0.5;
                    self.total_backtracks += 1;
                }
            }

            let mut converged = true;
            last_delta = 0.0;
            for (xi, di) in x.iter_mut().zip(&self.delta) {
                let step = scale * di;
                *xi += step;
                if !xi.is_finite() {
                    self.invalidate_jacobian();
                    return NewtonOutcome::NonFiniteState { iteration: iter };
                }
                let tol = self.options.abstol + self.options.reltol * xi.abs();
                if step.abs() > tol {
                    converged = false;
                }
                last_delta = last_delta.max(step.abs());
            }

            if converged && last_residual <= self.options.residual_tol {
                return NewtonOutcome::Converged {
                    iterations: iter + 1,
                };
            }

            // Contraction monitor: a healthy (even stale) Newton iteration
            // shrinks the step geometrically. When a stale iteration stops
            // contracting fast enough, latch a refresh so the next
            // iteration rebuilds and refactorises the Jacobian.
            if stale && last_delta > self.options.reuse_contraction * prev_delta {
                self.jac_refresh = true;
            }
            prev_delta = last_delta;
        }

        self.invalidate_jacobian();
        NewtonOutcome::IterationLimit {
            last_delta,
            last_residual,
            worst_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Poly;
    impl NonlinearSystem for Poly {
        fn dim(&self) -> usize {
            2
        }
        // F = [x² + y - 3, x + y² - 5]; root near (1.2088…, 1.5388…).
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 1.0;
            j[(1, 0)] = 1.0;
            j[(1, 1)] = 2.0 * x[1];
        }
    }

    #[test]
    fn converges_on_2d_polynomial_system() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![1.0, 1.0];
        let outcome = solver.solve(&mut Poly, &mut x);
        assert!(outcome.is_converged(), "{outcome:?}");
        assert!((x[0] * x[0] + x[1] - 3.0).abs() < 1e-8);
        assert!((x[0] + x[1] * x[1] - 5.0).abs() < 1e-8);
    }

    struct Exponential;
    impl NonlinearSystem for Exponential {
        fn dim(&self) -> usize {
            1
        }
        // Diode-like: exp(40x) - 2 = 0, root at ln(2)/40 ≈ 0.0173.
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            let e = (40.0 * x[0]).min(700.0).exp();
            r[0] = e - 2.0;
            j[(0, 0)] = 40.0 * e;
        }
    }

    #[test]
    fn damping_tames_exponential() {
        // From x = 1 the first undamped step would be astronomically wrong;
        // the damped iteration must still converge.
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_step: 0.5,
            ..Default::default()
        });
        let mut x = vec![1.0];
        let outcome = solver.solve(&mut Exponential, &mut x);
        assert!(outcome.is_converged(), "{outcome:?}");
        assert!((x[0] - (2.0_f64).ln() / 40.0).abs() < 1e-8);
    }

    struct Singular;
    impl NonlinearSystem for Singular {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&mut self, _x: &[f64], r: &mut [f64], _j: &mut DenseMatrix) {
            r[0] = 1.0;
            r[1] = 1.0;
            // Jacobian left all-zero: singular.
        }
    }

    #[test]
    fn singular_jacobian_reported() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x = vec![0.0, 0.0];
        let outcome = solver.solve(&mut Singular, &mut x);
        assert_eq!(
            outcome,
            NewtonOutcome::SingularJacobian {
                iteration: 0,
                column: 0
            }
        );
        assert!(!outcome.is_converged());
    }

    struct NoRoot;
    impl NonlinearSystem for NoRoot {
        fn dim(&self) -> usize {
            1
        }
        // x² + 1 = 0 has no real root; the iteration must hit its limit.
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            r[0] = x[0] * x[0] + 1.0;
            j[(0, 0)] = if x[0].abs() < 1e-12 { 1e-6 } else { 2.0 * x[0] };
        }
    }

    #[test]
    fn iteration_limit_reported() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_iter: 20,
            ..Default::default()
        });
        let mut x = vec![1.0];
        match solver.solve(&mut NoRoot, &mut x) {
            NewtonOutcome::IterationLimit { last_residual, .. } => {
                assert!(last_residual >= 1.0);
            }
            other => panic!("expected iteration limit, got {other:?}"),
        }
    }

    #[test]
    fn linear_system_converges_in_one_iteration() {
        struct Linear;
        impl NonlinearSystem for Linear {
            fn dim(&self) -> usize {
                2
            }
            fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
                r[0] = 2.0 * x[0] + x[1] - 3.0;
                r[1] = x[0] + 3.0 * x[1] - 5.0;
                j[(0, 0)] = 2.0;
                j[(0, 1)] = 1.0;
                j[(1, 0)] = 1.0;
                j[(1, 1)] = 3.0;
            }
        }
        let mut solver = NewtonSolver::new(NewtonOptions {
            max_step: f64::INFINITY,
            ..Default::default()
        });
        let mut x = vec![0.0, 0.0];
        match solver.solve(&mut Linear, &mut x) {
            // One step to land exactly, a second to verify convergence.
            NewtonOutcome::Converged { iterations } => assert!(iterations <= 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn workspace_reuse_across_dimensions() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        let mut x1 = vec![1.0];
        assert!(solver.solve(&mut Exponential, &mut x1).is_converged());
        let mut x2 = vec![1.0, 1.0];
        assert!(solver.solve(&mut Poly, &mut x2).is_converged());
        assert_eq!(solver.options().max_iter, 200);
    }

    /// Poly with a residual-only fast path and call counters, for
    /// exercising the modified-Newton reuse policy.
    struct CountingPoly {
        full_evals: u32,
        cheap_evals: u32,
        support_cheap: bool,
    }

    impl CountingPoly {
        fn new(support_cheap: bool) -> Self {
            CountingPoly {
                full_evals: 0,
                cheap_evals: 0,
                support_cheap,
            }
        }
    }

    impl NonlinearSystem for CountingPoly {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            self.full_evals += 1;
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 1.0;
            j[(1, 0)] = 1.0;
            j[(1, 1)] = 2.0 * x[1];
        }
        fn eval_residual_only(&mut self, x: &[f64], r: &mut [f64]) -> bool {
            if !self.support_cheap {
                return false;
            }
            self.cheap_evals += 1;
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            true
        }
    }

    #[test]
    fn modified_newton_reuses_factorisation_and_stays_accurate() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            reuse_jacobian: true,
            ..Default::default()
        });
        let mut sys = CountingPoly::new(true);
        let mut x = vec![1.0, 1.0];
        assert!(solver.solve(&mut sys, &mut x).is_converged());
        // Stale iterations really happened and skipped full assembly.
        assert!(solver.refactorizations_avoided() > 0);
        assert!(sys.cheap_evals > 0);
        // The answer satisfies the same tolerances as full Newton.
        assert!((x[0] * x[0] + x[1] - 3.0).abs() < 1e-8);
        assert!((x[0] + x[1] * x[1] - 5.0).abs() < 1e-8);

        // A second solve from the same start reuses the retained LU across
        // the solve boundary: its first iteration is already stale.
        let avoided = solver.refactorizations_avoided();
        let mut x2 = vec![1.0, 1.0];
        assert!(solver.solve(&mut sys, &mut x2).is_converged());
        assert!(solver.refactorizations_avoided() > avoided);
    }

    #[test]
    fn reuse_declined_by_system_falls_back_to_full_newton() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            reuse_jacobian: true,
            ..Default::default()
        });
        let mut sys = CountingPoly::new(false);
        let mut x = vec![1.0, 1.0];
        assert!(solver.solve(&mut sys, &mut x).is_converged());
        assert_eq!(solver.refactorizations_avoided(), 0);
        assert_eq!(sys.cheap_evals, 0);
        assert!(sys.full_evals > 0);
    }

    #[test]
    fn invalidate_jacobian_forces_refactorisation() {
        let mut solver = NewtonSolver::new(NewtonOptions {
            reuse_jacobian: true,
            ..Default::default()
        });
        let mut sys = CountingPoly::new(true);
        let mut x = vec![1.0, 1.0];
        assert!(solver.solve(&mut sys, &mut x).is_converged());
        solver.invalidate_jacobian();
        let refactors = solver.total_refactorizations();
        let mut x2 = vec![1.0, 1.0];
        assert!(solver.solve(&mut sys, &mut x2).is_converged());
        // First iteration after invalidation cannot run stale.
        assert!(solver.total_refactorizations() > refactors);
    }

    #[test]
    fn reuse_options_are_validated() {
        let bad_contraction = NewtonOptions {
            reuse_contraction: 1.0,
            ..Default::default()
        };
        assert_eq!(
            bad_contraction.validate().unwrap_err().field,
            "reuse_contraction"
        );
        let bad_age = NewtonOptions {
            reuse_max_age: 0,
            ..Default::default()
        };
        assert_eq!(bad_age.validate().unwrap_err().field, "reuse_max_age");
    }

    /// Poly that also supports sparse assembly over its full 2×2 pattern.
    struct SparsePoly;
    impl SparsePoly {
        fn pattern() -> SparsePattern {
            let mut b = crate::sparse::PatternBuilder::new(2);
            for r in 0..2 {
                for c in 0..2 {
                    b.add(r, c);
                }
            }
            b.build()
        }
    }
    impl NonlinearSystem for SparsePoly {
        fn dim(&self) -> usize {
            2
        }
        fn eval(&mut self, x: &[f64], r: &mut [f64], j: &mut DenseMatrix) {
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            j[(0, 0)] = 2.0 * x[0];
            j[(0, 1)] = 1.0;
            j[(1, 0)] = 1.0;
            j[(1, 1)] = 2.0 * x[1];
        }
        fn eval_residual_only(&mut self, x: &[f64], r: &mut [f64]) -> bool {
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            true
        }
        fn eval_sparse(&mut self, x: &[f64], r: &mut [f64], j: &mut CscMatrix) -> bool {
            r[0] = x[0] * x[0] + x[1] - 3.0;
            r[1] = x[0] + x[1] * x[1] - 5.0;
            j.add(0, 0, 2.0 * x[0]);
            j.add(0, 1, 1.0);
            j.add(1, 0, 1.0);
            j.add(1, 1, 2.0 * x[1]);
            true
        }
    }

    #[test]
    fn sparse_backend_matches_dense_root() {
        let mut dense = NewtonSolver::new(NewtonOptions::default());
        let mut xd = vec![1.0, 1.0];
        assert!(dense.solve(&mut Poly, &mut xd).is_converged());

        let mut sparse =
            NewtonSolver::with_sparse(NewtonOptions::default(), &SparsePoly::pattern());
        assert!(sparse.linear_solver().is_sparse());
        let mut xs = vec![1.0, 1.0];
        assert!(sparse.solve(&mut SparsePoly, &mut xs).is_converged());
        for i in 0..2 {
            assert!((xd[i] - xs[i]).abs() < 1e-9, "i={i} {xd:?} vs {xs:?}");
        }
    }

    #[test]
    fn sparse_backend_supports_modified_newton_reuse() {
        let mut solver = NewtonSolver::with_sparse(
            NewtonOptions {
                reuse_jacobian: true,
                ..Default::default()
            },
            &SparsePoly::pattern(),
        );
        let mut x = vec![1.0, 1.0];
        assert!(solver.solve(&mut SparsePoly, &mut x).is_converged());
        assert!(solver.refactorizations_avoided() > 0);
        // The symbolic analysis ran exactly once; everything after was a
        // fixed-pattern refactorisation.
        let lu = solver.linear_solver().sparse_lu().unwrap();
        assert_eq!(lu.full_factorizations(), 1);
        assert!(lu.refactorizations() >= 1);
    }

    #[test]
    fn sparse_backend_reports_singular_column() {
        struct SparseSingular;
        impl NonlinearSystem for SparseSingular {
            fn dim(&self) -> usize {
                2
            }
            fn eval(&mut self, _x: &[f64], _r: &mut [f64], _j: &mut DenseMatrix) {
                unreachable!("sparse path only");
            }
            fn eval_sparse(&mut self, _x: &[f64], r: &mut [f64], j: &mut CscMatrix) -> bool {
                r[0] = 1.0;
                r[1] = 1.0;
                // Column 1 left numerically zero: singular there.
                j.add(0, 0, 1.0);
                j.add(1, 0, 0.5);
                true
            }
        }
        let mut b = crate::sparse::PatternBuilder::new(2);
        b.add(0, 0);
        b.add(1, 0);
        b.add(1, 1);
        let mut solver = NewtonSolver::with_sparse(NewtonOptions::default(), &b.build());
        let mut x = vec![0.0, 0.0];
        match solver.solve(&mut SparseSingular, &mut x) {
            NewtonOutcome::SingularJacobian {
                iteration: 0,
                column,
            } => assert_eq!(column, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "eval_sparse support")]
    fn sparse_backend_panics_when_system_declines() {
        let mut solver =
            NewtonSolver::with_sparse(NewtonOptions::default(), &SparsePoly::pattern());
        let mut x = vec![1.0, 1.0];
        // `Poly` has no eval_sparse: must fail loudly, not silently degrade.
        solver.solve(&mut Poly, &mut x);
    }

    #[test]
    fn iteration_telemetry_accumulates() {
        let mut solver = NewtonSolver::new(NewtonOptions::default());
        assert_eq!(solver.total_iterations(), 0);
        assert_eq!(solver.total_solves(), 0);
        let mut x = vec![1.0, 1.0];
        let outcome = solver.solve(&mut Poly, &mut x);
        let NewtonOutcome::Converged { iterations } = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(solver.total_iterations(), iterations as u64);
        assert_eq!(solver.total_solves(), 1);
        let mut x2 = vec![1.0, 1.0];
        solver.solve(&mut Poly, &mut x2);
        assert_eq!(solver.total_solves(), 2);
        assert!(solver.total_iterations() >= 2 * iterations as u64);
    }
}
