//! End-to-end tests of the `nvpg-serve` request path: byte-identity with
//! the `figures` CLI, cache/single-flight accounting, admission control,
//! hostile decks, and graceful drain.
//!
//! The obs metrics registry is process-global, so every test serialises
//! on one mutex and asserts *deltas* of the serve counters.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use nvpg_obs::metrics::counters;
use nvpg_serve::{ServeConfig, Server};

/// Serialises tests (shared metrics registry + shared Experiments memo).
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    nvpg_obs::enable_metrics();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn test_config() -> ServeConfig {
    ServeConfig {
        listen: "127.0.0.1:0".to_owned(),
        jobs: 4,
        cache_bytes: 8 << 20,
        queue_depth: 16,
        debug_endpoints: true,
        ..ServeConfig::default()
    }
}

/// Body prefix for a deck whose transient at `t_stop = 1e-3` takes
/// ≫ 10 s to solve (`dt_max` caps at 100 ps ⇒ ten million steps
/// minimum) — the acceptance workload for deadline tests. Append
/// `,"timeout_ms":N}` (or just `}`) to finish the JSON.
const SLOW_BODY: &str = r#"{"deck":"V1 vin 0 PULSE(0 1 1n 1n 1n 1u 2u)\nR1 vin out 1k\nC1 out 0 1n\n","analysis":"tran","t_stop":1e-3"#;

/// One HTTP exchange on a fresh connection.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("utf8 body")
    }
}

fn read_reply(stream: TcpStream) -> Reply {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        let h = line.trim_end();
        if h.is_empty() {
            break;
        }
        let (k, v) = h.split_once(':').expect("header colon");
        if k.eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().expect("length");
        }
        headers.push((k.to_owned(), v.trim().to_owned()));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Reply {
        status,
        headers,
        body,
    }
}

fn request(addr: std::net::SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    read_reply(stream)
}

fn get(addr: std::net::SocketAddr, path: &str) -> Reply {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> Reply {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn healthz_metrics_and_unknown_routes() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    assert_eq!(get(addr, "/healthz").text(), "ok\n");
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.text().contains("serve.requests "),
        "metrics exposition lists serve counters: {}",
        metrics.text()
    );
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(
        request(
            addr,
            "GET /bet HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .status,
        405
    );
}

#[test]
fn figures_csv_is_byte_identical_to_the_cli_cached_and_uncached() {
    let _l = lock();
    // What the `figures` CLI writes for fig6a: to_csv of the figure.
    let exp = nvpg_core::Experiments::new(nvpg_cells::design::CellDesign::table1())
        .expect("characterise");
    let expected = nvpg_bench::to_csv(&exp.fig6a().expect("fig6a"));

    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();

    let uncached = get(addr, "/figures/fig6a?format=csv");
    assert_eq!(uncached.status, 200);
    assert_eq!(uncached.body, expected.as_bytes(), "uncached path");
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1);

    let hits0 = counters::SERVE_CACHE_HITS.get();
    let cached = get(addr, "/figures/fig6a?format=csv");
    assert_eq!(cached.body, expected.as_bytes(), "cached path");
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1, "no second solve");
    assert_eq!(counters::SERVE_CACHE_HITS.get() - hits0, 1);

    // The default format is CSV, and it is the same bytes.
    let default_fmt = get(addr, "/figures/fig6a");
    assert_eq!(default_fmt.body, expected.as_bytes());

    // JSON format exists and carries the same series count.
    let json = get(addr, "/figures/fig6a?format=json");
    assert_eq!(json.status, 200);
    assert!(json.text().starts_with("{\"id\":\"fig6a\""));
}

#[test]
fn concurrent_identical_requests_dedup_to_one_solve() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();
    let hits0 = counters::SERVE_CACHE_HITS.get();

    // fig6b is a real transient solve (tens of ms at least), so four
    // concurrent requests overlap; single-flight must run it once.
    let n = 4;
    let handles: Vec<_> = (0..n)
        .map(|_| std::thread::spawn(move || get(addr, "/figures/fig6b?format=csv")))
        .collect();
    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().expect("t")).collect();
    let first = &replies[0].body;
    assert!(replies.iter().all(|r| r.status == 200 && &r.body == first));
    assert_eq!(
        counters::SERVE_SOLVES.get() - solves0,
        1,
        "exactly one solve for {n} identical concurrent requests"
    );
    assert_eq!(
        counters::SERVE_CACHE_HITS.get() - hits0,
        n - 1,
        "every other request reused it (follower or cache hit)"
    );
}

#[test]
fn cache_key_ignores_field_order_whitespace_and_number_spelling() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();

    let a = post(addr, "/bet", r#"{"arch":"NVPG","n_rw":10,"t_sd":0.001}"#);
    assert_eq!(a.status, 200, "{}", a.text());
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1);

    // Same meaning, different spelling: must be a cache hit, not a solve.
    let hits0 = counters::SERVE_CACHE_HITS.get();
    let b = post(
        addr,
        "/bet",
        "{ \"t_sd\" : 1e-3 ,\n  \"n_rw\" : 10.0,  \"arch\" : \"NVPG\" }",
    );
    assert_eq!(b.status, 200);
    assert_eq!(b.body, a.body, "identical response bytes");
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1, "no second solve");
    assert_eq!(counters::SERVE_CACHE_HITS.get() - hits0, 1);

    // A semantically different request is NOT a cache hit.
    let c = post(addr, "/bet", r#"{"arch":"NOF","n_rw":10,"t_sd":0.001}"#);
    assert_eq!(c.status, 200);
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 2);
    assert_ne!(c.body, a.body);
}

#[test]
fn bet_and_sweep_answer_structured_json() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    let bet = post(addr, "/bet", r#"{"arch":"NVPG"}"#);
    assert_eq!(bet.status, 200, "{}", bet.text());
    assert!(bet.text().contains("\"bet\":{\"kind\":"), "{}", bet.text());

    let iter = post(addr, "/bet", r#"{"arch":"NVPG","method":"iterative"}"#);
    assert_eq!(iter.status, 200, "{}", iter.text());

    let sweep = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"rows","values":[32,512,4096]}"#,
    );
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let text = sweep.text();
    assert_eq!(text.matches("\"value\":").count(), 3, "{text}");

    // Validation errors are structured 400s.
    assert_eq!(post(addr, "/bet", r#"{"arch":"OSR"}"#).status, 400);
    assert_eq!(post(addr, "/bet", r#"{"nrw":1}"#).status, 400);
    assert_eq!(post(addr, "/bet", "not json").status, 400);
    assert_eq!(
        post(
            addr,
            "/sweep",
            r#"{"arch":"NVPG","var":"bogus","values":[1]}"#
        )
        .status,
        400
    );
}

#[test]
fn sweep_cache_key_canonicalises_point_sets() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();

    // Reordered and duplicated on the wire; answered over the
    // sorted-unique set {32, 512, 4096}.
    let a = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"rows","values":[512,32,4096,32]}"#,
    );
    assert_eq!(a.status, 200, "{}", a.text());
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1);
    let text = a.text();
    assert_eq!(text.matches("\"value\":").count(), 3, "{text}");
    let at = |needle: &str| {
        text.find(needle)
            .unwrap_or_else(|| panic!("{needle} in {text}"))
    };
    assert!(
        at("\"value\":3.2e1") < at("\"value\":5.12e2")
            && at("\"value\":5.12e2") < at("\"value\":4.096e3"),
        "points ascend: {text}"
    );

    // The same set spelled differently is the same cache entry.
    let hits0 = counters::SERVE_CACHE_HITS.get();
    let b = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"rows","values":[4096,512,32]}"#,
    );
    assert_eq!(b.status, 200);
    assert_eq!(b.body, a.body, "identical response bytes");
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1, "no second solve");
    assert_eq!(counters::SERVE_CACHE_HITS.get() - hits0, 1);

    // A genuinely different set is a different key.
    let c = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"rows","values":[32,512]}"#,
    );
    assert_eq!(c.status, 200);
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 2);

    // Validation still answers structured 400s on the canonical set.
    let bad = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"rows","values":[2.5]}"#,
    );
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("row count"), "{}", bad.text());
}

#[test]
fn vth_shift_sweep_solves_through_the_batched_scan() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // Pay the one-off Table I characterisation outside the deltas.
    let warm = post(addr, "/bet", r#"{"arch":"NVPG"}"#);
    assert_eq!(warm.status, 200, "{}", warm.text());

    let batched0 = counters::ENGINE_BATCHED_POINTS.get();
    let a = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"vth_shift","values":[0.01,-0.01,0.0]}"#,
    );
    assert_eq!(a.status, 200, "{}", a.text());
    let text = a.text();
    assert_eq!(text.matches("\"value\":").count(), 3, "{text}");
    // Every shift is one varied design's domain operating point on the
    // batched stack — the tentpole path, not the analytic model.
    assert!(
        counters::ENGINE_BATCHED_POINTS.get() - batched0 >= 3,
        "vth sweep solved off the batched path"
    );

    // The scan is NVPG-specific; other vars stay unaffected.
    let nof = post(
        addr,
        "/sweep",
        r#"{"arch":"NOF","var":"vth_shift","values":[0.0]}"#,
    );
    assert_eq!(nof.status, 400, "{}", nof.text());
    assert!(nof.text().contains("NVPG architecture"), "{}", nof.text());
    let wild = post(
        addr,
        "/sweep",
        r#"{"arch":"NVPG","var":"vth_shift","values":[0.9]}"#,
    );
    assert_eq!(wild.status, 400, "{}", wild.text());
    assert!(wild.text().contains("threshold shift"), "{}", wild.text());
}

#[test]
fn sibling_sweeps_coalesce_into_one_union_solve() {
    let _l = lock();
    let mut config = test_config();
    config.coalesce_window_ms = 300;
    let server = Server::start(config).expect("start");
    let addr = server.addr();

    // Pay the one-off Table I characterisation outside the deltas.
    let warm = post(addr, "/bet", r#"{"arch":"NVPG"}"#);
    assert_eq!(warm.status, 200, "{}", warm.text());

    let solves0 = counters::SERVE_SOLVES.get();
    let batches0 = counters::SERVE_BATCH_BATCHES.get();
    let coalesced0 = counters::SERVE_BATCH_COALESCED.get();
    let points0 = counters::SERVE_BATCH_POINTS.get();

    // Four siblings: same topology (arch, var, params), overlapping but
    // distinct point sets — so neither the cache nor single-flight can
    // dedup them; only the coalescer can.
    let bodies = [
        r#"{"arch":"NVPG","var":"rows","values":[32,64]}"#,
        r#"{"arch":"NVPG","var":"rows","values":[64,128]}"#,
        r#"{"arch":"NVPG","var":"rows","values":[128,256]}"#,
        r#"{"arch":"NVPG","var":"rows","values":[256,512]}"#,
    ];
    let handles: Vec<_> = bodies
        .iter()
        .map(|&body| std::thread::spawn(move || post(addr, "/sweep", body)))
        .collect();
    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().expect("t")).collect();
    for (body, reply) in bodies.iter().zip(&replies) {
        assert_eq!(reply.status, 200, "{body}: {}", reply.text());
        assert_eq!(
            reply.text().matches("\"value\":").count(),
            2,
            "each sibling answers exactly its own 2 points: {}",
            reply.text()
        );
    }
    assert!(
        replies[1].text().contains("\"value\":6.4e1")
            && replies[1].text().contains("\"value\":1.28e2"),
        "sibling 2 got its own points back: {}",
        replies[1].text()
    );

    // Reconciliation: every request was its own single-flight leader
    // (4 distinct bodies), and every one either led the batch or joined
    // it — with a 300 ms window they all landed in ONE batch, whose
    // union {32, 64, 128, 256, 512} is 5 deduplicated points.
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 4);
    let batches = counters::SERVE_BATCH_BATCHES.get() - batches0;
    let coalesced = counters::SERVE_BATCH_COALESCED.get() - coalesced0;
    assert_eq!(batches + coalesced, 4, "leads + joins = batched requests");
    assert_eq!(batches, 1, "one union solve for all four siblings");
    assert_eq!(
        counters::SERVE_BATCH_POINTS.get() - points0,
        5,
        "the deduplicated union was solved once"
    );
}

#[test]
fn simulate_runs_dc_and_tran_and_rejects_hostile_decks() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    let dc = post(
        addr,
        "/simulate",
        r#"{"deck":"V1 vin 0 1.0\nR1 vin out 1k\nR2 out 0 1k\n.end\n","analysis":"dc"}"#,
    );
    assert_eq!(dc.status, 200, "{}", dc.text());
    let parsed = nvpg_obs::json::parse(dc.text()).expect("dc response is JSON");
    let out = parsed
        .as_obj()
        .and_then(|o| o.get("voltages"))
        .and_then(|v| v.as_obj())
        .and_then(|v| v.get("out"))
        .and_then(nvpg_obs::json::Json::as_num)
        .expect("voltages.out");
    assert!((out - 0.5).abs() < 1e-6, "divider midpoint, got {out}");

    let tran = post(
        addr,
        "/simulate",
        r#"{"deck":"V1 a 0 PULSE(0 0.9 1n 50p 50p 2n 5n)\nR1 a b 1k\nC1 b 0 1p\n","analysis":"tran","t_stop":4e-9}"#,
    );
    assert_eq!(tran.status, 200, "{}", tran.text());
    assert!(tran.text().contains("\"time\":["), "{}", tran.text());
    assert!(tran.text().contains("v(b)"), "{}", tran.text());

    // Hostile decks: structured 400 with a line number, never a panic.
    let bad = post(addr, "/simulate", r#"{"deck":"V1 a 0 1.0\nR1 a 0 oops\n"}"#);
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("line 2"), "{}", bad.text());
    for deck in [".ends\\n", "X1\\n", "R1\\n", ".\\n"] {
        let r = post(addr, "/simulate", &format!("{{\"deck\":\"{deck}\"}}"));
        assert_eq!(r.status, 400, "deck {deck:?}: {}", r.text());
    }
}

#[test]
fn simulate_solver_choice_is_honoured_and_keyed() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    let voltage_out = |resp: &str| {
        nvpg_obs::json::parse(resp)
            .expect("response is JSON")
            .as_obj()
            .and_then(|o| o.get("voltages").cloned())
            .and_then(|v| v.as_obj().and_then(|v| v.get("out").cloned()))
            .and_then(|v| nvpg_obs::json::Json::as_num(&v))
            .expect("voltages.out")
    };
    let deck = r#"V1 vin 0 1.0\nR1 vin out 1k\nR2 out 0 1k\n.end\n"#;

    // Dense and sparse must agree; both must miss the cache the first
    // time (different canonical bodies → different request keys).
    let solves0 = counters::SERVE_SOLVES.get();
    let dense = post(
        addr,
        "/simulate",
        &format!(r#"{{"deck":"{deck}","analysis":"dc","solver":"dense"}}"#),
    );
    assert_eq!(dense.status, 200, "{}", dense.text());
    let sparse = post(
        addr,
        "/simulate",
        &format!(r#"{{"deck":"{deck}","analysis":"dc","solver":"sparse"}}"#),
    );
    assert_eq!(sparse.status, 200, "{}", sparse.text());
    assert_eq!(
        counters::SERVE_SOLVES.get(),
        solves0 + 2,
        "each solver choice is a distinct cache key"
    );
    let (vd, vs) = (voltage_out(dense.text()), voltage_out(sparse.text()));
    assert!((vd - vs).abs() < 1e-9, "dense {vd} vs sparse {vs}");

    // A repeat of the sparse request is a cache hit, not a new solve.
    let again = post(
        addr,
        "/simulate",
        &format!(r#"{{"deck":"{deck}","analysis":"dc","solver":"sparse"}}"#),
    );
    assert_eq!(again.status, 200);
    assert_eq!(counters::SERVE_SOLVES.get(), solves0 + 2);

    // Transient accepts the key too.
    let tran = post(
        addr,
        "/simulate",
        &format!(r#"{{"deck":"{deck}","analysis":"tran","t_stop":1e-9,"solver":"sparse"}}"#),
    );
    assert_eq!(tran.status, 200, "{}", tran.text());

    // An unknown solver is a structured 400 (and, being an error, is
    // never cached).
    let bad = post(
        addr,
        "/simulate",
        &format!(r#"{{"deck":"{deck}","solver":"klu"}}"#),
    );
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("solver"), "{}", bad.text());
}

#[test]
fn queue_overflow_sheds_load_with_503_and_retry_after() {
    let _l = lock();
    let mut config = test_config();
    config.jobs = 1;
    config.queue_depth = 1;
    let server = Server::start(config).expect("start");
    let addr = server.addr();
    let rejected0 = counters::SERVE_REJECTED.get();

    // Occupy the single worker...
    let sleeper = std::thread::spawn(move || get(addr, "/debug/sleep?ms=1200"));
    std::thread::sleep(Duration::from_millis(300));
    // ...fill the queue with a second connection...
    let queued = std::thread::spawn(move || get(addr, "/healthz"));
    std::thread::sleep(Duration::from_millis(300));
    // ...and overflow with a third: the acceptor must shed it at once.
    let t0 = Instant::now();
    let shed = get(addr, "/healthz");
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("Retry-After"), Some("1"));
    assert!(
        t0.elapsed() < Duration::from_millis(600),
        "shed happened immediately, not after the worker freed up"
    );
    assert!(counters::SERVE_REJECTED.get() > rejected0);

    // The occupied worker and the queued connection still complete.
    assert_eq!(sleeper.join().expect("sleeper").status, 200);
    assert_eq!(queued.join().expect("queued").status, 200);
}

#[test]
fn timeout_ms_answers_504_and_frees_the_worker() {
    let _l = lock();
    let mut config = test_config();
    config.jobs = 1; // the follow-up must reuse the *same* worker
    let server = Server::start(config).expect("start");
    let addr = server.addr();
    let expired0 = counters::SERVE_DEADLINE_EXCEEDED.get();

    let t0 = Instant::now();
    let reply = post(
        addr,
        "/simulate",
        &format!("{SLOW_BODY},\"timeout_ms\":500}}"),
    );
    let elapsed = t0.elapsed();
    assert_eq!(reply.status, 504, "{}", reply.text());
    assert!(
        elapsed >= Duration::from_millis(400) && elapsed < Duration::from_millis(1500),
        "504 near the 500 ms deadline, got {elapsed:?}"
    );
    let text = reply.text();
    assert!(text.contains("deadline exceeded"), "{text}");
    assert!(text.contains("\"elapsed_ms\":"), "{text}");
    assert!(text.contains("transient t ="), "partial progress: {text}");
    assert_eq!(counters::SERVE_DEADLINE_EXCEEDED.get() - expired0, 1);

    // The single worker is free again: a follow-up completes promptly.
    let t1 = Instant::now();
    assert_eq!(get(addr, "/healthz").status, 200);
    assert!(
        t1.elapsed() < Duration::from_millis(500),
        "worker was freed by the cancellation, not wedged"
    );
}

#[test]
fn timeout_ms_is_stripped_from_the_cache_key() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();

    let deck = r#""deck":"V1 vin 0 1.0\nR1 vin out 1k\nR2 out 0 1k\n","analysis":"dc""#;
    let a = post(
        addr,
        "/simulate",
        &format!("{{{deck},\"timeout_ms\":5000}}"),
    );
    assert_eq!(a.status, 200, "{}", a.text());
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1);

    // Same meaning, different deadline: a cache hit, not a second solve.
    let hits0 = counters::SERVE_CACHE_HITS.get();
    let b = post(
        addr,
        "/simulate",
        &format!("{{{deck},\"timeout_ms\":9000}}"),
    );
    assert_eq!(b.status, 200);
    assert_eq!(b.body, a.body);
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1, "no second solve");
    assert_eq!(counters::SERVE_CACHE_HITS.get() - hits0, 1);

    // A bogus timeout_ms is a structured 400.
    let bad = post(addr, "/simulate", &format!("{{{deck},\"timeout_ms\":0.5}}"));
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("timeout_ms"), "{}", bad.text());
}

#[test]
fn follower_with_a_tighter_deadline_fails_fast() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();
    let solves0 = counters::SERVE_SOLVES.get();
    let expired0 = counters::SERVE_DEADLINE_EXCEEDED.get();

    // Leader: the slow solve under a 2 s deadline. `timeout_ms` is
    // stripped from the single-flight key, so the follower (same deck,
    // tighter deadline) parks behind this leader.
    let leader = std::thread::spawn(move || {
        post(
            addr,
            "/simulate",
            &format!("{SLOW_BODY},\"timeout_ms\":2000}}"),
        )
    });
    std::thread::sleep(Duration::from_millis(400));

    let t0 = Instant::now();
    let follower = post(
        addr,
        "/simulate",
        &format!("{SLOW_BODY},\"timeout_ms\":250}}"),
    );
    let follower_elapsed = t0.elapsed();
    assert_eq!(follower.status, 504, "{}", follower.text());
    assert!(
        follower_elapsed < Duration::from_millis(1000),
        "follower honoured its own 250 ms deadline instead of waiting \
         out the leader's 2 s one, got {follower_elapsed:?}"
    );
    assert!(
        follower.text().contains("in-flight"),
        "follower 504 names the single-flight wait: {}",
        follower.text()
    );

    let leader_reply = leader.join().expect("leader");
    assert_eq!(leader_reply.status, 504, "{}", leader_reply.text());
    assert_eq!(
        counters::SERVE_SOLVES.get() - solves0,
        1,
        "one solve total: the follower gave up without re-solving"
    );
    assert_eq!(
        counters::SERVE_DEADLINE_EXCEEDED.get() - expired0,
        2,
        "both requests recorded their deadline expiry"
    );
}

#[test]
fn disconnected_client_cancels_its_solve() {
    let _l = lock();
    let mut config = test_config();
    config.jobs = 1; // prove the worker is freed, not leaked
    let server = Server::start(config).expect("start");
    let addr = server.addr();
    let disconnects0 = counters::SERVE_DISCONNECTS.get();

    // Start the slow solve under a generous deadline, then hang up.
    let body = format!("{SLOW_BODY},\"timeout_ms\":60000}}");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST /simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    std::thread::sleep(Duration::from_millis(400));
    drop(stream); // the hang-up

    // The watchdog notices within tens of ms and cancels the solve; the
    // single worker is free long before the 60 s deadline.
    let t0 = Instant::now();
    assert_eq!(get(addr, "/healthz").status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "worker freed by disconnect cancellation, got {:?}",
        t0.elapsed()
    );
    assert!(
        counters::SERVE_DISCONNECTS.get() > disconnects0,
        "the disconnect was observed and counted"
    );
}

#[test]
fn stalled_solves_trip_the_watchdog() {
    let _l = lock();
    let mut config = test_config();
    config.watchdog_stall_ms = 200;
    let server = Server::start(config).expect("start");
    let addr = server.addr();
    let fires0 = counters::SERVE_WATCHDOG_FIRES.get();

    // /debug/sleep never beats the progress heartbeat — to the watchdog
    // it is indistinguishable from a wedged solve, so the stall bound
    // trips while it sleeps (the sleep itself is not cancellable; the
    // counter is the observable).
    let reply = get(addr, "/debug/sleep?ms=700");
    assert_eq!(reply.status, 200);
    assert!(
        counters::SERVE_WATCHDOG_FIRES.get() > fires0,
        "watchdog fired on the stalled request"
    );
}

#[test]
fn rate_limit_sheds_the_noisy_tenant_only() {
    let _l = lock();
    let mut config = test_config();
    config.rate_limit_rps = 1;
    config.rate_limit_burst = 2;
    let server = Server::start(config).expect("start");
    let addr = server.addr();
    let limited0 = counters::SERVE_RATE_LIMITED.get();

    let as_tenant = |tenant: &str| {
        request(
            addr,
            &format!(
                "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Client: {tenant}\r\nConnection: close\r\n\r\n"
            ),
        )
    };
    // The noisy tenant burns its burst of 2, then is shed.
    assert_eq!(as_tenant("noisy").status, 200);
    assert_eq!(as_tenant("noisy").status, 200);
    let shed = as_tenant("noisy");
    assert_eq!(shed.status, 429, "{}", shed.text());
    assert!(shed.header("Retry-After").is_some(), "429 carries a hint");
    // A different tenant is untouched by the noisy one's flood.
    assert_eq!(as_tenant("quiet").status, 200);
    assert!(counters::SERVE_RATE_LIMITED.get() > limited0);
}

#[test]
fn oversized_bodies_and_heads_answer_413_and_431() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // A Content-Length past the body cap: shed before any read.
    let huge = request(
        addr,
        &format!(
            "POST /simulate HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            2 << 20
        ),
    );
    assert_eq!(huge.status, 413, "{}", huge.text());

    // A bloated header block: 431, not a hang or a 400.
    let fat = request(
        addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(20 * 1024)
        ),
    );
    assert_eq!(fat.status, 431, "{}", fat.text());

    // Too many individually-small headers: also 431.
    let mut many = String::from("GET /healthz HTTP/1.1\r\nHost: t\r\n");
    for i in 0..101 {
        many.push_str(&format!("X-{i}: v\r\n"));
    }
    many.push_str("\r\n");
    let flood = request(addr, &many);
    assert_eq!(flood.status, 431, "{}", flood.text());
}

#[test]
fn shutdown_drains_in_flight_work() {
    let _l = lock();
    let mut config = test_config();
    config.jobs = 1;
    let mut server = Server::start(config).expect("start");
    let addr = server.addr();

    let inflight = std::thread::spawn(move || get(addr, "/debug/sleep?ms=800"));
    std::thread::sleep(Duration::from_millis(200));
    let t0 = Instant::now();
    server.shutdown();
    let drained_in = t0.elapsed();

    // The in-flight request completed (drained, not dropped)...
    assert_eq!(inflight.join().expect("inflight").status, 200);
    // ...and shutdown waited for it rather than racing past.
    assert!(drained_in >= Duration::from_millis(400), "{drained_in:?}");
    // New connections are refused once drained.
    assert!(TcpStream::connect(addr).is_err(), "listener is gone");
}

#[test]
fn mistyped_simulate_fields_are_rejected_not_defaulted() {
    // A present-but-wrongly-typed field must 400: falling back to the
    // default analysis ("dc") or t_stop (1e-9) would silently run the
    // wrong simulation and cache it under the request's own key.
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    let deck = r#""deck":"V1 a 0 1.0\nR1 a 0 1k\n""#;

    // `analysis` as a number, an object, and null: all 400 with a
    // message naming the field; absent still defaults to dc.
    for bad in ["42", "{}", "null", "[\"dc\"]"] {
        let reply = post(
            addr,
            "/simulate",
            &format!(r#"{{{deck},"analysis":{bad}}}"#),
        );
        assert_eq!(reply.status, 400, "analysis={bad}: {}", reply.text());
        assert!(reply.text().contains("analysis"), "{}", reply.text());
    }
    let defaulted = post(addr, "/simulate", &format!("{{{deck}}}"));
    assert_eq!(defaulted.status, 200, "{}", defaulted.text());
    assert!(defaulted.text().contains("\"analysis\":\"dc\""));

    // `t_stop` as a string (even a plausible-looking "1n") or bool:
    // 400, not a silent 1 ns transient.
    for bad in ["\"1n\"", "\"1e-9\"", "true", "[1e-9]"] {
        let reply = post(
            addr,
            "/simulate",
            &format!(r#"{{{deck},"analysis":"tran","t_stop":{bad}}}"#),
        );
        assert_eq!(reply.status, 400, "t_stop={bad}: {}", reply.text());
        assert!(reply.text().contains("t_stop"), "{}", reply.text());
    }
    let defaulted = post(
        addr,
        "/simulate",
        &format!(r#"{{{deck},"analysis":"tran"}}"#),
    );
    assert_eq!(defaulted.status, 200, "{}", defaulted.text());

    // A mistyped `t_stop` is rejected even when the analysis is DC and
    // the field would never be read — ignoring it hides the client bug.
    let reply = post(addr, "/simulate", &format!(r#"{{{deck},"t_stop":"1n"}}"#));
    assert_eq!(reply.status, 400, "{}", reply.text());
    assert!(reply.text().contains("t_stop"), "{}", reply.text());
}

#[test]
fn truncated_request_lines_are_malformed_not_http10() {
    // `GET /path` with no version is a cut-off request line; treating
    // it as HTTP/1.0 used to accept it silently. It must 400, as must
    // a request line with trailing junk after the version.
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    let no_version = request(addr, "GET /healthz\r\n\r\n");
    assert_eq!(no_version.status, 400, "{}", no_version.text());
    assert!(
        no_version.text().contains("version"),
        "{}",
        no_version.text()
    );

    let trailing = request(addr, "GET /healthz HTTP/1.1 extra\r\n\r\n");
    assert_eq!(trailing.status, 400, "{}", trailing.text());

    // Well-formed HTTP/1.0 (version present) still works.
    let ok = request(addr, "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n");
    assert_eq!(ok.status, 200, "{}", ok.text());
}

#[test]
fn technology_field_selects_characterisation_and_cache_key() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // Unknown or mistyped technologies are structured 400s on both
    // endpoints, before any characterisation work starts.
    let bad = post(addr, "/bet", r#"{"arch":"NVPG","technology":"flux"}"#);
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("technology"), "{}", bad.text());
    assert_eq!(
        post(addr, "/bet", r#"{"arch":"NVPG","technology":7}"#).status,
        400
    );
    assert_eq!(
        post(
            addr,
            "/sweep",
            r#"{"arch":"NVPG","var":"n_rw","values":[1],"technology":"flux"}"#
        )
        .status,
        400
    );

    // A valid non-default technology answers 200, names itself in the
    // body, and is its own cache entry (a second solve, not a hit).
    let solves0 = counters::SERVE_SOLVES.get();
    let mtj = post(addr, "/bet", r#"{"arch":"NVPG"}"#);
    assert_eq!(mtj.status, 200, "{}", mtj.text());
    assert!(
        mtj.text().contains("\"technology\":\"mtj\""),
        "{}",
        mtj.text()
    );
    let spin = post(addr, "/bet", r#"{"arch":"NVPG","technology":"nand_spin"}"#);
    assert_eq!(spin.status, 200, "{}", spin.text());
    assert!(
        spin.text().contains("\"technology\":\"nand_spin\""),
        "{}",
        spin.text()
    );
    assert!(
        counters::SERVE_SOLVES.get() - solves0 >= 2,
        "distinct technologies must not share a cache entry"
    );
    // Repeating the non-default query is a pure cache hit.
    let solves1 = counters::SERVE_SOLVES.get();
    let again = post(addr, "/bet", r#"{"arch":"NVPG","technology":"nand_spin"}"#);
    assert_eq!(again.status, 200);
    assert_eq!(again.body, spin.body, "identical response bytes");
    assert_eq!(counters::SERVE_SOLVES.get(), solves1, "no recompute");
}

#[test]
fn macro_endpoint_validates_solves_and_caches() {
    let _l = lock();
    let server = Server::start(test_config()).expect("start");
    let addr = server.addr();

    // Wrong method and malformed specs are rejected before any solve.
    assert_eq!(get(addr, "/macro").status, 405);
    assert_eq!(post(addr, "/macro", r#"{"bogus":1}"#).status, 400);
    assert_eq!(post(addr, "/macro", r#"{"rows":0}"#).status, 400);
    assert_eq!(post(addr, "/macro", r#"{"rows":1000000}"#).status, 400);
    let indivisible = post(addr, "/macro", r#"{"cols":4,"mux":3}"#);
    assert_eq!(indivisible.status, 400, "{}", indivisible.text());
    assert_eq!(
        post(addr, "/macro", r#"{"granularity":"per_nothing"}"#).status,
        400
    );
    assert_eq!(post(addr, "/macro", r#"{"arch":"OSR"}"#).status, 400);
    assert_eq!(post(addr, "/macro", r#"{"technology":"flux"}"#).status, 400);

    // A small macro report: one solve, structured fields, and a BET.
    let body = r#"{"rows":2,"cols":2,"mux":1,"granularity":"per_row","technology":"mtj"}"#;
    let solves0 = counters::SERVE_SOLVES.get();
    let a = post(addr, "/macro", body);
    assert_eq!(a.status, 200, "{}", a.text());
    let text = a.text();
    for needle in [
        "\"arch\":\"NVPG\"",
        "\"technology\":\"mtj\"",
        "\"granularity\":\"per_row\"",
        "\"groups\":2",
        "\"unknowns\":",
        "\"static_power_w\":",
        "\"bet\":{\"kind\":",
    ] {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1);

    // Determinism through the cache: the same spec answers the same
    // bytes without a second solve, in any field order.
    let hits0 = counters::SERVE_CACHE_HITS.get();
    let b = post(
        addr,
        "/macro",
        r#"{"technology":"mtj","granularity":"per_row","mux":1,"cols":2,"rows":2}"#,
    );
    assert_eq!(b.status, 200);
    assert_eq!(b.body, a.body, "identical response bytes");
    assert_eq!(counters::SERVE_SOLVES.get() - solves0, 1, "no second solve");
    assert_eq!(counters::SERVE_CACHE_HITS.get() - hits0, 1);
}
