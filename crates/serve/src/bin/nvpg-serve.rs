//! `nvpg-serve` — the long-running simulation daemon.
//!
//! ```text
//! nvpg-serve [--listen ADDR] [--jobs N] [--cache-mb MB]
//!            [--queue-depth N] [--queue-per-client N]
//!            [--default-timeout-ms MS] [--max-timeout-ms MS]
//!            [--rate-limit-rps N] [--rate-limit-burst N]
//!            [--watchdog-stall-ms MS] [--coalesce-window-ms MS] [--batch auto|serial|N]
//!            [--debug-endpoints] [--trace]
//! ```
//!
//! Runs until SIGTERM/SIGINT (ctrl-c), then drains in-flight work and
//! exits 0. Metrics are always recorded (metrics-only obs mode); full
//! span tracing only with `--trace` (not recommended for long uptimes —
//! the span buffer grows until drained).

use std::sync::atomic::{AtomicBool, Ordering};

use nvpg_serve::{ServeConfig, Server};

/// Flipped by the signal handler; the main thread polls it.
static STOP: AtomicBool = AtomicBool::new(false);

/// Minimal async-signal-safe handler: set a flag, nothing else.
extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via the C
/// `signal(2)` entry point — libc is already linked by std, so this adds
/// no dependency.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal); // SIGINT
        signal(15, on_signal); // SIGTERM
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: nvpg-serve [--listen ADDR] [--jobs N] [--cache-mb MB] \
         [--queue-depth N] [--queue-per-client N] [--default-timeout-ms MS] \
         [--max-timeout-ms MS] [--rate-limit-rps N] [--rate-limit-burst N] \
         [--watchdog-stall-ms MS] [--coalesce-window-ms MS] \
         [--batch auto|serial|N] [--debug-endpoints] [--trace]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--listen" => config.listen = value("--listen"),
            "--jobs" => match value("--jobs").parse() {
                Ok(n) => config.jobs = n,
                Err(_) => usage(),
            },
            "--cache-mb" => match value("--cache-mb").parse::<usize>() {
                Ok(mb) => config.cache_bytes = mb << 20,
                Err(_) => usage(),
            },
            "--queue-depth" => match value("--queue-depth").parse() {
                Ok(n) => config.queue_depth = n,
                Err(_) => usage(),
            },
            "--queue-per-client" => match value("--queue-per-client").parse() {
                Ok(n) => config.queue_per_client = n,
                Err(_) => usage(),
            },
            "--default-timeout-ms" => match value("--default-timeout-ms").parse() {
                Ok(ms) => config.default_timeout_ms = ms,
                Err(_) => usage(),
            },
            "--max-timeout-ms" => match value("--max-timeout-ms").parse() {
                Ok(ms) => config.max_timeout_ms = ms,
                Err(_) => usage(),
            },
            "--rate-limit-rps" => match value("--rate-limit-rps").parse() {
                Ok(n) => config.rate_limit_rps = n,
                Err(_) => usage(),
            },
            "--rate-limit-burst" => match value("--rate-limit-burst").parse() {
                Ok(n) => config.rate_limit_burst = n,
                Err(_) => usage(),
            },
            "--watchdog-stall-ms" => match value("--watchdog-stall-ms").parse() {
                Ok(ms) => config.watchdog_stall_ms = ms,
                Err(_) => usage(),
            },
            "--coalesce-window-ms" => match value("--coalesce-window-ms").parse() {
                Ok(ms) => config.coalesce_window_ms = ms,
                Err(_) => usage(),
            },
            "--batch" => match value("--batch").parse() {
                Ok(mode) => nvpg_circuit::set_default_batch(mode),
                Err(_) => usage(),
            },
            "--debug-endpoints" => config.debug_endpoints = true,
            "--trace" => trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    if trace {
        nvpg_obs::enable();
    } else {
        nvpg_obs::enable_metrics();
    }
    if config.jobs > 0 {
        nvpg_exec::set_default_jobs(config.jobs);
    }

    install_signal_handlers();
    let mut server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("nvpg-serve: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "nvpg-serve listening on {} (jobs={}, cache={} MiB, queue={})",
        server.addr(),
        config.jobs.max(1),
        config.cache_bytes >> 20,
        config.queue_depth
    );

    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("nvpg-serve: draining...");
    server.shutdown();
    eprintln!("nvpg-serve: drained, bye");
}
