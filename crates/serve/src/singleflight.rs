//! Single-flight deduplication of identical in-flight requests.
//!
//! When N identical requests arrive while none is cached, only the first
//! (the *leader*) runs the solver; the others (*followers*) park on the
//! leader's call and share its result. Combined with the response cache
//! this gives the stampede guarantee the acceptance criteria pin down: N
//! concurrent identical requests perform exactly one solve.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// How this thread obtained the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This thread computed the value.
    Leader,
    /// This thread waited for a concurrent leader.
    Follower,
}

struct Call<T> {
    slot: Mutex<Option<T>>,
    done: Condvar,
}

/// A group of keyed calls. One per server.
pub struct Group<T> {
    calls: Mutex<HashMap<u128, Arc<Call<T>>>>,
}

impl<T: Clone> Group<T> {
    /// Creates an empty group.
    pub fn new() -> Self {
        Group {
            calls: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, unless an identical call is already in
    /// flight — then blocks until the leader finishes and returns its
    /// value. The leader's entry is removed before returning, so later
    /// requests start a fresh call (they are expected to hit the response
    /// cache instead).
    ///
    /// If the leader panics, its followers see the call abandoned and one
    /// of them retries as the new leader — a poisoned entry never wedges
    /// the key.
    pub fn run(&self, key: u128, compute: impl FnOnce() -> T) -> (T, Role) {
        self.run_until(key, compute, || false)
            .expect("give_up is constant false")
    }

    /// [`run`](Self::run) with a follower escape hatch: a *follower*
    /// polls `give_up` while parked and returns `None` as soon as it
    /// turns true, instead of waiting out a leader that may outlive the
    /// follower's own deadline. A leader never gives up mid-compute
    /// (`compute` owns its own cancellation), so `Some` is guaranteed
    /// whenever this thread led.
    pub fn run_until(
        &self,
        key: u128,
        compute: impl FnOnce() -> T,
        give_up: impl Fn() -> bool,
    ) -> Option<(T, Role)> {
        let call = {
            let mut calls = self.calls.lock().expect("singleflight registry");
            match calls.get(&key) {
                Some(existing) => {
                    let call = Arc::clone(existing);
                    drop(calls);
                    // Follower: wait for the slot to fill.
                    let mut slot = call.slot.lock().expect("singleflight slot");
                    loop {
                        if let Some(value) = slot.as_ref() {
                            return Some((value.clone(), Role::Follower));
                        }
                        if give_up() {
                            return None;
                        }
                        // A successful leader fills the slot *before*
                        // deregistering, so "registry no longer maps the
                        // key to this call, yet the slot is empty" can
                        // only mean the leader panicked (its Drop guard
                        // deregistered during unwind). Retry as leader.
                        // (We hold the slot lock across both checks, so
                        // a completing leader cannot slip between them.)
                        let abandoned = !self
                            .calls
                            .lock()
                            .expect("singleflight registry")
                            .get(&key)
                            .is_some_and(|cur| Arc::ptr_eq(cur, &call));
                        if abandoned {
                            drop(slot);
                            return self.run_until(key, compute, give_up);
                        }
                        let (guard, _timeout) = call
                            .done
                            .wait_timeout(slot, std::time::Duration::from_millis(50))
                            .expect("singleflight slot");
                        slot = guard;
                    }
                }
                None => {
                    let call = Arc::new(Call {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    calls.insert(key, Arc::clone(&call));
                    call
                }
            }
        };

        // Leader path. Ensure the registry entry is removed even if
        // `compute` panics, so followers can elect a new leader.
        struct Deregister<'a, T> {
            group: &'a Group<T>,
            key: u128,
        }
        impl<T> Drop for Deregister<'_, T> {
            fn drop(&mut self) {
                self.group
                    .calls
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .remove(&self.key);
            }
        }
        let _cleanup = Deregister { group: self, key };

        let value = compute();
        *call.slot.lock().expect("singleflight slot") = Some(value.clone());
        call.done.notify_all();
        Some((value, Role::Leader))
    }
}

impl<T: Clone> Default for Group<T> {
    fn default() -> Self {
        Group::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn concurrent_identical_calls_compute_once() {
        let group = Arc::new(Group::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let group = Arc::clone(&group);
                let computes = Arc::clone(&computes);
                std::thread::spawn(move || {
                    group.run(42, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the call open long enough for every
                        // follower to attach.
                        std::thread::sleep(Duration::from_millis(100));
                        "value".to_owned()
                    })
                })
            })
            .collect();
        let results: Vec<(String, Role)> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one solve");
        assert!(results.iter().all(|(v, _)| v == "value"));
        assert_eq!(
            results.iter().filter(|(_, r)| *r == Role::Leader).count(),
            1
        );
        assert_eq!(
            results.iter().filter(|(_, r)| *r == Role::Follower).count(),
            7
        );
    }

    #[test]
    fn distinct_keys_do_not_serialise() {
        let group = Group::new();
        let (a, role_a) = group.run(1, || 10);
        let (b, role_b) = group.run(2, || 20);
        assert_eq!((a, b), (10, 20));
        assert_eq!((role_a, role_b), (Role::Leader, Role::Leader));
    }

    #[test]
    fn sequential_calls_recompute() {
        // Single-flight dedups *concurrent* work only; the response
        // cache handles temporal reuse.
        let group = Group::new();
        let computes = AtomicUsize::new(0);
        for _ in 0..3 {
            group.run(7, || computes.fetch_add(1, Ordering::SeqCst));
        }
        assert_eq!(computes.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn follower_gives_up_without_waiting_out_the_leader() {
        let group = Arc::new(Group::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let g2 = Arc::clone(&group);
        let b2 = Arc::clone(&barrier);
        let leader = std::thread::spawn(move || {
            g2.run(11, || {
                b2.wait(); // follower attaches while we sleep
                std::thread::sleep(Duration::from_millis(400));
                7
            })
        });
        barrier.wait();
        std::thread::sleep(Duration::from_millis(20));
        let start = std::time::Instant::now();
        // A follower whose own deadline has already passed bails now.
        let gave_up = group.run_until(11, || 8, || true);
        assert!(gave_up.is_none(), "follower must give up, not compute");
        assert!(
            start.elapsed() < Duration::from_millis(300),
            "give-up must not wait out the leader"
        );
        let (v, role) = leader.join().expect("leader");
        assert_eq!((v, role), (7, Role::Leader));
    }

    #[test]
    fn leader_panic_elects_a_new_leader() {
        let group = Arc::new(Group::new());
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let g2 = Arc::clone(&group);
        let b2 = Arc::clone(&barrier);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.run(9, || {
                    b2.wait(); // follower is attached (or about to be)
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("leader dies");
                    #[allow(unreachable_code)]
                    0
                })
            }));
            assert!(result.is_err());
        });
        barrier.wait();
        let (v, _) = group.run(9, || 123);
        assert_eq!(v, 123);
        panicker.join().expect("panicker thread");
    }
}
