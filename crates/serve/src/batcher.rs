//! Cross-request sweep coalescing: sibling `/sweep` queries — same
//! canonical topology (architecture, method, swept variable, benchmark
//! parameters), *different* point sets — merge into one batch that
//! solves the deduplicated union once.
//!
//! This sits one level above [single-flight](crate::singleflight):
//! single-flight dedups *identical* requests (same canonical body, same
//! key), the batcher dedups *overlapping* ones. The first sibling to
//! arrive becomes the batch **leader**: it holds the batch open for the
//! configured coalescing window, collecting every sibling that arrives
//! meanwhile, then closes the batch, solves the sorted-unique union of
//! all member point sets, and publishes a point → result map. Each
//! member (leader and followers alike) renders its own response from
//! that shared map, restricted to its own canonical point set — so
//! coalescing changes throughput, never meaning.
//!
//! Accounting (`serve.batch.*`): every submission either leads a batch
//! (`serve.batch.batches`) or joins one (`serve.batch.coalesced`), so
//! `batches + coalesced` reconciles exactly against the number of
//! batched requests, and `serve.batch.points` counts the deduplicated
//! points actually solved.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use nvpg_obs::metrics::counters;

/// Canonical hash key of one sweep point. The zero fold matches
/// `nvpg_core::canon::canonicalize_sweep_values`: `-0.0` and `0.0` are
/// one point, every other value is its bit pattern (the sets only hold
/// finite numbers, so NaN payloads never reach this).
pub fn point_key(v: f64) -> u64 {
    if v == 0.0 {
        0
    } else {
        v.to_bits()
    }
}

/// The published outcome of one batch: canonical point key → result.
pub type PointMap<R> = HashMap<u64, R>;

struct State<R, E> {
    /// Still accepting joiners; the leader flips this when the window
    /// closes. Points appended while `open` are guaranteed a slot in the
    /// union.
    open: bool,
    /// The union under construction (duplicates allowed; deduplicated at
    /// close).
    points: Vec<f64>,
    /// Set exactly once, by the leader, after the solve.
    result: Option<Result<Arc<PointMap<R>>, E>>,
    /// The leader unwound before publishing; waiters must re-submit.
    abandoned: bool,
}

struct Batch<R, E> {
    state: Mutex<State<R, E>>,
    done: Condvar,
}

/// One coalescing group, keyed by canonical topology. One per server.
pub struct Batcher<R, E> {
    window: Duration,
    batches: Mutex<HashMap<u128, Arc<Batch<R, E>>>>,
}

impl<R: Clone, E: Clone> Batcher<R, E> {
    /// Creates a batcher holding batches open for `window` per leader.
    pub fn new(window: Duration) -> Self {
        Batcher {
            window,
            batches: Mutex::new(HashMap::new()),
        }
    }

    /// The configured coalescing window (zero = coalescing disabled at
    /// the call site; the batcher itself would simply close batches
    /// immediately).
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Submits `points` under the topology `key`. If a batch for `key`
    /// is open, joins it and parks until the leader publishes; otherwise
    /// leads a new batch: waits out the window, closes, solves the
    /// deduplicated union via `solve` (called with the points in
    /// ascending order, one result per point expected), and publishes.
    ///
    /// Returns `None` if `give_up` turned true while parked (the
    /// caller's deadline expired); the member's points stay in the union
    /// and are solved anyway. A leader never gives up mid-solve —
    /// `solve` owns its own cancellation.
    pub fn submit(
        &self,
        key: u128,
        points: &[f64],
        solve: impl Fn(&[f64]) -> Result<Vec<R>, E>,
        give_up: impl Fn() -> bool,
    ) -> Option<Result<Arc<PointMap<R>>, E>> {
        loop {
            let batch = {
                let mut batches = lock(&self.batches);
                match batches.get(&key) {
                    Some(existing) => {
                        let batch = Arc::clone(existing);
                        drop(batches);
                        match self.join(&batch, points, &give_up) {
                            Joined::Done(outcome) => return outcome,
                            // The batch closed or was abandoned before we
                            // could join: start over (the registry entry
                            // is gone or about to be).
                            Joined::Retry => {
                                std::thread::yield_now();
                                continue;
                            }
                        }
                    }
                    None => {
                        let batch = Arc::new(Batch {
                            state: Mutex::new(State {
                                open: true,
                                points: points.to_vec(),
                                result: None,
                                abandoned: false,
                            }),
                            done: Condvar::new(),
                        });
                        batches.insert(key, Arc::clone(&batch));
                        batch
                    }
                }
            };
            return Some(self.lead(key, &batch, &solve));
        }
    }

    /// Follower path: append points while the batch is open, then park.
    fn join(
        &self,
        batch: &Batch<R, E>,
        points: &[f64],
        give_up: &impl Fn() -> bool,
    ) -> Joined<R, E> {
        let mut state = lock_state(batch);
        if !state.open {
            return Joined::Retry;
        }
        state.points.extend_from_slice(points);
        counters::SERVE_BATCH_COALESCED.add(1);
        loop {
            if let Some(outcome) = &state.result {
                return Joined::Done(Some(outcome.clone()));
            }
            if state.abandoned {
                // Our points died with the leader; resubmit them. The
                // coalesced count stays — this request did join a batch,
                // the batch just never solved.
                return Joined::Retry;
            }
            if give_up() {
                return Joined::Done(None);
            }
            let (guard, _timeout) = batch
                .done
                .wait_timeout(state, Duration::from_millis(25))
                .expect("batch state");
            state = guard;
        }
    }

    /// Leader path: window, close, solve the union, publish.
    fn lead(
        &self,
        key: u128,
        batch: &Arc<Batch<R, E>>,
        solve: &impl Fn(&[f64]) -> Result<Vec<R>, E>,
    ) -> Result<Arc<PointMap<R>>, E> {
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        // Deregister before closing: late arrivals that still hold this
        // batch see it closed and open a fresh one, instead of spinning
        // on a registry entry that will never solve again.
        lock(&self.batches).remove(&key);
        let union = {
            let mut state = lock_state(batch);
            state.open = false;
            let mut points = std::mem::take(&mut state.points);
            points.sort_by(f64::total_cmp);
            points.dedup_by(|a, b| point_key(*a) == point_key(*b));
            points
        };
        // If `solve` unwinds (a panicking handler), wake the followers
        // with `abandoned` so they elect a new leader instead of parking
        // forever — same contract as the single-flight group.
        let guard = AbandonOnDrop { batch, armed: true };
        let outcome = solve(&union).map(|results| {
            Arc::new(
                union
                    .iter()
                    .zip(results)
                    .map(|(&v, r)| (point_key(v), r))
                    .collect::<PointMap<R>>(),
            )
        });
        counters::SERVE_BATCH_BATCHES.add(1);
        if outcome.is_ok() {
            counters::SERVE_BATCH_POINTS.add(union.len() as u64);
        }
        {
            let mut state = lock_state(batch);
            state.result = Some(outcome.clone());
        }
        batch.done.notify_all();
        std::mem::forget(guard);
        outcome
    }
}

enum Joined<R, E> {
    Done(Option<Result<Arc<PointMap<R>>, E>>),
    Retry,
}

struct AbandonOnDrop<'a, R, E> {
    batch: &'a Batch<R, E>,
    #[allow(dead_code)]
    armed: bool,
}

impl<R, E> Drop for AbandonOnDrop<'_, R, E> {
    fn drop(&mut self) {
        let mut state = self.batch.state.lock().unwrap_or_else(|e| e.into_inner());
        state.abandoned = true;
        self.batch.done.notify_all();
    }
}

fn lock<'a, K, V>(m: &'a Mutex<HashMap<K, V>>) -> MutexGuard<'a, HashMap<K, V>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lock_state<'a, R, E>(batch: &'a Batch<R, E>) -> MutexGuard<'a, State<R, E>> {
    batch.state.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn siblings_coalesce_into_one_union_solve() {
        let batcher: Arc<Batcher<f64, String>> = Arc::new(Batcher::new(Duration::from_millis(300)));
        let solves = Arc::new(AtomicUsize::new(0));
        let sets: [&[f64]; 3] = [&[1.0, 2.0], &[2.0, 3.0], &[3.0, 4.0]];
        let handles: Vec<_> = sets
            .iter()
            .map(|&set| {
                let batcher = Arc::clone(&batcher);
                let solves = Arc::clone(&solves);
                let set = set.to_vec();
                std::thread::spawn(move || {
                    batcher
                        .submit(
                            7,
                            &set,
                            |union| {
                                solves.fetch_add(1, Ordering::SeqCst);
                                assert!(
                                    union.windows(2).all(|w| w[0] < w[1]),
                                    "union is sorted and unique: {union:?}"
                                );
                                Ok(union.iter().map(|v| v * 10.0).collect())
                            },
                            || false,
                        )
                        .expect("no give_up")
                        .expect("solve ok")
                })
            })
            .collect();
        let maps: Vec<Arc<PointMap<f64>>> = handles
            .into_iter()
            .map(|h| h.join().expect("member"))
            .collect();
        assert_eq!(solves.load(Ordering::SeqCst), 1, "one union solve");
        assert_eq!(maps[0].len(), 4, "union covered every member's points");
        for (set, map) in sets.iter().zip(&maps) {
            for &v in *set {
                assert_eq!(map[&point_key(v)], v * 10.0);
            }
        }
    }

    #[test]
    fn sequential_submissions_solve_separately() {
        let batcher: Batcher<f64, String> = Batcher::new(Duration::ZERO);
        let solves = AtomicUsize::new(0);
        for _ in 0..3 {
            batcher
                .submit(
                    1,
                    &[5.0],
                    |union| {
                        solves.fetch_add(1, Ordering::SeqCst);
                        Ok(union.to_vec())
                    },
                    || false,
                )
                .expect("lead")
                .expect("ok");
        }
        assert_eq!(solves.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn distinct_topologies_do_not_coalesce() {
        let batcher: Batcher<f64, String> = Batcher::new(Duration::ZERO);
        let a = batcher
            .submit(1, &[1.0], |u| Ok(u.to_vec()), || false)
            .expect("lead")
            .expect("ok");
        let b = batcher
            .submit(2, &[2.0], |u| Ok(u.to_vec()), || false)
            .expect("lead")
            .expect("ok");
        assert!(a.contains_key(&point_key(1.0)) && !a.contains_key(&point_key(2.0)));
        assert!(b.contains_key(&point_key(2.0)) && !b.contains_key(&point_key(1.0)));
    }

    #[test]
    fn solve_errors_propagate_to_every_member() {
        let batcher: Arc<Batcher<f64, String>> = Arc::new(Batcher::new(Duration::from_millis(100)));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let batcher = Arc::clone(&batcher);
                std::thread::spawn(move || {
                    batcher
                        .submit(3, &[i as f64], |_| Err("boom".to_owned()), || false)
                        .expect("no give_up")
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("member").unwrap_err(), "boom");
        }
    }

    #[test]
    fn panicking_leader_abandons_and_a_member_retries() {
        let batcher: Arc<Batcher<f64, String>> = Arc::new(Batcher::new(Duration::from_millis(100)));
        let b2 = Arc::clone(&batcher);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b2.submit(9, &[1.0], |_| panic!("leader dies"), || false)
            }));
            assert!(result.is_err());
        });
        // Give the panicking leader time to open its batch, then join;
        // after the abandon this member must re-lead and succeed.
        std::thread::sleep(Duration::from_millis(30));
        let map = batcher
            .submit(9, &[2.0], |u| Ok(u.to_vec()), || false)
            .expect("no give_up")
            .expect("retried solve succeeds");
        assert!(map.contains_key(&point_key(2.0)));
        panicker.join().expect("panicker thread");
    }

    #[test]
    fn give_up_releases_a_parked_follower() {
        let batcher: Arc<Batcher<f64, String>> = Arc::new(Batcher::new(Duration::from_millis(300)));
        let b2 = Arc::clone(&batcher);
        let leader = std::thread::spawn(move || {
            b2.submit(4, &[1.0], |u| Ok(u.to_vec()), || false)
                .expect("lead")
                .expect("ok")
        });
        std::thread::sleep(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        let gave_up = batcher.submit(4, &[2.0], |u| Ok(u.to_vec()), || true);
        assert!(gave_up.is_none(), "follower must give up, not wait");
        assert!(t0.elapsed() < Duration::from_millis(200));
        // The abandoning follower's point was still solved by the leader.
        let map = leader.join().expect("leader");
        assert!(map.contains_key(&point_key(2.0)), "union kept the point");
    }

    #[test]
    fn point_key_folds_signed_zero() {
        assert_eq!(point_key(-0.0), point_key(0.0));
        assert_ne!(point_key(1.0), point_key(-1.0));
    }
}
