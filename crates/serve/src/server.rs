//! The request path: accept → admit → route → (cache | single-flight |
//! solve) → respond.
//!
//! One acceptor thread owns the listener; `jobs` worker threads own the
//! solvers. Between them sits a [`FairQueue`] of accepted connections
//! keyed by peer address — the *only* buffer in the system, so memory
//! under overload is bounded by `queue_depth` sockets, workers drain
//! peers round-robin, and everything past the cap is shed with `503
//! Retry-After` before any parsing or allocation happens on its behalf.
//!
//! Every request runs under a [`CancelToken`]: its deadline comes from
//! the client's `timeout_ms` (capped by `max_timeout_ms`) or the server
//! default, and a watchdog thread cancels tokens whose client has
//! disconnected or whose solve heartbeat has stalled. An expired solve
//! answers `504` with partial progress diagnostics and frees the worker
//! immediately. A per-client token bucket ([`RateLimiter`], keyed by the
//! `X-Client` header) sheds one tenant's flood with `429` while other
//! tenants keep flowing.
//!
//! Deterministic endpoints (`/figures`, `/bet`, `/sweep`, `/simulate`)
//! flow through the content-addressed [`ResponseCache`] and the
//! [single-flight](crate::singleflight) group; the shared
//! [`Experiments`] characterisation is built once behind a `OnceLock`
//! on first use and reused by every worker for the life of the process.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{IpAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nvpg_cells::design::{CellDesign, RetentionKind};
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{CircuitError, SolverChoice};
use nvpg_core::bet::{bet_closed_form, bet_iterative, Bet};
use nvpg_core::cancel::{self, CancelToken};
use nvpg_core::canon::{
    architecture_from_json, benchmark_params_from_json, canonical_json, canonicalize_sweep_body,
    request_key, request_key_raw,
};
use nvpg_core::{Architecture, Experiments, Figure};
use nvpg_obs::json::{parse as parse_json, Json};
use nvpg_obs::metrics::{counters, gauges};

use nvpg_exec::queue::{FairQueue, PushError};

use crate::batcher::{point_key, Batcher};
use crate::cache::ResponseCache;
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::limiter::RateLimiter;
use crate::singleflight::{Group, Role};
use crate::ServeConfig;

/// The `Retry-After` hint attached to shed requests, seconds.
const RETRY_AFTER_S: u32 = 1;

/// The Table I characterisation, built once per process and shared by
/// every worker. The heavy DC/transient characterisation runs on first
/// demand, not at bind time, so `/healthz` answers immediately after
/// startup.
fn experiments() -> Result<&'static Experiments, String> {
    experiments_for("mtj")
}

/// Per-retention-technology characterisations, one [`OnceLock`] slot per
/// label in [`RetentionKind::LABELS`] so a `"fefet"` query never pays
/// for — or blocks on — the `"mtj"` build. An unknown label is the
/// caller's validation error, not a slot.
fn experiments_for(technology: &str) -> Result<&'static Experiments, String> {
    static SLOTS: [OnceLock<Result<Experiments, String>>; RetentionKind::LABELS.len()] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let idx = RetentionKind::LABELS
        .iter()
        .position(|l| *l == technology)
        .ok_or_else(|| format!("unknown technology `{technology}`"))?;
    SLOTS[idx]
        .get_or_init(|| {
            // Shielded from the triggering request's deadline: the
            // characterisation outlives any one request, and a cancelled
            // first attempt would poison the cell for the process.
            cancel::shielded(|| {
                let design = CellDesign::for_technology(technology)
                    .expect("label position checked against RetentionKind::LABELS");
                Experiments::new(design).map_err(|e| format!("characterisation: {e}"))
            })
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// A running server. Dropping the handle shuts it down and joins every
/// thread.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error text on failure.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("bind {}: {e}", config.listen))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let depth = config.queue_depth.max(1);
        let per_client = if config.queue_per_client == 0 {
            depth
        } else {
            config.queue_per_client.min(depth)
        };
        let queue = Arc::new(FairQueue::<IpAddr, TcpStream>::new(per_client, depth));
        let shared = Arc::new(Shared {
            cache: ResponseCache::new(config.cache_bytes),
            flights: Group::new(),
            inflight: AtomicI64::new(0),
            debug_endpoints: config.debug_endpoints,
            shutdown: Arc::clone(&shutdown),
            default_timeout_ms: config.default_timeout_ms,
            max_timeout_ms: config.max_timeout_ms,
            limiter: (config.rate_limit_rps > 0).then(|| {
                let burst = if config.rate_limit_burst == 0 {
                    config.rate_limit_rps
                } else {
                    config.rate_limit_burst
                };
                RateLimiter::new(config.rate_limit_rps, burst)
            }),
            watch: Watch::new(),
            batcher: Batcher::new(Duration::from_millis(config.coalesce_window_ms)),
        });

        let workers = (0..config.jobs.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(stream, &shared);
                        }
                    })
                    .map_err(|e| format!("spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &queue, &shutdown))
                .map_err(|e| format!("spawn acceptor: {e}"))?
        };

        let watchdog = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let stall = Duration::from_millis(config.watchdog_stall_ms);
            std::thread::Builder::new()
                .name("serve-watchdog".to_owned())
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        shared.watch.scan(stall);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                })
                .map_err(|e| format!("spawn watchdog: {e}"))?
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            watchdog: Some(watchdog),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread. Idempotent; blocks until drained.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// State shared by every worker.
struct Shared {
    cache: ResponseCache,
    flights: Group<Arc<Response>>,
    inflight: AtomicI64,
    debug_endpoints: bool,
    shutdown: Arc<AtomicBool>,
    default_timeout_ms: u64,
    max_timeout_ms: u64,
    limiter: Option<RateLimiter>,
    watch: Watch,
    /// The `/sweep` request coalescer: sibling sweeps sharing a
    /// canonical topology key merge into one union solve per window.
    batcher: Batcher<Bet, Response>,
}

/// One in-flight request under watchdog observation.
struct Watched {
    token: CancelToken,
    stream: TcpStream,
    last_progress: u64,
    last_change: Instant,
}

/// Registry of in-flight requests. The watchdog thread scans it to
/// cancel tokens whose client has disconnected and (when the stall bound
/// is configured) whose solve heartbeat has stopped advancing.
struct Watch {
    entries: Mutex<HashMap<u64, Watched>>,
    next_id: AtomicU64,
}

impl Watch {
    fn new() -> Self {
        Watch {
            entries: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        }
    }

    /// Registers a request; pass the returned id to
    /// [`deregister`](Self::deregister) when the request completes.
    /// `None` (not an error) when the stream cannot be observed.
    fn register(&self, token: &CancelToken, stream: &TcpStream) -> Option<u64> {
        let stream = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().expect("watch registry").insert(
            id,
            Watched {
                token: token.clone(),
                stream,
                last_progress: token.progress(),
                last_change: Instant::now(),
            },
        );
        Some(id)
    }

    fn deregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.entries.lock().expect("watch registry").remove(&id);
        }
    }

    /// One watchdog pass over every in-flight request.
    fn scan(&self, stall: Duration) {
        let now = Instant::now();
        let mut entries = self.entries.lock().expect("watch registry");
        for w in entries.values_mut() {
            if w.token.is_cancelled() {
                continue;
            }
            if peer_gone(&w.stream) {
                w.token.cancel("client disconnected");
                counters::SERVE_DISCONNECTS.add(1);
                continue;
            }
            if stall > Duration::ZERO {
                let p = w.token.progress();
                if p != w.last_progress {
                    w.last_progress = p;
                    w.last_change = now;
                } else if now.saturating_duration_since(w.last_change) > stall {
                    w.token.cancel("watchdog: progress stalled");
                    counters::SERVE_WATCHDOG_FIRES.add(1);
                }
            }
        }
    }
}

/// `true` when the peer has closed its end: a nonblocking peek sees EOF.
/// `WouldBlock` means the peer is simply quiet — alive and waiting.
/// The socket is only peeked while its worker is solving (never reading),
/// and blocking mode is restored before the registry lock is released,
/// so the worker always reads/writes a blocking socket.
fn peer_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut byte = [0u8; 1];
    let gone = match stream.peek(&mut byte) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Accepts connections until shutdown, applying admission control: a
/// full queue (total, or the peer's fair share of it) sheds the
/// connection with `503` immediately, so the acceptor never blocks on
/// workers and memory stays bounded.
fn accept_loop(
    listener: &TcpListener,
    queue: &FairQueue<IpAddr, TcpStream>,
    shutdown: &AtomicBool,
) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, peer)) => match queue.try_push(peer.ip(), stream) {
                Ok(()) => {}
                Err(PushError::Full(mut stream) | PushError::Closed(mut stream)) => {
                    counters::SERVE_REJECTED.add(1);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = write_response(&mut stream, &Response::overloaded(RETRY_AFTER_S), true);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Stop feeding workers; queued connections still drain.
    queue.close();
}

/// Serves one connection (keep-alive loop).
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let peer_label = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_owned());
    let peer = stream.try_clone();
    let Ok(write_half) = peer else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Eof) => return,
            Err(ReadError::Malformed(reason)) => {
                let _ = write_response(&mut write_half, &Response::error(400, &reason), true);
                return;
            }
            Err(ReadError::BodyTooLarge(reason)) => {
                let _ = write_response(&mut write_half, &Response::error(413, &reason), true);
                return;
            }
            Err(ReadError::HeadersTooLarge(reason)) => {
                let _ = write_response(&mut write_half, &Response::error(431, &reason), true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        counters::SERVE_REQUESTS.add(1);
        // Rate limiting, per tenant: the X-Client header when sent, else
        // the peer address. Request-level, so one keep-alive connection
        // cannot dodge its budget.
        if let Some(limiter) = &shared.limiter {
            let tenant = request.client.as_deref().unwrap_or(&peer_label);
            if let Err(retry_after) = limiter.admit(tenant) {
                counters::SERVE_RATE_LIMITED.add(1);
                let close = request.close || shared.shutdown.load(Ordering::SeqCst);
                let resp = Response::rate_limited(retry_after);
                if write_response(&mut write_half, &resp, close).is_err() || close {
                    return;
                }
                continue;
            }
        }
        let n = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        gauges::SERVE_INFLIGHT.set(n as f64);
        // The request's cancellation scope: the deadline is armed in
        // `cached` (it needs the body's `timeout_ms`), the watchdog can
        // fire it on disconnect or stall from the moment work starts.
        let token = CancelToken::new();
        let watch_id = shared.watch.register(&token, reader.get_ref());
        let response = dispatch(&request, shared, &token);
        shared.watch.deregister(watch_id);
        let n = shared.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        gauges::SERVE_INFLIGHT.set(n as f64);
        // Drain protocol: during shutdown, finish this response, then
        // close instead of waiting for another request.
        let close = request.close || shared.shutdown.load(Ordering::SeqCst);
        if write_response(&mut write_half, &response, close).is_err() || close {
            return;
        }
    }
}

/// Routes one request, going through cache + single-flight for the
/// deterministic endpoints.
fn dispatch(request: &Request, shared: &Shared, token: &CancelToken) -> Response {
    let _span = nvpg_obs::span_labeled("request", &request.path);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::ok("text/plain", "ok\n"),
        ("GET", "/metrics") => Response::ok(
            "text/plain",
            nvpg_obs::metrics::render_exposition(&nvpg_obs::metrics::snapshot()),
        ),
        ("GET", "/debug/sleep") if shared.debug_endpoints => {
            let ms: u64 = request
                .query_param("ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100)
                .min(10_000);
            std::thread::sleep(Duration::from_millis(ms));
            Response::ok("text/plain", format!("slept {ms} ms\n"))
        }
        ("GET", path) if path.starts_with("/figures/") => cached(request, shared, token, figures),
        ("POST", "/bet") => cached(request, shared, token, bet),
        ("POST", "/sweep") => cached(request, shared, token, sweep),
        ("POST", "/simulate") => cached(request, shared, token, simulate),
        ("POST", "/macro") => cached(request, shared, token, macro_report),
        (method, "/bet" | "/sweep" | "/simulate" | "/macro") if method != "POST" => {
            Response::error(405, "use POST")
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

/// The cache + single-flight wrapper around a deterministic handler.
///
/// Key facts the tests pin down: a cache hit (or a single-flight
/// follower) increments `serve.cache_hits` and performs no solve; only
/// `200` responses are cached (an error is recomputed — and therefore
/// re-observed — on retry, and a `504` can never be served from cache).
fn cached(
    request: &Request,
    shared: &Shared,
    token: &CancelToken,
    handler: fn(&Request, &Json, &Shared) -> Response,
) -> Response {
    // Canonicalise the body first: the cache key must see meaning, not
    // bytes. A body that is not valid JSON cannot be canonicalised and
    // is rejected before it reaches any handler.
    let mut body_json = if request.body.is_empty() {
        Json::Null
    } else {
        let text = match std::str::from_utf8(&request.body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        match parse_json(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e:?}")),
        }
    };
    // `timeout_ms` is transport, not meaning: strip it *before*
    // canonicalisation so the same query under different deadlines
    // shares one cache entry and one single-flight key.
    let mut timeout_ms = None;
    if let Json::Obj(obj) = &mut body_json {
        if let Some(v) = obj.remove("timeout_ms") {
            match v.as_num() {
                Some(ms) if ms.is_finite() && ms >= 1.0 && ms.fract() == 0.0 => {
                    timeout_ms = Some(ms as u64);
                }
                _ => {
                    return Response::error(
                        400,
                        "`timeout_ms` must be a whole number of milliseconds, at least 1",
                    )
                }
            }
        }
    }
    // Arm the deadline: the client's ask capped by the server, else the
    // server default. Elapsed time is measured from request arrival (the
    // token's creation), so header parsing and queueing count against it.
    let effective_ms = match timeout_ms {
        Some(ms) if shared.max_timeout_ms > 0 => Some(ms.min(shared.max_timeout_ms)),
        Some(ms) => Some(ms),
        None if shared.default_timeout_ms > 0 => Some(shared.default_timeout_ms),
        None => None,
    };
    if let Some(ms) = effective_ms {
        token.set_deadline(Duration::from_millis(ms));
    }
    // A sweep's meaning is the *set* of points it visits: canonicalise
    // `values` (sorted ascending, duplicates removed) before keying, so
    // reordered or duplicated sweeps share one cache entry, one
    // single-flight key, and one coalescing topology — and the handler
    // sees (and answers over) the canonical set.
    if request.method == "POST" && matches!(request.path.as_str(), "/sweep" | "/bet") {
        body_json = canonicalize_sweep_body(&body_json);
    }
    let canonical = canonical_json(&body_json);
    let path_and_query = if request.query.is_empty() {
        request.path.clone()
    } else {
        format!("{}?{}", request.path, request.query)
    };
    let key = request_key_raw(&request.method, &path_and_query, &canonical);

    if let Some(hit) = shared.cache.get(key) {
        counters::SERVE_CACHE_HITS.add(1);
        return (*hit).clone();
    }

    let flight = shared.flights.run_until(
        key,
        || {
            counters::SERVE_SOLVES.add(1);
            // Fail-soft: a panicking solve (injected fault, pathological
            // deck) must answer this request with a structured 500, not
            // take the worker down. The token is installed around the
            // handler so every Newton iteration under it can be
            // cancelled.
            let resp = match catch_unwind(AssertUnwindSafe(|| {
                cancel::with_token(token, || handler(request, &body_json, shared))
            })) {
                Ok(resp) => resp,
                Err(payload) => {
                    let msg = nvpg_exec::panic_message(payload.as_ref());
                    Response::error(500, &format!("solver panicked: {msg}"))
                }
            };
            let resp = Arc::new(resp);
            if resp.status == 200 {
                shared.cache.put(key, Arc::clone(&resp));
            }
            resp
        },
        || token.is_cancelled(),
    );
    let response = match flight {
        Some((response, role)) => {
            if role == Role::Follower {
                // A follower reused the leader's solve — same reuse
                // semantics as a cache hit, and counted as one.
                counters::SERVE_CACHE_HITS.add(1);
            }
            (*response).clone()
        }
        // This request's own deadline (or a disconnect) fired while it
        // was parked behind a different leader: fail fast rather than
        // wait out a leader that may run longer than we are allowed to.
        None => timeout_response(
            &token.reason(),
            token.elapsed(),
            "waiting on an identical in-flight solve",
        ),
    };
    if response.status == 504 {
        counters::SERVE_DEADLINE_EXCEEDED.add(1);
    }
    response
}

/// The `504 Gateway Timeout` answer: structured partial diagnostics —
/// what cancelled the request, how long it ran, and how far it got.
fn timeout_response(reason: &str, elapsed: Duration, progress: &str) -> Response {
    let body = format!(
        "{{\"error\":\"deadline exceeded\",\"reason\":\"{}\",\"elapsed_ms\":{},\
         \"progress\":\"{}\",\"status\":504}}\n",
        nvpg_obs::json::escape(reason),
        elapsed.as_millis(),
        nvpg_obs::json::escape(progress),
    );
    Response {
        status: 504,
        content_type: "application/json",
        body: body.into_bytes(),
        retry_after: None,
    }
}

/// Maps a solver error onto a response: a cancelled solve answers `504`
/// with its partial progress, anything else a structured `500`.
fn solver_error(stage: &str, e: &CircuitError) -> Response {
    if let CircuitError::Cancelled {
        reason,
        elapsed,
        progress,
    } = e
    {
        timeout_response(reason, *elapsed, progress)
    } else {
        Response::error(500, &format!("{stage} failed: {e}"))
    }
}

/// `GET /figures/{id}?format=csv|json`.
fn figures(request: &Request, _body: &Json, _shared: &Shared) -> Response {
    let id = &request.path["/figures/".len()..];
    let exp = match experiments() {
        Ok(exp) => exp,
        Err(e) => return Response::error(500, &e),
    };
    let figure = match exp.figure_by_id(id) {
        Some(Ok(fig)) => fig,
        Some(Err(e)) => return Response::error(500, &format!("figure {id}: {e}")),
        None => return Response::error(404, &format!("unknown figure `{id}`")),
    };
    match request.query_param("format").unwrap_or("csv") {
        "csv" => Response::ok("text/csv", nvpg_bench::to_csv(&figure)),
        "json" => Response::ok("application/json", figure_json(&figure)),
        other => Response::error(400, &format!("unknown format `{other}`")),
    }
}

/// Renders a figure as JSON (same point data as the CSV).
fn figure_json(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"id\":\"{}\",\"caption\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[",
        nvpg_obs::json::escape(&fig.id),
        nvpg_obs::json::escape(&fig.caption),
        nvpg_obs::json::escape(&fig.x_label),
        nvpg_obs::json::escape(&fig.y_label),
    ));
    for (i, series) in fig.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"points\":[",
            nvpg_obs::json::escape(&series.label)
        ));
        for (j, (x, y)) in series.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{x:e},{y:e}]"));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders a BET outcome as a JSON fragment.
fn bet_json(bet: Bet) -> String {
    match bet {
        Bet::At(t) => format!("{{\"kind\":\"at\",\"t_bet_s\":{:e}}}", t.0),
        Bet::Always => "{\"kind\":\"always\"}".to_owned(),
        Bet::Never => "{\"kind\":\"never\"}".to_owned(),
    }
}

/// Decodes an optional `"technology"` field against
/// [`RetentionKind::LABELS`], defaulting to the paper's `"mtj"`.
fn technology_from(
    obj: &std::collections::BTreeMap<String, Json>,
) -> Result<&'static str, Response> {
    match obj.get("technology") {
        None => Ok("mtj"),
        Some(v) => match v.as_str() {
            Some(s) => RetentionKind::LABELS
                .iter()
                .find(|l| **l == s)
                .copied()
                .ok_or_else(|| {
                    Response::error(
                        400,
                        &format!(
                            "unknown technology `{s}` (expected one of {:?})",
                            RetentionKind::LABELS
                        ),
                    )
                }),
            None => Err(Response::error(400, "`technology` must be a string")),
        },
    }
}

/// Decodes the common parts of `/bet` and `/sweep` bodies: architecture,
/// solver choice, retention technology, and benchmark parameters.
fn bet_inputs(
    body: &Json,
) -> Result<(Architecture, bool, &'static str, nvpg_core::BenchmarkParams), Response> {
    let obj = body
        .as_obj()
        .ok_or_else(|| Response::error(400, "body must be a JSON object"))?;
    let arch = match obj.get("arch") {
        Some(v) => architecture_from_json(v).map_err(|e| Response::error(400, &e))?,
        None => Architecture::Nvpg,
    };
    if !arch.is_nonvolatile() {
        return Err(Response::error(
            400,
            "BET is defined against the OSR baseline; pick NVPG or NOF",
        ));
    }
    let iterative = match obj.get("method").and_then(Json::as_str) {
        None | Some("closed_form") => false,
        Some("iterative") => true,
        Some(other) => {
            return Err(Response::error(
                400,
                &format!("unknown method `{other}` (closed_form or iterative)"),
            ))
        }
    };
    let technology = technology_from(obj)?;
    // The params decoder rejects unknown fields; strip ours first.
    let mut params_obj = obj.clone();
    params_obj.remove("arch");
    params_obj.remove("method");
    params_obj.remove("technology");
    params_obj.remove("var");
    params_obj.remove("values");
    let params =
        benchmark_params_from_json(&Json::Obj(params_obj)).map_err(|e| Response::error(400, &e))?;
    Ok((arch, iterative, technology, params))
}

/// Solves one BET query against the named technology's characterisation.
fn solve_bet(
    arch: Architecture,
    iterative: bool,
    technology: &str,
    params: &nvpg_core::BenchmarkParams,
) -> Result<Bet, Response> {
    let exp = experiments_for(technology).map_err(|e| Response::error(500, &e))?;
    Ok(if iterative {
        bet_iterative(exp.model(), arch, params, 10.0)
    } else {
        bet_closed_form(exp.model(), arch, params)
    })
}

/// `POST /bet` — one break-even-time query.
fn bet(_request: &Request, body: &Json, _shared: &Shared) -> Response {
    let (arch, iterative, technology, params) = match bet_inputs(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match solve_bet(arch, iterative, technology, &params) {
        Ok(bet) => Response::ok(
            "application/json",
            format!(
                "{{\"arch\":\"{arch}\",\"technology\":\"{technology}\",\"bet\":{}}}\n",
                bet_json(bet)
            ),
        ),
        Err(resp) => resp,
    }
}

/// The largest macro edge `/macro` will build: a 64×64 macro is ~20k
/// MNA unknowns on the sparse backend — comfortably solvable, while
/// still bounding what one request can pin a worker with.
const MACRO_MAX_EDGE: usize = 64;

/// `POST /macro` — one macro-level break-even-time report.
///
/// Builds the parameterised NV-SRAM macro netlist ([`MacroSpec`]) at
/// the requested geometry, solves its operating point next to the
/// matching OSR macro, and answers the periphery-priced BET for the
/// chosen architecture under the half-array shutdown policy the
/// granularity implies ([`nvpg_core::bet_macro_scan`]). Flows through
/// [`cached`], so identical specs share one solve and one cache entry.
fn macro_report(_request: &Request, body: &Json, _shared: &Shared) -> Response {
    let obj = match body.as_obj() {
        Some(o) => o,
        None => return Response::error(400, "body must be a JSON object"),
    };
    const KNOWN: [&str; 6] = ["rows", "cols", "mux", "granularity", "arch", "technology"];
    for key in obj.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Response::error(400, &format!("unknown field `{key}` (expected {KNOWN:?})"));
        }
    }
    let dim = |name: &str, default: usize| -> Result<usize, Response> {
        match obj.get(name) {
            None => Ok(default),
            Some(v) => match v.as_num() {
                Some(n) if n >= 1.0 && n.fract() == 0.0 && n <= MACRO_MAX_EDGE as f64 => {
                    Ok(n as usize)
                }
                _ => Err(Response::error(
                    400,
                    &format!("`{name}` must be an integer in 1..={MACRO_MAX_EDGE}"),
                )),
            },
        }
    };
    let (rows, cols, mux) = match (dim("rows", 4), dim("cols", 4), dim("mux", 1)) {
        (Ok(r), Ok(c), Ok(m)) => (r, c, m),
        (Err(resp), ..) | (_, Err(resp), _) | (.., Err(resp)) => return resp,
    };
    let granularity = match obj.get("granularity") {
        None => nvpg_core::Granularity::PerDomain,
        Some(v) => match v.as_str().and_then(nvpg_core::Granularity::from_label) {
            Some(g) => g,
            None => {
                return Response::error(
                    400,
                    "`granularity` must be `per_row`, `per_bank{N}` or `per_domain`",
                )
            }
        },
    };
    let arch = match obj.get("arch") {
        Some(v) => match architecture_from_json(v) {
            Ok(a) if a.is_nonvolatile() => a,
            Ok(_) => {
                return Response::error(
                    400,
                    "macro BET is defined against the OSR baseline; pick NVPG or NOF",
                )
            }
            Err(e) => return Response::error(400, &e),
        },
        None => Architecture::Nvpg,
    };
    let technology = match technology_from(obj) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let spec = nvpg_core::MacroSpec::new(rows, cols, mux).with_granularity(granularity);
    if let Err(e) = spec.validate() {
        return Response::error(400, &format!("invalid macro spec: {e}"));
    }
    let params = nvpg_core::BenchmarkParams::fig7_default();
    let points = match nvpg_core::bet_macro_scan(
        rows,
        cols,
        mux,
        &[granularity],
        &[technology],
        &params,
        1,
        nvpg_core::default_batch(),
    ) {
        Ok(p) => p,
        Err(e) => return solver_error("macro scan", &e),
    };
    let point = match points.into_iter().find(|p| p.arch == arch) {
        Some(p) => p,
        None => return Response::error(500, "macro scan answered no point for the architecture"),
    };
    let bet = match point.bet {
        Some(t) => Bet::At(nvpg_units::Seconds(t)),
        None => Bet::Never,
    };
    Response::ok(
        "application/json",
        format!(
            "{{\"arch\":\"{arch}\",\"technology\":\"{}\",\"granularity\":\"{}\",\
             \"rows\":{rows},\"cols\":{cols},\"mux\":{mux},\"groups\":{},\
             \"unknowns\":{},\"static_power_w\":{:e},\"periphery_overhead_w\":{:e},\
             \"gated_fraction\":{},\"bet\":{}}}\n",
            point.technology,
            point.granularity,
            granularity.groups(rows),
            point.unknowns,
            point.static_power,
            point.periphery_overhead,
            point.gated_fraction,
            bet_json(bet)
        ),
    )
}

/// The proxy-domain geometry behind `var: "vth_shift"` sweeps: each
/// shift's leakage is measured on a `4×4` NVPG domain operating point.
/// Small enough that one point solves in ~a millisecond, large enough
/// that the solve — not JSON handling — dominates the request.
const VTH_SCAN_ROWS: usize = 4;
const VTH_SCAN_COLS: usize = 4;

/// Solves a `vth_shift` sweep: every shift is one varied cell design
/// (both device cards shifted) whose 4×4 NVPG domain operating point
/// solves as one lane of a batched stack, and the per-point BET is the
/// first-order leakage-scaled closed-form crossing (`bet_design_scan`).
///
/// `jobs` is pinned to 1: the daemon's worker pool provides the
/// request-level concurrency, and the batched backend already solves
/// the whole point set as one stack.
fn solve_vth_scan(
    technology: &str,
    params: &nvpg_core::BenchmarkParams,
    shifts: &[f64],
) -> Result<Vec<Bet>, Response> {
    let exp = experiments_for(technology).map_err(|e| Response::error(500, &e))?;
    let fins = [exp.design().fins_power_switch];
    let scan = nvpg_core::bet_design_scan(
        exp.design(),
        exp.characterization(),
        shifts,
        &fins,
        VTH_SCAN_ROWS,
        VTH_SCAN_COLS,
        params,
        nvpg_core::BatchMode::Auto,
        1,
    )
    .map_err(|e| Response::error(500, &format!("design scan: {e}")))?;
    Ok(scan
        .into_iter()
        .map(|p| match p.bet {
            Some(t) => Bet::At(nvpg_units::Seconds(t)),
            None => Bet::Never,
        })
        .collect())
}

/// `POST /sweep` — BET as a function of one swept parameter
/// (`var` ∈ {`rows`, `n_rw`, `t_sl`, `vth_shift`}, `values` an array).
///
/// The first three vary the analytic energy model's benchmark
/// parameters (cheap closed-form/Brent solves); `vth_shift` runs real
/// circuit solves — one varied design's domain operating point per
/// value, batched ([`solve_vth_scan`]) — and is only defined for the
/// NVPG architecture.
///
/// The body reaches this handler with `values` already canonicalised to
/// the sorted-unique point *set* (see [`cached`]); the response's
/// `points` array is defined over that set. Sibling sweeps — same
/// topology (arch, method, var, params), different sets — coalesce
/// through [`Shared::batcher`] into one union solve per window.
fn sweep(request: &Request, body: &Json, shared: &Shared) -> Response {
    let (arch, iterative, technology, base) = match bet_inputs(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let obj = body.as_obj().expect("checked in bet_inputs");
    let var = match obj.get("var").and_then(Json::as_str) {
        Some(v @ ("rows" | "n_rw" | "t_sl" | "vth_shift")) => v.to_owned(),
        Some(other) => {
            return Response::error(
                400,
                &format!("unknown sweep var `{other}` (rows, n_rw, t_sl or vth_shift)"),
            )
        }
        None => return Response::error(400, "`var` names the swept parameter"),
    };
    if var == "vth_shift" && arch != Architecture::Nvpg {
        return Response::error(
            400,
            "`vth_shift` sweeps are defined for the NVPG architecture",
        );
    }
    let values: Vec<f64> = match obj.get("values").and_then(|v| match v {
        Json::Arr(items) => items.iter().map(Json::as_num).collect::<Option<Vec<f64>>>(),
        _ => None,
    }) {
        Some(vs) if !vs.is_empty() && vs.len() <= 4096 => vs,
        Some(_) => return Response::error(400, "`values` must hold 1..=4096 numbers"),
        None => return Response::error(400, "`values` must be an array of numbers"),
    };
    // One point's parameters, shared by the serial and coalesced paths.
    // Every batch member validated its own points under the same `var`
    // (part of the topology key), so union points from siblings pass the
    // same checks.
    let params_at = |v: f64| -> Result<nvpg_core::BenchmarkParams, Response> {
        let mut params = base;
        match var.as_str() {
            "rows" => {
                if !(v >= 1.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)) {
                    return Err(Response::error(
                        400,
                        &format!("`values` entry {v} is not a valid row count"),
                    ));
                }
                params.domain = nvpg_core::PowerDomain::new(v as u32, params.domain.bits);
            }
            "n_rw" => {
                if !(v >= 1.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)) {
                    return Err(Response::error(
                        400,
                        &format!("`values` entry {v} is not a valid round count"),
                    ));
                }
                params.n_rw = v as u32;
            }
            "vth_shift" => {
                // The shift selects a varied design, not a benchmark
                // parameter; `params` passes through unchanged.
                if !(v.is_finite() && v.abs() <= 0.5) {
                    return Err(Response::error(
                        400,
                        &format!("`values` entry {v} is not a valid threshold shift (|V| <= 0.5)"),
                    ));
                }
            }
            _ => {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(Response::error(
                        400,
                        &format!("`values` entry {v} is not a valid time"),
                    ));
                }
                params.t_sl = v;
            }
        }
        Ok(params)
    };
    // Validate this request's own points before touching the batcher, so
    // a bad point answers 400 here and never poisons a shared batch.
    for &v in &values {
        if let Err(resp) = params_at(v) {
            return resp;
        }
    }
    let solve_points = |points: &[f64]| -> Result<Vec<Bet>, Response> {
        if var == "vth_shift" {
            solve_vth_scan(technology, &base, points)
        } else {
            points
                .iter()
                .map(|&v| solve_bet(arch, iterative, technology, &params_at(v)?))
                .collect()
        }
    };
    let results: Vec<Bet> = if shared.batcher.window().is_zero() {
        match solve_points(&values) {
            Ok(r) => r,
            Err(resp) => return resp,
        }
    } else {
        // Topology = the canonical body minus the point set: siblings
        // differing only in `values` share this key and coalesce.
        let mut topology = obj.clone();
        topology.remove("values");
        let key = request_key(&request.method, &request.path, &Json::Obj(topology));
        match shared
            .batcher
            .submit(key, &values, solve_points, cancel::cancelled)
        {
            Some(Ok(map)) => {
                let looked_up: Option<Vec<Bet>> = values
                    .iter()
                    .map(|&v| map.get(&point_key(v)).copied())
                    .collect();
                match looked_up {
                    Some(r) => r,
                    None => return Response::error(500, "coalesced batch dropped a point"),
                }
            }
            Some(Err(resp)) => return resp,
            // Our deadline (or a disconnect) fired while parked on a
            // sibling's batch; the union still solves our points, but
            // nobody is waiting for this answer any more.
            None => {
                return match cancel::current() {
                    Some(token) => timeout_response(
                        &token.reason(),
                        token.elapsed(),
                        "waiting on a coalescing sweep batch",
                    ),
                    None => Response::error(500, "batch wait aborted without a cancel token"),
                }
            }
        }
    };
    let mut out = String::from("{\"arch\":\"");
    out.push_str(&arch.to_string());
    out.push_str("\",\"var\":\"");
    out.push_str(&var);
    out.push_str("\",\"points\":[");
    for (i, (&v, &bet)) in values.iter().zip(&results).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"value\":{v:e},\"bet\":{}}}", bet_json(bet)));
    }
    out.push_str("]}\n");
    Response::ok("application/json", out)
}

/// Cap on transient samples returned to the client.
const MAX_TRAN_POINTS: usize = 2000;

/// `POST /simulate` — parse a SPICE deck and run DC or transient.
///
/// The optional `solver` key (`auto` | `dense` | `sparse`, default
/// `auto`) picks the linear-solver backend per request. It is part of the
/// canonicalised body, so requests differing only in solver choice get
/// distinct cache keys — a dense result is never served for a sparse
/// request or vice versa.
fn simulate(_request: &Request, body: &Json, _shared: &Shared) -> Response {
    let obj = match body.as_obj() {
        Some(o) => o,
        None => return Response::error(400, "body must be a JSON object"),
    };
    let deck = match obj.get("deck").and_then(Json::as_str) {
        Some(d) => d,
        None => return Response::error(400, "`deck` must hold the SPICE netlist text"),
    };
    // Absent keys take documented defaults; *present but mistyped* keys
    // are client errors — silently falling back would run the wrong
    // analysis and cache it under the request's key.
    let analysis = match obj.get("analysis") {
        None => "dc",
        Some(v) => match v.as_str() {
            Some(a) => a,
            None => return Response::error(400, "`analysis` must be a string (dc or tran)"),
        },
    };
    let solver: SolverChoice = match obj.get("solver") {
        None => SolverChoice::Auto,
        Some(v) => match v.as_str().map(str::parse) {
            Some(Ok(choice)) => choice,
            _ => {
                return Response::error(
                    400,
                    "`solver` must be one of \"auto\", \"dense\", \"sparse\"",
                )
            }
        },
    };
    // Validated for every analysis: a mistyped `t_stop` on a DC request
    // is a client bug, not a field to ignore.
    let t_stop = match obj.get("t_stop") {
        None => 1e-9,
        Some(v) => match v.as_num() {
            Some(t) => t,
            None => {
                return Response::error(
                    400,
                    "`t_stop` must be a number (seconds), not a string or other type",
                )
            }
        },
    };
    let dc_opts = DcOptions {
        solver,
        ..DcOptions::default()
    };
    let mut circuit = match nvpg_circuit::parser::parse_deck(deck) {
        Ok(c) => c,
        Err(e) => {
            return Response::error(400, &format!("deck line {}: {}", e.line, e.reason));
        }
    };
    match analysis {
        "dc" => {
            let op = match operating_point(&mut circuit, &dc_opts) {
                Ok(op) => op,
                Err(e) => return solver_error("dc", &e),
            };
            let mut out = String::from("{\"analysis\":\"dc\",\"voltages\":{");
            let mut first = true;
            for (_, name) in circuit.node_names_iter() {
                if name == "0" {
                    continue;
                }
                let Some(v) = op.voltage_by_name(name) else {
                    continue;
                };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{v:e}", nvpg_obs::json::escape(name)));
            }
            out.push_str("}}\n");
            Response::ok("application/json", out)
        }
        "tran" => {
            if !(t_stop.is_finite() && t_stop > 0.0 && t_stop <= 1.0) {
                return Response::error(400, "`t_stop` must be a time in (0, 1] seconds");
            }
            let opts = TransientOptions {
                solver,
                ..TransientOptions::to(t_stop)
            };
            let initial = match operating_point(&mut circuit, &dc_opts) {
                Ok(op) => op,
                Err(e) => return solver_error("dc", &e),
            };
            let result = match transient(&mut circuit, &opts, &initial) {
                Ok(r) => r,
                Err(e) => return solver_error("transient", &e),
            };
            let trace = &result.trace;
            let n = trace.len();
            // Decimate long traces: every stride-th sample, end included.
            let stride = n.div_ceil(MAX_TRAN_POINTS).max(1);
            let keep: Vec<usize> = (0..n).filter(|i| i % stride == 0 || *i == n - 1).collect();
            let mut out = String::from("{\"analysis\":\"tran\",\"time\":[");
            for (j, &i) in keep.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:e}", trace.time()[i]));
            }
            out.push_str("],\"signals\":{");
            for (c, (name, samples)) in trace.columns().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":[", nvpg_obs::json::escape(name)));
                for (j, &i) in keep.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{:e}", samples[i]));
                }
                out.push(']');
            }
            out.push_str(&format!("}},\"steps\":{}}}\n", result.newton_solves));
            Response::ok("application/json", out)
        }
        other => Response::error(400, &format!("unknown analysis `{other}` (dc or tran)")),
    }
}
