//! The request path: accept → admit → route → (cache | single-flight |
//! solve) → respond.
//!
//! One acceptor thread owns the listener; `jobs` worker threads own the
//! solvers. Between them sits a [`BoundedQueue`] of accepted
//! connections — the *only* buffer in the system, so memory under
//! overload is bounded by `queue_depth` sockets, and everything past it
//! is shed with `503 Retry-After` before any parsing or allocation
//! happens on its behalf.
//!
//! Deterministic endpoints (`/figures`, `/bet`, `/sweep`, `/simulate`)
//! flow through the content-addressed [`ResponseCache`] and the
//! [single-flight](crate::singleflight) group; the shared
//! [`Experiments`] characterisation is built once behind a `OnceLock`
//! on first use and reused by every worker for the life of the process.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use nvpg_cells::design::CellDesign;
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::SolverChoice;
use nvpg_core::bet::{bet_closed_form, bet_iterative, Bet};
use nvpg_core::canon::{
    architecture_from_json, benchmark_params_from_json, canonical_json, request_key_raw,
};
use nvpg_core::{Architecture, Experiments, Figure};
use nvpg_obs::json::{parse as parse_json, Json};
use nvpg_obs::metrics::{counters, gauges};

use nvpg_exec::queue::{BoundedQueue, PushError};

use crate::cache::ResponseCache;
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::singleflight::{Group, Role};
use crate::ServeConfig;

/// The `Retry-After` hint attached to shed requests, seconds.
const RETRY_AFTER_S: u32 = 1;

/// The Table I characterisation, built once per process and shared by
/// every worker. The heavy DC/transient characterisation runs on first
/// demand, not at bind time, so `/healthz` answers immediately after
/// startup.
fn experiments() -> Result<&'static Experiments, String> {
    static EXPERIMENTS: OnceLock<Result<Experiments, String>> = OnceLock::new();
    EXPERIMENTS
        .get_or_init(|| {
            Experiments::new(CellDesign::table1()).map_err(|e| format!("characterisation: {e}"))
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// A running server. Dropping the handle shuts it down and joins every
/// thread.
pub struct Server {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error text on failure.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| format!("bind {}: {e}", config.listen))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::<TcpStream>::new(config.queue_depth.max(1)));
        let shared = Arc::new(Shared {
            cache: ResponseCache::new(config.cache_bytes),
            flights: Group::new(),
            inflight: AtomicI64::new(0),
            debug_endpoints: config.debug_endpoints,
            shutdown: Arc::clone(&shutdown),
        });

        let workers = (0..config.jobs.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop() {
                            serve_connection(stream, &shared);
                        }
                    })
                    .map_err(|e| format!("spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &queue, &shutdown))
                .map_err(|e| format!("spawn acceptor: {e}"))?
        };

        Ok(Server {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread. Idempotent; blocks until drained.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// State shared by every worker.
struct Shared {
    cache: ResponseCache,
    flights: Group<Arc<Response>>,
    inflight: AtomicI64,
    debug_endpoints: bool,
    shutdown: Arc<AtomicBool>,
}

/// Accepts connections until shutdown, applying admission control: a
/// full queue sheds the connection with `503` immediately, so the
/// acceptor never blocks on workers and memory stays bounded.
fn accept_loop(listener: &TcpListener, queue: &BoundedQueue<TcpStream>, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => match queue.try_push(stream) {
                Ok(()) => {}
                Err(PushError::Full(mut stream) | PushError::Closed(mut stream)) => {
                    counters::SERVE_REJECTED.add(1);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = write_response(&mut stream, &Response::overloaded(RETRY_AFTER_S), true);
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Stop feeding workers; queued connections still drain.
    queue.close();
}

/// Serves one connection (keep-alive loop).
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let peer = stream.try_clone();
    let Ok(write_half) = peer else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Eof) => return,
            Err(ReadError::Malformed(reason)) => {
                let _ = write_response(&mut write_half, &Response::error(400, &reason), true);
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        counters::SERVE_REQUESTS.add(1);
        let n = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        gauges::SERVE_INFLIGHT.set(n as f64);
        let response = dispatch(&request, shared);
        let n = shared.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        gauges::SERVE_INFLIGHT.set(n as f64);
        // Drain protocol: during shutdown, finish this response, then
        // close instead of waiting for another request.
        let close = request.close || shared.shutdown.load(Ordering::SeqCst);
        if write_response(&mut write_half, &response, close).is_err() || close {
            return;
        }
    }
}

/// Routes one request, going through cache + single-flight for the
/// deterministic endpoints.
fn dispatch(request: &Request, shared: &Shared) -> Response {
    let _span = nvpg_obs::span_labeled("request", &request.path);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::ok("text/plain", "ok\n"),
        ("GET", "/metrics") => Response::ok(
            "text/plain",
            nvpg_obs::metrics::render_exposition(&nvpg_obs::metrics::snapshot()),
        ),
        ("GET", "/debug/sleep") if shared.debug_endpoints => {
            let ms: u64 = request
                .query_param("ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(100)
                .min(10_000);
            std::thread::sleep(Duration::from_millis(ms));
            Response::ok("text/plain", format!("slept {ms} ms\n"))
        }
        ("GET", path) if path.starts_with("/figures/") => cached(request, shared, figures),
        ("POST", "/bet") => cached(request, shared, bet),
        ("POST", "/sweep") => cached(request, shared, sweep),
        ("POST", "/simulate") => cached(request, shared, simulate),
        (method, "/bet" | "/sweep" | "/simulate") if method != "POST" => {
            Response::error(405, "use POST")
        }
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

/// The cache + single-flight wrapper around a deterministic handler.
///
/// Key facts the tests pin down: a cache hit (or a single-flight
/// follower) increments `serve.cache_hits` and performs no solve; only
/// `200` responses are cached (an error is recomputed — and therefore
/// re-observed — on retry).
fn cached(
    request: &Request,
    shared: &Shared,
    handler: fn(&Request, &Json) -> Response,
) -> Response {
    // Canonicalise the body first: the cache key must see meaning, not
    // bytes. A body that is not valid JSON cannot be canonicalised and
    // is rejected before it reaches any handler.
    let body_json = if request.body.is_empty() {
        Json::Null
    } else {
        let text = match std::str::from_utf8(&request.body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        match parse_json(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("body is not valid JSON: {e:?}")),
        }
    };
    let canonical = canonical_json(&body_json);
    let path_and_query = if request.query.is_empty() {
        request.path.clone()
    } else {
        format!("{}?{}", request.path, request.query)
    };
    let key = request_key_raw(&request.method, &path_and_query, &canonical);

    if let Some(hit) = shared.cache.get(key) {
        counters::SERVE_CACHE_HITS.add(1);
        return (*hit).clone();
    }

    let (response, role) = shared.flights.run(key, || {
        counters::SERVE_SOLVES.add(1);
        // Fail-soft: a panicking solve (injected fault, pathological
        // deck) must answer this request with a structured 500, not
        // take the worker down.
        let resp = match catch_unwind(AssertUnwindSafe(|| handler(request, &body_json))) {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = nvpg_exec::panic_message(payload.as_ref());
                Response::error(500, &format!("solver panicked: {msg}"))
            }
        };
        let resp = Arc::new(resp);
        if resp.status == 200 {
            shared.cache.put(key, Arc::clone(&resp));
        }
        resp
    });
    if role == Role::Follower {
        // A follower reused the leader's solve — same reuse semantics
        // as a cache hit, and counted as one.
        counters::SERVE_CACHE_HITS.add(1);
    }
    (*response).clone()
}

/// `GET /figures/{id}?format=csv|json`.
fn figures(request: &Request, _body: &Json) -> Response {
    let id = &request.path["/figures/".len()..];
    let exp = match experiments() {
        Ok(exp) => exp,
        Err(e) => return Response::error(500, &e),
    };
    let figure = match exp.figure_by_id(id) {
        Some(Ok(fig)) => fig,
        Some(Err(e)) => return Response::error(500, &format!("figure {id}: {e}")),
        None => return Response::error(404, &format!("unknown figure `{id}`")),
    };
    match request.query_param("format").unwrap_or("csv") {
        "csv" => Response::ok("text/csv", nvpg_bench::to_csv(&figure)),
        "json" => Response::ok("application/json", figure_json(&figure)),
        other => Response::error(400, &format!("unknown format `{other}`")),
    }
}

/// Renders a figure as JSON (same point data as the CSV).
fn figure_json(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"id\":\"{}\",\"caption\":\"{}\",\"x_label\":\"{}\",\"y_label\":\"{}\",\"series\":[",
        nvpg_obs::json::escape(&fig.id),
        nvpg_obs::json::escape(&fig.caption),
        nvpg_obs::json::escape(&fig.x_label),
        nvpg_obs::json::escape(&fig.y_label),
    ));
    for (i, series) in fig.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"points\":[",
            nvpg_obs::json::escape(&series.label)
        ));
        for (j, (x, y)) in series.points.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{x:e},{y:e}]"));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

/// Renders a BET outcome as a JSON fragment.
fn bet_json(bet: Bet) -> String {
    match bet {
        Bet::At(t) => format!("{{\"kind\":\"at\",\"t_bet_s\":{:e}}}", t.0),
        Bet::Always => "{\"kind\":\"always\"}".to_owned(),
        Bet::Never => "{\"kind\":\"never\"}".to_owned(),
    }
}

/// Decodes the common parts of `/bet` and `/sweep` bodies: architecture,
/// solver choice, and benchmark parameters.
fn bet_inputs(body: &Json) -> Result<(Architecture, bool, nvpg_core::BenchmarkParams), Response> {
    let obj = body
        .as_obj()
        .ok_or_else(|| Response::error(400, "body must be a JSON object"))?;
    let arch = match obj.get("arch") {
        Some(v) => architecture_from_json(v).map_err(|e| Response::error(400, &e))?,
        None => Architecture::Nvpg,
    };
    if !arch.is_nonvolatile() {
        return Err(Response::error(
            400,
            "BET is defined against the OSR baseline; pick NVPG or NOF",
        ));
    }
    let iterative = match obj.get("method").and_then(Json::as_str) {
        None | Some("closed_form") => false,
        Some("iterative") => true,
        Some(other) => {
            return Err(Response::error(
                400,
                &format!("unknown method `{other}` (closed_form or iterative)"),
            ))
        }
    };
    // The params decoder rejects unknown fields; strip ours first.
    let mut params_obj = obj.clone();
    params_obj.remove("arch");
    params_obj.remove("method");
    params_obj.remove("var");
    params_obj.remove("values");
    let params =
        benchmark_params_from_json(&Json::Obj(params_obj)).map_err(|e| Response::error(400, &e))?;
    Ok((arch, iterative, params))
}

/// Solves one BET query.
fn solve_bet(
    arch: Architecture,
    iterative: bool,
    params: &nvpg_core::BenchmarkParams,
) -> Result<Bet, Response> {
    let exp = experiments().map_err(|e| Response::error(500, &e))?;
    Ok(if iterative {
        bet_iterative(exp.model(), arch, params, 10.0)
    } else {
        bet_closed_form(exp.model(), arch, params)
    })
}

/// `POST /bet` — one break-even-time query.
fn bet(_request: &Request, body: &Json) -> Response {
    let (arch, iterative, params) = match bet_inputs(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    match solve_bet(arch, iterative, &params) {
        Ok(bet) => Response::ok(
            "application/json",
            format!("{{\"arch\":\"{arch}\",\"bet\":{}}}\n", bet_json(bet)),
        ),
        Err(resp) => resp,
    }
}

/// `POST /sweep` — BET as a function of one swept parameter
/// (`var` ∈ {`rows`, `n_rw`, `t_sl`}, `values` an array).
fn sweep(_request: &Request, body: &Json) -> Response {
    let (arch, iterative, base) = match bet_inputs(body) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let obj = body.as_obj().expect("checked in bet_inputs");
    let var = match obj.get("var").and_then(Json::as_str) {
        Some(v @ ("rows" | "n_rw" | "t_sl")) => v.to_owned(),
        Some(other) => {
            return Response::error(
                400,
                &format!("unknown sweep var `{other}` (rows, n_rw or t_sl)"),
            )
        }
        None => return Response::error(400, "`var` names the swept parameter"),
    };
    let values: Vec<f64> = match obj.get("values").and_then(|v| match v {
        Json::Arr(items) => items.iter().map(Json::as_num).collect::<Option<Vec<f64>>>(),
        _ => None,
    }) {
        Some(vs) if !vs.is_empty() && vs.len() <= 4096 => vs,
        Some(_) => return Response::error(400, "`values` must hold 1..=4096 numbers"),
        None => return Response::error(400, "`values` must be an array of numbers"),
    };
    let mut out = String::from("{\"arch\":\"");
    out.push_str(&arch.to_string());
    out.push_str("\",\"var\":\"");
    out.push_str(&var);
    out.push_str("\",\"points\":[");
    for (i, &v) in values.iter().enumerate() {
        let mut params = base;
        match var.as_str() {
            "rows" => {
                if !(v >= 1.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)) {
                    return Response::error(
                        400,
                        &format!("`values[{i}]` is not a valid row count"),
                    );
                }
                params.domain = nvpg_core::PowerDomain::new(v as u32, params.domain.bits);
            }
            "n_rw" => {
                if !(v >= 1.0 && v.fract() == 0.0 && v <= f64::from(u32::MAX)) {
                    return Response::error(
                        400,
                        &format!("`values[{i}]` is not a valid round count"),
                    );
                }
                params.n_rw = v as u32;
            }
            _ => {
                if !(v.is_finite() && v >= 0.0) {
                    return Response::error(400, &format!("`values[{i}]` is not a valid time"));
                }
                params.t_sl = v;
            }
        }
        let bet = match solve_bet(arch, iterative, &params) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"value\":{v:e},\"bet\":{}}}", bet_json(bet)));
    }
    out.push_str("]}\n");
    Response::ok("application/json", out)
}

/// Cap on transient samples returned to the client.
const MAX_TRAN_POINTS: usize = 2000;

/// `POST /simulate` — parse a SPICE deck and run DC or transient.
///
/// The optional `solver` key (`auto` | `dense` | `sparse`, default
/// `auto`) picks the linear-solver backend per request. It is part of the
/// canonicalised body, so requests differing only in solver choice get
/// distinct cache keys — a dense result is never served for a sparse
/// request or vice versa.
fn simulate(_request: &Request, body: &Json) -> Response {
    let obj = match body.as_obj() {
        Some(o) => o,
        None => return Response::error(400, "body must be a JSON object"),
    };
    let deck = match obj.get("deck").and_then(Json::as_str) {
        Some(d) => d,
        None => return Response::error(400, "`deck` must hold the SPICE netlist text"),
    };
    let analysis = obj.get("analysis").and_then(Json::as_str).unwrap_or("dc");
    let solver: SolverChoice = match obj.get("solver") {
        None => SolverChoice::Auto,
        Some(v) => match v.as_str().map(str::parse) {
            Some(Ok(choice)) => choice,
            _ => {
                return Response::error(
                    400,
                    "`solver` must be one of \"auto\", \"dense\", \"sparse\"",
                )
            }
        },
    };
    let dc_opts = DcOptions {
        solver,
        ..DcOptions::default()
    };
    let mut circuit = match nvpg_circuit::parser::parse_deck(deck) {
        Ok(c) => c,
        Err(e) => {
            return Response::error(400, &format!("deck line {}: {}", e.line, e.reason));
        }
    };
    match analysis {
        "dc" => {
            let op = match operating_point(&mut circuit, &dc_opts) {
                Ok(op) => op,
                Err(e) => return Response::error(500, &format!("dc failed: {e}")),
            };
            let mut out = String::from("{\"analysis\":\"dc\",\"voltages\":{");
            let mut first = true;
            for (_, name) in circuit.node_names_iter() {
                if name == "0" {
                    continue;
                }
                let Some(v) = op.voltage_by_name(name) else {
                    continue;
                };
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{v:e}", nvpg_obs::json::escape(name)));
            }
            out.push_str("}}\n");
            Response::ok("application/json", out)
        }
        "tran" => {
            let t_stop = obj.get("t_stop").and_then(Json::as_num).unwrap_or(1e-9);
            if !(t_stop.is_finite() && t_stop > 0.0 && t_stop <= 1.0) {
                return Response::error(400, "`t_stop` must be a time in (0, 1] seconds");
            }
            let opts = TransientOptions {
                solver,
                ..TransientOptions::to(t_stop)
            };
            let initial = match operating_point(&mut circuit, &dc_opts) {
                Ok(op) => op,
                Err(e) => return Response::error(500, &format!("dc failed: {e}")),
            };
            let result = match transient(&mut circuit, &opts, &initial) {
                Ok(r) => r,
                Err(e) => return Response::error(500, &format!("transient failed: {e}")),
            };
            let trace = &result.trace;
            let n = trace.len();
            // Decimate long traces: every stride-th sample, end included.
            let stride = n.div_ceil(MAX_TRAN_POINTS).max(1);
            let keep: Vec<usize> = (0..n).filter(|i| i % stride == 0 || *i == n - 1).collect();
            let mut out = String::from("{\"analysis\":\"tran\",\"time\":[");
            for (j, &i) in keep.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{:e}", trace.time()[i]));
            }
            out.push_str("],\"signals\":{");
            for (c, (name, samples)) in trace.columns().enumerate() {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":[", nvpg_obs::json::escape(name)));
                for (j, &i) in keep.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{:e}", samples[i]));
                }
                out.push(']');
            }
            out.push_str(&format!("}},\"steps\":{}}}\n", result.newton_solves));
            Response::ok("application/json", out)
        }
        other => Response::error(400, &format!("unknown analysis `{other}` (dc or tran)")),
    }
}
