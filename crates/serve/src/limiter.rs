//! A per-client token-bucket rate limiter.
//!
//! Each client key (the `X-Client` header, falling back to the peer
//! address) owns an independent bucket that refills at `rps` tokens per
//! second up to `burst`. A request that finds its bucket empty is shed
//! with `429 Too Many Requests` and a `Retry-After` hint sized to the
//! actual refill rate — one noisy tenant gets throttled while every
//! other tenant's budget is untouched.
//!
//! Buckets are lazily created and pruned once full again and idle, so a
//! scan of spoofed client names cannot grow the map without bound past
//! one bucket per *concurrently active* key window.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Idle-full buckets older than this are pruned on the next admit.
const PRUNE_AFTER_S: f64 = 60.0;
/// Hard cap on tracked keys; past it, unknown keys are admitted rather
/// than tracked (fail open — memory safety beats strictness here).
const MAX_KEYS: usize = 4096;

struct Bucket {
    /// Tokens available, in [0, burst].
    tokens: f64,
    /// When the bucket was last refilled.
    refilled: Instant,
}

/// Keyed token buckets. One per server; `admit` is the whole API.
pub struct RateLimiter {
    /// Refill rate, tokens (requests) per second.
    rps: f64,
    /// Bucket capacity.
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// A limiter refilling `rps` requests per second per client, with up
    /// to `burst` banked. `burst` is clamped to at least 1 (a bucket that
    /// can never hold a whole token admits nothing).
    pub fn new(rps: u32, burst: u32) -> Self {
        RateLimiter {
            rps: f64::from(rps.max(1)),
            burst: f64::from(burst.max(1)),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits or sheds one request from `key` right now.
    ///
    /// # Errors
    ///
    /// Returns the suggested `Retry-After` in whole seconds (at least 1)
    /// when the key's bucket is empty.
    pub fn admit(&self, key: &str) -> Result<(), u32> {
        self.admit_at(key, Instant::now())
    }

    /// [`admit`](Self::admit) against an explicit clock (tests).
    fn admit_at(&self, key: &str, now: Instant) -> Result<(), u32> {
        let mut buckets = self.buckets.lock().expect("limiter buckets");
        // Opportunistic prune: drop buckets that have refilled to full
        // and sat idle — they are indistinguishable from fresh ones.
        if buckets.len() >= MAX_KEYS {
            let (rps, burst) = (self.rps, self.burst);
            buckets.retain(|_, b| {
                let idle = now.saturating_duration_since(b.refilled).as_secs_f64();
                b.tokens + idle * rps < burst || idle < PRUNE_AFTER_S
            });
            if buckets.len() >= MAX_KEYS && !buckets.contains_key(key) {
                return Ok(()); // fail open rather than grow without bound
            }
        }
        let bucket = buckets.entry(key.to_owned()).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rps).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait_s = (1.0 - bucket.tokens) / self.rps;
            Err((wait_s.ceil() as u32).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_is_admitted_then_shed() {
        let lim = RateLimiter::new(10, 3);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert!(lim.admit_at("a", t0).is_ok());
        }
        let retry = lim.admit_at("a", t0).expect_err("bucket empty");
        assert!(retry >= 1);
    }

    #[test]
    fn refill_restores_admission() {
        let lim = RateLimiter::new(10, 1);
        let t0 = Instant::now();
        assert!(lim.admit_at("a", t0).is_ok());
        assert!(lim.admit_at("a", t0).is_err());
        // 10 rps ⇒ one token back after 100 ms.
        assert!(lim.admit_at("a", t0 + Duration::from_millis(150)).is_ok());
    }

    #[test]
    fn keys_are_independent() {
        let lim = RateLimiter::new(1, 1);
        let t0 = Instant::now();
        assert!(lim.admit_at("noisy", t0).is_ok());
        assert!(lim.admit_at("noisy", t0).is_err(), "noisy is throttled");
        assert!(lim.admit_at("quiet", t0).is_ok(), "quiet is untouched");
    }

    #[test]
    fn retry_after_tracks_the_refill_rate() {
        let lim = RateLimiter::new(1, 1);
        let t0 = Instant::now();
        assert!(lim.admit_at("a", t0).is_ok());
        let retry = lim.admit_at("a", t0).expect_err("empty");
        assert_eq!(retry, 1, "1 rps ⇒ a token is ~1 s away");
    }
}
