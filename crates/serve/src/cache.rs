//! Sharded in-memory LRU response cache, content-addressed by the
//! canonical request key.
//!
//! Every cacheable endpoint is a pure function of the canonical request
//! (the solvers are deterministic), so a response cached under
//! [`nvpg_core::canon::request_key`] is valid forever — eviction exists
//! only to bound memory, never for freshness. The byte budget is divided
//! across shards, each behind its own mutex, so worker threads serving
//! disjoint keys rarely contend; within a shard, recency is a monotonic
//! tick and eviction removes the stalest entry until the shard fits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nvpg_obs::metrics::{counters, gauges};

use crate::http::Response;

/// Number of shards; a power of two so shard selection is a mask.
const SHARDS: usize = 8;

/// Shard index for a key: the key is already a hash, so fold the high
/// half in (shard selection uses all 128 bits) and mask. The single
/// definition here is what [`ResponseCache::shard`] *and* the tests
/// use — a second, hand-expanded copy of this fold once drifted from
/// the real one when `SHARDS` changed.
fn shard_of(key: u128) -> usize {
    const { assert!(SHARDS.is_power_of_two()) };
    let folded = (key as u64) ^ ((key >> 64) as u64);
    (folded as usize) & (SHARDS - 1)
}

struct Entry {
    resp: Arc<Response>,
    tick: u64,
}

struct Shard {
    map: HashMap<u128, Entry>,
    bytes: usize,
}

/// The cache. Cheap to share (`Arc` it once per server).
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget.
    shard_budget: usize,
    /// Global recency clock.
    tick: AtomicU64,
    /// Total resident bytes across shards (mirrors the
    /// `serve.cache_bytes` gauge, which only records while metrics are
    /// enabled).
    total_bytes: AtomicUsize,
}

impl ResponseCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of response
    /// bodies. A zero capacity disables caching (every `get` misses).
    pub fn new(capacity_bytes: usize) -> Self {
        ResponseCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            shard_budget: capacity_bytes / SHARDS,
            tick: AtomicU64::new(1),
            total_bytes: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[shard_of(key)]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<Response>> {
        if self.shard_budget == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard");
        let entry = shard.map.get_mut(&key)?;
        entry.tick = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.resp))
    }

    /// Inserts `resp` under `key`, evicting least-recently-used entries
    /// in the shard until it fits. Responses larger than a whole shard
    /// are served but not retained.
    pub fn put(&self, key: u128, resp: Arc<Response>) {
        let weight = resp.weight();
        if weight > self.shard_budget {
            return;
        }
        let mut shard = self.shard(key).lock().expect("cache shard");
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.resp.weight();
            self.total_bytes
                .fetch_sub(old.resp.weight(), Ordering::Relaxed);
        }
        while shard.bytes + weight > self.shard_budget {
            // O(n) stalest scan: shards stay small (dozens of figure/BET
            // responses), so a heap would cost more than it saves.
            let Some((&stale_key, _)) = shard.map.iter().min_by_key(|(_, e)| e.tick) else {
                break;
            };
            let evicted = shard.map.remove(&stale_key).expect("present");
            shard.bytes -= evicted.resp.weight();
            self.total_bytes
                .fetch_sub(evicted.resp.weight(), Ordering::Relaxed);
            counters::SERVE_EVICTIONS.add(1);
        }
        shard.map.insert(
            key,
            Entry {
                resp,
                tick: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        shard.bytes += weight;
        let total = self.total_bytes.fetch_add(weight, Ordering::Relaxed) + weight;
        gauges::SERVE_CACHE_BYTES.set(total as f64);
    }

    /// Total resident bytes (approximate under concurrency).
    pub fn bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(n: usize) -> Arc<Response> {
        Arc::new(Response::ok("text/plain", vec![b'x'; n]))
    }

    #[test]
    fn hit_miss_and_recency() {
        let cache = ResponseCache::new(64 * 1024);
        assert!(cache.get(1).is_none());
        cache.put(1, resp(100));
        assert_eq!(cache.get(1).expect("hit").body.len(), 100);
        assert!(cache.get(2).is_none());
    }

    #[test]
    fn eviction_prefers_the_stalest_entry() {
        // One shard's budget is capacity/8; three 300-byte entries (+64
        // overhead each) can't all fit in 1 KiB.
        let cache = ResponseCache::new(8 * 1024);
        // Probe keys that land in the same shard, derived through the
        // same `shard_of` fold the cache itself uses (a hand-expanded
        // `& 7` here went stale the moment `SHARDS` changed).
        let same_shard: Vec<u128> = (0u128..(16 * SHARDS as u128))
            .filter(|&k| shard_of(k) == 0)
            .take(3)
            .collect();
        let [a, b, c] = same_shard[..] else {
            panic!("need three same-shard keys")
        };
        cache.put(a, resp(300));
        cache.put(b, resp(300));
        let _ = cache.get(a); // refresh a; b becomes stalest
        cache.put(c, resp(300));
        assert!(cache.get(a).is_some(), "recently used survives");
        assert!(cache.get(b).is_none(), "stalest entry evicted");
        assert!(cache.get(c).is_some());
    }

    #[test]
    fn shard_fold_reaches_every_shard_and_uses_the_high_half() {
        // Regression guard for the fold/mask pair: every shard must be
        // reachable through `shard_of` (catches a mask that no longer
        // matches `SHARDS`), and the high 64 bits must influence the
        // choice exactly by XOR-folding into the low half.
        let reached: std::collections::BTreeSet<usize> =
            (0u128..(16 * SHARDS as u128)).map(shard_of).collect();
        assert_eq!(reached.len(), SHARDS, "unreachable shards: {reached:?}");
        assert!(reached.iter().all(|&s| s < SHARDS));
        for low in 0..SHARDS as u128 {
            for high in 0..SHARDS as u64 {
                let key = low | ((high as u128) << 64);
                assert_eq!(shard_of(key), shard_of((low as u64 ^ high) as u128));
            }
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.put(1, resp(10));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn oversized_responses_are_not_retained() {
        let cache = ResponseCache::new(800); // shard budget 100
        cache.put(1, resp(500));
        assert!(cache.get(1).is_none());
    }
}
