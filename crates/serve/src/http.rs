//! A deliberately small HTTP/1.1 reader/writer over `std::net`.
//!
//! This is transport plumbing, not a web framework: enough of RFC 9112 to
//! serve JSON/CSV to `curl` and the load generator — request line, a
//! handful of headers (`Content-Length`, `Connection`), bounded bodies,
//! and keep-alive. Anything outside that subset (chunked uploads,
//! multi-line headers, HTTP/2 preludes) is rejected with a structured
//! `400`, never a panic: the peer is untrusted.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on an accepted request body (a SPICE deck measured in
/// kilobytes fits comfortably; anything larger is hostile or a mistake).
/// Exceeding it is answered with `413 Payload Too Large`.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on the request line + headers combined. Exceeding it is
/// answered with `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header fields (each tiny header still
/// costs a parse; a flood of them is hostile). Answered with `431`.
pub const MAX_HEADER_COUNT: usize = 100;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string, e.g. `/figures/fig6a`.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// `true` when the client asked to close the connection.
    pub close: bool,
    /// The `X-Client` header, when sent — the tenant identity used by
    /// the per-client rate limiter (falls back to the peer address).
    pub client: Option<String>,
}

impl Request {
    /// The value of query parameter `key`, if present (`a=1&b=2` form; no
    /// percent-decoding — ids and formats are ASCII identifiers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before a request line arrived —
    /// the normal end of a keep-alive session, not an error to report.
    Eof,
    /// The bytes on the wire are not an acceptable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] — answered `413`.
    BodyTooLarge(String),
    /// The head exceeds [`MAX_HEAD_BYTES`] or [`MAX_HEADER_COUNT`] —
    /// answered `431`.
    HeadersTooLarge(String),
    /// Transport failure mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// [`ReadError::Eof`] on clean close before a request, otherwise
/// [`ReadError::Malformed`] / [`ReadError::Io`].
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ReadError::Eof);
    }
    head_bytes += n;
    let request_line = line.trim_end().to_owned();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no target".into()))?;
    // A two-field request line (`GET /path`) is a truncated request,
    // not an HTTP/1.0 one — defaulting the version here once turned
    // cut-off request lines into silently-accepted HTTP/1.0 traffic.
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    if parts.next().is_some() {
        return Err(ReadError::Malformed(
            "request line has trailing fields after the HTTP version".into(),
        ));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    let mut client = None;
    let mut header_count = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ReadError::Malformed("connection closed mid-headers".into()));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::HeadersTooLarge(format!(
                "headers exceed the {MAX_HEAD_BYTES}-byte limit"
            )));
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADER_COUNT {
            return Err(ReadError::HeadersTooLarge(format!(
                "more than {MAX_HEADER_COUNT} header fields"
            )));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header `{header}`")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{value}`")))?;
            if content_length > MAX_BODY_BYTES {
                return Err(ReadError::BodyTooLarge(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                )));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-client") {
            client = Some(value.to_owned());
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ReadError::Malformed(
                "chunked transfer encoding is not supported".into(),
            ));
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
        close,
        client,
    })
}

/// A response ready to serialise.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (the `503` backpressure hint).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A `200` with the given type and body.
    pub fn ok(content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type,
            body: body.into(),
            retry_after: None,
        }
    }

    /// A structured JSON error `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        let body = format!(
            "{{\"error\":\"{}\",\"status\":{status}}}\n",
            nvpg_obs::json::escape(message)
        );
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// The `503 Service Unavailable` shed-load response.
    pub fn overloaded(retry_after_s: u32) -> Self {
        let mut r = Response::error(503, "queue full, retry later");
        r.retry_after = Some(retry_after_s);
        r
    }

    /// The `429 Too Many Requests` rate-limit response.
    pub fn rate_limited(retry_after_s: u32) -> Self {
        let mut r = Response::error(429, "rate limit exceeded, slow down");
        r.retry_after = Some(retry_after_s);
        r
    }

    /// Approximate in-memory footprint, used for cache accounting.
    pub fn weight(&self) -> usize {
        self.body.len() + 64
    }
}

/// Reason phrase for the handful of statuses this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialises `resp` onto the stream. `close` controls the
/// `Connection` header.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    if let Some(secs) = resp.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(raw).expect("send");
        drop(client);
        let (server_side, _) = listener.accept().expect("accept");
        read_request(&mut BufReader::new(server_side))
    }

    #[test]
    fn parses_request_line_query_and_body() {
        let req =
            round_trip(b"POST /bet?format=json HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}")
                .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/bet");
        assert_eq!(req.query_param("format"), Some("json"));
        assert_eq!(req.body, b"{}");
        assert!(!req.close);
    }

    #[test]
    fn rejects_oversized_and_malformed_input() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 2 << 20);
        assert!(matches!(
            round_trip(huge.as_bytes()),
            Err(ReadError::BodyTooLarge(_))
        ));
        assert!(matches!(
            round_trip(b"GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(round_trip(b""), Err(ReadError::Eof)));
    }

    #[test]
    fn parses_the_x_client_header() {
        let req =
            round_trip(b"GET /healthz HTTP/1.1\r\nX-Client: tenant-a\r\n\r\n").expect("parse");
        assert_eq!(req.client.as_deref(), Some("tenant-a"));
        let req = round_trip(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parse");
        assert_eq!(req.client, None);
    }

    #[test]
    fn rejects_oversized_heads_as_431() {
        // One giant header value blows the byte budget.
        let fat = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            round_trip(fat.as_bytes()),
            Err(ReadError::HeadersTooLarge(_))
        ));
        // Many tiny headers blow the count budget before the byte budget.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADER_COUNT {
            many.push_str(&format!("X-{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(matches!(
            round_trip(many.as_bytes()),
            Err(ReadError::HeadersTooLarge(_))
        ));
    }
}
