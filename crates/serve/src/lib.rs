//! # nvpg-serve — a batching, caching simulation service
//!
//! The experiment engine answers *queries*: "given an architecture,
//! workload, and design point, what is the energy/BET?" Every answer is
//! deterministic, so a long-lived daemon can serve repeated queries from
//! a content-addressed cache instead of re-running solvers. This crate
//! is that daemon: HTTP/1.1 + JSON over `std::net`, dependency-free like
//! the rest of the workspace.
//!
//! ## Request path
//!
//! ```text
//! accept ─▶ bounded queue ─▶ worker ─▶ canonicalise ─▶ cache ──hit──▶ respond
//!    │ full                                │ miss
//!    ▼                                     ▼
//!  503 + Retry-After              single-flight group ─▶ solve ─▶ cache ─▶ respond
//! ```
//!
//! * **Admission control** — the only buffer is a
//!   [`nvpg_exec::BoundedQueue`] of accepted sockets; past `queue_depth`
//!   the acceptor sheds load with `503` + `Retry-After`, so memory under
//!   overload is bounded.
//! * **Content-addressed cache** — responses are keyed by
//!   [`nvpg_core::canon::request_key`], which canonicalises the JSON
//!   body (field order, whitespace, and number spelling don't matter)
//!   and excludes server configuration (`--jobs` can't split the cache).
//! * **Single-flight** — N identical in-flight requests perform exactly
//!   one solve; followers share the leader's response and count as
//!   cache hits.
//! * **Fail-soft** — deck parsing returns structured `400`s (the parser
//!   is panic-free on hostile input) and a panicking solve answers `500`
//!   via `catch_unwind` without taking the worker down.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | text dump of the `nvpg_obs` metrics registry |
//! | `GET /figures/{id}?format=csv\|json` | any paper figure (CSV byte-identical to the `figures` CLI) |
//! | `POST /bet` | one break-even-time query |
//! | `POST /sweep` | BET vs one swept parameter |
//! | `POST /simulate` | SPICE deck → DC or transient results |

pub mod cache;
pub mod http;
pub mod server;
pub mod singleflight;

pub use http::{Request, Response};
pub use server::Server;

/// Server configuration (the bin's `--listen/--jobs/--cache-mb/
/// --queue-depth` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub listen: String,
    /// Worker threads (0 = the `nvpg_exec` process default).
    pub jobs: usize,
    /// Response-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Accepted-connection queue depth (admission-control bound).
    pub queue_depth: usize,
    /// Expose `/debug/sleep` (deterministic worker stalls for tests/CI).
    pub debug_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:7878".to_owned(),
            jobs: nvpg_exec::default_jobs(),
            cache_bytes: 64 << 20,
            queue_depth: 64,
            debug_endpoints: false,
        }
    }
}
