//! # nvpg-serve — a batching, caching simulation service
//!
//! The experiment engine answers *queries*: "given an architecture,
//! workload, and design point, what is the energy/BET?" Every answer is
//! deterministic, so a long-lived daemon can serve repeated queries from
//! a content-addressed cache instead of re-running solvers. This crate
//! is that daemon: HTTP/1.1 + JSON over `std::net`, dependency-free like
//! the rest of the workspace.
//!
//! ## Request path
//!
//! ```text
//! accept ─▶ bounded queue ─▶ worker ─▶ canonicalise ─▶ cache ──hit──▶ respond
//!    │ full                                │ miss
//!    ▼                                     ▼
//!  503 + Retry-After              single-flight group ─▶ solve ─▶ cache ─▶ respond
//! ```
//!
//! * **Admission control** — the only buffer is a
//!   [`nvpg_exec::BoundedQueue`] of accepted sockets; past `queue_depth`
//!   the acceptor sheds load with `503` + `Retry-After`, so memory under
//!   overload is bounded.
//! * **Content-addressed cache** — responses are keyed by
//!   [`nvpg_core::canon::request_key`], which canonicalises the JSON
//!   body (field order, whitespace, and number spelling don't matter)
//!   and excludes server configuration (`--jobs` can't split the cache).
//! * **Single-flight** — N identical in-flight requests perform exactly
//!   one solve; followers share the leader's response and count as
//!   cache hits.
//! * **Sweep coalescing** — sibling `/sweep` requests (same canonical
//!   topology, *different* point sets) arriving within the coalescing
//!   window merge into one [`batcher`] batch that solves the
//!   deduplicated union once; each sibling renders its own response
//!   from the shared point → result map. Sweep point sets are
//!   canonicalised (sorted, duplicates removed) before cache keying, so
//!   `[3,1,2]` and `[1,2,2,3]` are one cache entry. `/bet` siblings
//!   sharing a canonical topology are by construction identical
//!   requests, which single-flight already coalesces.
//! * **Fail-soft** — deck parsing returns structured `400`s (the parser
//!   is panic-free on hostile input) and a panicking solve answers `500`
//!   via `catch_unwind` without taking the worker down.
//! * **Deadlines** — every request runs under a cooperative
//!   [`nvpg_core::cancel::CancelToken`] armed from the server default or
//!   the client's `timeout_ms` (capped); expiry answers `504` with
//!   partial progress diagnostics and frees the worker immediately.
//! * **Overload control** — a per-client token bucket
//!   ([`limiter::RateLimiter`], `429` + `Retry-After`) and a fair-share
//!   connection queue keep one noisy tenant from starving the rest; a
//!   watchdog cancels solves whose heartbeat stalls or whose client has
//!   disconnected.
//!
//! ## Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | text dump of the `nvpg_obs` metrics registry |
//! | `GET /figures/{id}?format=csv\|json` | any paper figure (CSV byte-identical to the `figures` CLI) |
//! | `POST /bet` | one break-even-time query |
//! | `POST /sweep` | BET vs one swept parameter |
//! | `POST /simulate` | SPICE deck → DC or transient results |

pub mod batcher;
pub mod cache;
pub mod http;
pub mod limiter;
pub mod server;
pub mod singleflight;

pub use http::{Request, Response};
pub use server::Server;

/// Server configuration (the bin's `--listen/--jobs/--cache-mb/
/// --queue-depth/--default-timeout-ms/--rate-limit-rps/…` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub listen: String,
    /// Worker threads (0 = the `nvpg_exec` process default).
    pub jobs: usize,
    /// Response-cache capacity in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Accepted-connection queue depth (admission-control bound),
    /// shared fairly across peers ([`nvpg_exec::FairQueue`]).
    pub queue_depth: usize,
    /// Per-peer share of the connection queue (0 = no per-peer bound;
    /// each peer may then fill the whole queue, the pre-fair-share
    /// behaviour).
    pub queue_per_client: usize,
    /// Expose `/debug/sleep` (deterministic worker stalls for tests/CI).
    pub debug_endpoints: bool,
    /// Deadline applied to requests that carry no `timeout_ms`
    /// (milliseconds; 0 = no default deadline).
    pub default_timeout_ms: u64,
    /// Upper cap on a client-supplied `timeout_ms` (milliseconds; a
    /// larger request value is clamped, never honoured).
    pub max_timeout_ms: u64,
    /// Per-client admitted requests per second (token bucket keyed by
    /// the `X-Client` header, falling back to the peer address;
    /// 0 = rate limiting disabled).
    pub rate_limit_rps: u32,
    /// Token-bucket burst size (0 = same as `rate_limit_rps`).
    pub rate_limit_burst: u32,
    /// Cancel a solve whose progress heartbeat has not advanced for
    /// this long (milliseconds; 0 = stall watchdog disabled).
    pub watchdog_stall_ms: u64,
    /// How long a `/sweep` batch leader holds its coalescing window open
    /// for sibling requests (same topology, different point sets) before
    /// solving the deduplicated union (milliseconds; 0 = coalescing
    /// disabled, every request solves its own points).
    pub coalesce_window_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:7878".to_owned(),
            jobs: nvpg_exec::default_jobs(),
            cache_bytes: 64 << 20,
            queue_depth: 64,
            queue_per_client: 0,
            debug_endpoints: false,
            default_timeout_ms: 30_000,
            max_timeout_ms: 120_000,
            rate_limit_rps: 0,
            rate_limit_burst: 0,
            watchdog_stall_ms: 0,
            coalesce_window_ms: 2,
        }
    }
}
