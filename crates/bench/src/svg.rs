//! Self-contained SVG line-plot renderer for [`Figure`] data.
//!
//! No drawing dependencies: the renderer emits hand-built SVG with
//! linear or logarithmic axes (as each figure declares), nice tick
//! placement, polyline series in a small colour cycle, and a legend.
//! Output is deterministic, which keeps it testable.

use std::fmt::Write as _;

use nvpg_core::Figure;
use nvpg_units::format_eng;

const WIDTH: f64 = 760.0;
const HEIGHT: f64 = 480.0;
const MARGIN_L: f64 = 80.0;
const MARGIN_R: f64 = 190.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 56.0;

const COLORS: [&str; 10] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf",
];

/// One plot axis: maps data values to pixels, linear or log.
#[derive(Debug, Clone, Copy)]
struct Axis {
    min: f64,
    max: f64,
    log: bool,
    pix_lo: f64,
    pix_hi: f64,
}

impl Axis {
    fn new(values: impl Iterator<Item = f64>, log: bool, pix_lo: f64, pix_hi: f64) -> Axis {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            if log && v <= 0.0 {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            min = 0.0;
            max = 1.0;
        }
        if min == max {
            // Degenerate span: widen symmetrically.
            if log {
                min /= 2.0;
                max *= 2.0;
            } else {
                min -= 0.5;
                max += 0.5;
            }
        }
        // 5 % padding in transformed space.
        let (tmin, tmax) = if log {
            (min.log10(), max.log10())
        } else {
            (min, max)
        };
        let pad = 0.05 * (tmax - tmin);
        let (tmin, tmax) = (tmin - pad, tmax + pad);
        let (min, max) = if log {
            (10f64.powf(tmin), 10f64.powf(tmax))
        } else {
            (tmin, tmax)
        };
        Axis {
            min,
            max,
            log,
            pix_lo,
            pix_hi,
        }
    }

    fn transform(&self, v: f64) -> Option<f64> {
        if self.log && v <= 0.0 {
            return None;
        }
        let (t, tmin, tmax) = if self.log {
            (v.log10(), self.min.log10(), self.max.log10())
        } else {
            (v, self.min, self.max)
        };
        let f = (t - tmin) / (tmax - tmin);
        Some(self.pix_lo + f * (self.pix_hi - self.pix_lo))
    }

    /// Tick values: decades for log axes, ~5 round steps for linear.
    fn ticks(&self) -> Vec<f64> {
        if self.log {
            let lo = self.min.log10().ceil() as i32;
            let hi = self.max.log10().floor() as i32;
            (lo..=hi).map(|e| 10f64.powi(e)).collect()
        } else {
            let span = self.max - self.min;
            let raw = span / 5.0;
            let mag = 10f64.powf(raw.log10().floor());
            let step = [1.0, 2.0, 5.0, 10.0]
                .iter()
                .map(|m| m * mag)
                .find(|&s| span / s <= 6.0)
                .unwrap_or(mag * 10.0);
            let start = (self.min / step).ceil() * step;
            let mut out = Vec::new();
            let mut v = start;
            while v <= self.max + 1e-12 * step {
                out.push(v);
                v += step;
            }
            out
        }
    }
}

fn tick_label(v: f64, unit: Option<&str>) -> String {
    match unit {
        Some(u) => format_eng(v, u),
        None => {
            if v == 0.0 {
                "0".to_owned()
            } else if v.abs() >= 1e4 || v.abs() < 1e-2 {
                format!("{v:.0e}")
            } else {
                format!("{v}")
            }
        }
    }
}

fn unit_of(label: &str) -> Option<&str> {
    let open = label.rfind('(')?;
    let close = label.rfind(')')?;
    let unit = &label[open + 1..close];
    if !unit.is_empty() && unit.len() <= 3 && !unit.contains('=') {
        Some(unit)
    } else {
        None
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a figure to an SVG document string.
///
/// # Examples
///
/// ```
/// use nvpg_bench::svg::render_svg;
/// use nvpg_core::{Figure, Series};
///
/// let fig = Figure {
///     id: "demo".into(),
///     caption: "demo".into(),
///     x_label: "t (s)".into(),
///     y_label: "p (W)".into(),
///     log_x: false,
///     log_y: true,
///     series: vec![Series::new("a", vec![(0.0, 1e-9), (1.0, 1e-6)])],
/// };
/// let svg = render_svg(&fig);
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
pub fn render_svg(fig: &Figure) -> String {
    let x_axis = Axis::new(
        fig.series.iter().flat_map(|s| s.points.iter().map(|p| p.0)),
        fig.log_x,
        MARGIN_L,
        WIDTH - MARGIN_R,
    );
    let y_axis = Axis::new(
        fig.series.iter().flat_map(|s| s.points.iter().map(|p| p.1)),
        fig.log_y,
        HEIGHT - MARGIN_B,
        MARGIN_T,
    );
    let x_unit = unit_of(&fig.x_label);
    let y_unit = unit_of(&fig.y_label);

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    // Title.
    let _ = write!(
        out,
        r#"<text x="{}" y="24" font-size="15" font-weight="bold">{} — {}</text>"#,
        MARGIN_L,
        xml_escape(&fig.id),
        xml_escape(&fig.caption)
    );
    // Plot frame.
    let (px0, px1) = (MARGIN_L, WIDTH - MARGIN_R);
    let (py0, py1) = (HEIGHT - MARGIN_B, MARGIN_T);
    let _ = write!(
        out,
        r##"<rect x="{px0}" y="{py1}" width="{}" height="{}" fill="none" stroke="#444"/>"##,
        px1 - px0,
        py0 - py1
    );
    // Gridlines + ticks.
    for tx in x_axis.ticks() {
        if let Some(px) = x_axis.transform(tx) {
            let _ = write!(
                out,
                r##"<line x1="{px:.1}" y1="{py0}" x2="{px:.1}" y2="{py1}" stroke="#ddd"/>"##
            );
            let _ = write!(
                out,
                r##"<text x="{px:.1}" y="{}" text-anchor="middle" fill="#333">{}</text>"##,
                py0 + 18.0,
                xml_escape(&tick_label(tx, x_unit))
            );
        }
    }
    for ty in y_axis.ticks() {
        if let Some(py) = y_axis.transform(ty) {
            let _ = write!(
                out,
                r##"<line x1="{px0}" y1="{py:.1}" x2="{px1}" y2="{py:.1}" stroke="#ddd"/>"##
            );
            let _ = write!(
                out,
                r##"<text x="{}" y="{:.1}" text-anchor="end" fill="#333">{}</text>"##,
                px0 - 6.0,
                py + 4.0,
                xml_escape(&tick_label(ty, y_unit))
            );
        }
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
        0.5 * (px0 + px1),
        HEIGHT - 14.0,
        xml_escape(&fig.x_label)
    );
    let _ = write!(
        out,
        r#"<text x="18" y="{:.1}" text-anchor="middle" transform="rotate(-90 18 {:.1})">{}</text>"#,
        0.5 * (py0 + py1),
        0.5 * (py0 + py1),
        xml_escape(&fig.y_label)
    );
    // Series.
    for (i, s) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut pts = String::new();
        for &(x, y) in &s.points {
            if let (Some(px), Some(py)) = (x_axis.transform(x), y_axis.transform(y)) {
                let _ = write!(pts, "{px:.1},{py:.1} ");
            }
        }
        if !pts.is_empty() {
            let _ = write!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                pts.trim_end()
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 8.0 + i as f64 * 18.0;
        let lx = WIDTH - MARGIN_R + 12.0;
        let _ = write!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2.5"/>"#,
            lx + 18.0
        );
        let _ = write!(
            out,
            r##"<text x="{}" y="{}" fill="#111">{}</text>"##,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpg_core::Series;

    fn demo(log_x: bool, log_y: bool) -> Figure {
        Figure {
            id: "figT".into(),
            caption: "test & <caption>".into(),
            x_label: "t (s)".into(),
            y_label: "E (J)".into(),
            log_x,
            log_y,
            series: vec![
                Series::new("one", vec![(1e-6, 1e-12), (1e-3, 1e-9), (1e-1, 1e-7)]),
                Series::new("two", vec![(1e-6, 5e-12), (1e-1, 5e-10)]),
            ],
        }
    }

    #[test]
    fn renders_wellformed_svg() {
        let svg = render_svg(&demo(true, true));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Caption XML-escaped.
        assert!(svg.contains("test &amp; &lt;caption&gt;"));
        // Legend entries present.
        assert!(svg.contains(">one</text>"));
        assert!(svg.contains(">two</text>"));
    }

    #[test]
    fn log_axes_emit_decade_ticks() {
        let svg = render_svg(&demo(true, true));
        // Decades between 1 µs and 100 ms on x.
        for label in [
            "1.00 µs", "10.0 µs", "100 µs", "1.00 ms", "10.0 ms", "100 ms",
        ] {
            assert!(svg.contains(label), "missing tick {label}");
        }
    }

    #[test]
    fn linear_axes_have_round_ticks() {
        let fig = Figure {
            series: vec![Series::new("s", vec![(0.0, 0.0), (10.0, 5.0)])],
            log_x: false,
            log_y: false,
            x_label: "n".into(),
            y_label: "v".into(),
            ..demo(false, false)
        };
        let svg = render_svg(&fig);
        assert!(svg.contains(">2<") && svg.contains(">4<"), "{svg}");
    }

    #[test]
    fn nonpositive_points_skipped_on_log_axes() {
        let fig = Figure {
            series: vec![Series::new("s", vec![(1.0, -1.0), (2.0, 1.0), (3.0, 2.0)])],
            ..demo(false, true)
        };
        let svg = render_svg(&fig);
        // Polyline exists but only contains the two positive points.
        let poly = svg.split("points=\"").nth(1).unwrap();
        let coords = poly.split('"').next().unwrap();
        assert_eq!(coords.split_whitespace().count(), 2);
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let fig = Figure {
            series: vec![],
            ..demo(false, false)
        };
        let svg = render_svg(&fig);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn degenerate_single_value_span() {
        let fig = Figure {
            series: vec![Series::new("s", vec![(1.0, 5.0), (2.0, 5.0)])],
            ..demo(false, false)
        };
        let svg = render_svg(&fig);
        assert!(svg.contains("<polyline"));
    }
}
