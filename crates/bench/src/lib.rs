//! Rendering helpers for the figure-regeneration harness.
//!
//! The [`figures`](../figures/index.html) binary and the Criterion
//! benches use these helpers to turn [`Figure`] data into aligned text
//! tables and CSV files.

pub mod obs_cli;
pub mod report;
pub mod svg;

use nvpg_core::Figure;
use nvpg_units::format_eng;

/// Renders a figure as an aligned text table, downsampled to at most
/// `max_rows` rows per series.
///
/// # Examples
///
/// ```
/// use nvpg_bench::render_text;
/// use nvpg_core::{Figure, Series};
///
/// let fig = Figure {
///     id: "demo".into(),
///     caption: "demo figure".into(),
///     x_label: "x".into(),
///     y_label: "y (A)".into(),
///     log_x: false,
///     log_y: false,
///     series: vec![Series::new("s", vec![(0.0, 1e-6), (1.0, 2e-6)])],
/// };
/// let text = render_text(&fig, 10);
/// assert!(text.contains("demo figure"));
/// assert!(text.contains("µ"));
/// ```
pub fn render_text(fig: &Figure, max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} — {}\n", fig.id, fig.caption));
    out.push_str(&format!(
        "   x: {}{}   y: {}{}\n",
        fig.x_label,
        if fig.log_x { " [log]" } else { "" },
        fig.y_label,
        if fig.log_y { " [log]" } else { "" },
    ));
    let y_unit = unit_of(&fig.y_label);
    let x_unit = unit_of(&fig.x_label);
    for s in &fig.series {
        out.push_str(&format!("   -- {}\n", s.label));
        let n = s.points.len();
        let step = n.div_ceil(max_rows.max(1)).max(1);
        for (i, &(x, y)) in s.points.iter().enumerate() {
            if i % step != 0 && i != n - 1 {
                continue;
            }
            let xs = match x_unit {
                Some(u) => format_eng(x, u),
                None => format!("{x:.6}"),
            };
            let ys = match y_unit {
                Some(u) => format_eng(y, u),
                None => format!("{y:.6e}"),
            };
            out.push_str(&format!("      {xs:>14}  {ys:>14}\n"));
        }
    }
    out
}

/// Extracts the unit inside trailing parentheses of an axis label, e.g.
/// `"I_L (A)"` → `Some("A")`. Composite units (containing `/`) are
/// returned as-is.
fn unit_of(label: &str) -> Option<&str> {
    let open = label.rfind('(')?;
    let close = label.rfind(')')?;
    if close <= open + 1 {
        return None;
    }
    let unit = &label[open + 1..close];
    // Only pure units make sense in engineering notation.
    if unit.len() <= 3 && !unit.contains('=') {
        Some(unit)
    } else {
        None
    }
}

/// Serialises a figure as CSV: one `series,x,y` row per point.
pub fn to_csv(fig: &Figure) -> String {
    let mut out = String::from("series,x,y\n");
    for s in &fig.series {
        for &(x, y) in &s.points {
            out.push_str(&format!("{},{x:e},{y:e}\n", s.label.replace(',', ";")));
        }
    }
    out
}

/// One-line-per-series summary: point count, first and last samples.
pub fn summarize(fig: &Figure) -> String {
    let mut out = String::new();
    for s in &fig.series {
        match (s.points.first(), s.points.last()) {
            (Some(&(x0, y0)), Some(&(x1, y1))) => {
                out.push_str(&format!(
                    "   {:<28} {:>3} pts   ({x0:.3e}, {y0:.3e}) … ({x1:.3e}, {y1:.3e})\n",
                    s.label,
                    s.points.len(),
                ));
            }
            _ => out.push_str(&format!("   {:<28} (empty)\n", s.label)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpg_core::Series;

    fn demo() -> Figure {
        Figure {
            id: "figX".into(),
            caption: "caption".into(),
            x_label: "t (s)".into(),
            y_label: "p (W)".into(),
            log_x: true,
            log_y: true,
            series: vec![
                Series::new("a", vec![(1e-9, 1e-6), (2e-9, 2e-6), (3e-9, 3e-6)]),
                Series::new("b", vec![]),
            ],
        }
    }

    #[test]
    fn text_render_contains_labels_and_units() {
        let text = render_text(&demo(), 100);
        assert!(text.contains("figX"));
        assert!(text.contains("caption"));
        assert!(text.contains("[log]"));
        assert!(text.contains("nW") || text.contains("µW"));
        assert!(text.contains("ns"));
    }

    #[test]
    fn downsampling_limits_rows() {
        let mut fig = demo();
        fig.series[0].points = (0..1000).map(|i| (i as f64, i as f64)).collect();
        let text = render_text(&fig, 10);
        let rows = text.lines().filter(|l| l.starts_with("      ")).count();
        assert!(rows <= 12, "rows = {rows}");
        // Last point always included.
        assert!(text.contains("999"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = to_csv(&demo());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,x,y");
        assert_eq!(lines.len(), 4); // header + 3 points
        assert!(lines[1].starts_with("a,"));
    }

    #[test]
    fn summary_reports_counts() {
        let s = summarize(&demo());
        assert!(s.contains("3 pts"));
        assert!(s.contains("(empty)"));
    }

    #[test]
    fn unit_extraction() {
        assert_eq!(unit_of("I_L (A)"), Some("A"));
        assert_eq!(unit_of("E_cyc (J)"), Some("J"));
        assert_eq!(unit_of("n_RW"), None);
        assert_eq!(unit_of("mode (0=normal, 1=sleep)"), None);
    }
}
