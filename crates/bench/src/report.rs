//! Live measurement report.
//!
//! Generates a markdown summary of the headline quantities from a fresh
//! characterisation — the regenerable core of `EXPERIMENTS.md`. Because
//! it runs the real simulations, it is also the quickest way to see how a
//! modified design point shifts every headline number at once.

use std::fmt::Write as _;

use nvpg_cells::characterize::sensed_read;
use nvpg_cells::design::CellDesign;
use nvpg_cells::snm::{static_noise_margin, SnmCondition};
use nvpg_cells::timing::timing;
use nvpg_cells::CellKind;
use nvpg_circuit::CircuitError;
use nvpg_core::bet::bet_closed_form;
use nvpg_core::{Architecture, BenchmarkParams, Bet, Experiments, PowerDomain};
use nvpg_units::format_eng;

fn fmt_bet(b: Bet) -> String {
    match b {
        Bet::At(t) => format_eng(t.0, "s"),
        Bet::Always => "always wins".into(),
        Bet::Never => "never wins".into(),
    }
}

/// Builds the markdown report for an already-characterised driver.
///
/// # Errors
///
/// Propagates simulation errors from the second (Fig. 9(b)) design point.
pub fn generate_report(exp: &Experiments) -> Result<String, CircuitError> {
    let ch = exp.characterization();
    let sp = &ch.static_power;
    let m = exp.model();
    let mut out = String::new();
    let w = &mut out;

    let _ = writeln!(w, "# nvpg measurement report (live)\n");
    let _ = writeln!(
        w,
        "Design point: Table I, {} MHz read/write, N_FSW = {}.\n",
        exp.design().conditions.rw_freq / 1e6,
        exp.design().fins_power_switch
    );

    let _ = writeln!(w, "## Cell characterisation\n");
    let _ = writeln!(w, "| quantity | 6T | NV-SRAM |");
    let _ = writeln!(w, "|---|---|---|");
    let _ = writeln!(
        w,
        "| static power, normal | {} | {} |",
        format_eng(sp.p_6t_normal, "W"),
        format_eng(sp.p_nv_normal, "W")
    );
    let _ = writeln!(
        w,
        "| static power, sleep | {} | {} |",
        format_eng(sp.p_6t_sleep, "W"),
        format_eng(sp.p_nv_sleep, "W")
    );
    let _ = writeln!(
        w,
        "| static power, shutdown / super cutoff | — | {} / {} |",
        format_eng(sp.p_nv_shutdown, "W"),
        format_eng(sp.p_nv_shutdown_super, "W")
    );
    let _ = writeln!(
        w,
        "| read / write energy per op | {} / {} | {} / {} |",
        format_eng(ch.e_read_6t, "J"),
        format_eng(ch.e_write_6t, "J"),
        format_eng(ch.e_read_nv, "J"),
        format_eng(ch.e_write_nv, "J")
    );
    let _ = writeln!(
        w,
        "| store (two-step, {}) | — | {} ({}) |",
        format_eng(ch.t_store, "s"),
        format_eng(ch.e_store, "J"),
        if ch.store_ok { "switched" } else { "FAILED" }
    );
    let _ = writeln!(
        w,
        "| restore ({}) | — | {} ({}) |\n",
        format_eng(ch.t_restore, "s"),
        format_eng(ch.e_restore, "J"),
        if ch.restore_ok { "data ok" } else { "FAILED" }
    );

    let _ = writeln!(w, "## Margins & timing (separation claim)\n");
    let d = exp.design();
    let snm6_h = static_noise_margin(d, CellKind::Volatile6T, SnmCondition::Hold)?;
    let snm6_r = static_noise_margin(d, CellKind::Volatile6T, SnmCondition::Read)?;
    let snmn_h = static_noise_margin(d, CellKind::NvSram, SnmCondition::Hold)?;
    let snmn_r = static_noise_margin(d, CellKind::NvSram, SnmCondition::Read)?;
    let t6 = timing(d, CellKind::Volatile6T)?;
    let tn = timing(d, CellKind::NvSram)?;
    let s6 = sensed_read(d, CellKind::Volatile6T)?;
    let sn = sensed_read(d, CellKind::NvSram)?;
    let _ = writeln!(w, "| quantity | 6T | NV-SRAM |");
    let _ = writeln!(w, "|---|---|---|");
    let _ = writeln!(
        w,
        "| SNM hold / read | {} / {} | {} / {} |",
        format_eng(snm6_h, "V"),
        format_eng(snm6_r, "V"),
        format_eng(snmn_h, "V"),
        format_eng(snmn_r, "V")
    );
    let _ = writeln!(
        w,
        "| write time / read development | {} / {} | {} / {} |",
        format_eng(t6.t_write, "s"),
        format_eng(t6.t_read_develop, "s"),
        format_eng(tn.t_write, "s"),
        format_eng(tn.t_read_develop, "s")
    );
    let _ = writeln!(
        w,
        "| sensed-read differential / energy | {} / {} | {} / {} |",
        format_eng(s6.delta_v, "V"),
        format_eng(s6.energy, "J"),
        format_eng(sn.delta_v, "V"),
        format_eng(sn.energy, "J")
    );
    if let Some(tr) = tn.t_restore {
        let _ = writeln!(w, "| restore separation | — | {} |", format_eng(tr, "s"));
    }
    let _ = writeln!(w);

    let _ = writeln!(w, "## Break-even times (M = 32)\n");
    let _ = writeln!(w, "| n_RW | N | NVPG | NVPG store-free | NOF |");
    let _ = writeln!(w, "|---|---|---|---|---|");
    for &(n_rw, rows) in &[(10u32, 32u32), (10, 2048), (100, 32), (1000, 32)] {
        let p = BenchmarkParams {
            n_rw,
            t_sl: 100e-9,
            t_sd: 0.0,
            domain: PowerDomain::new(rows, 32),
            reads_per_write: 1,
            store_free: false,
        };
        let sf = BenchmarkParams {
            store_free: true,
            ..p
        };
        let _ = writeln!(
            w,
            "| {n_rw} | {rows} | {} | {} | {} |",
            fmt_bet(bet_closed_form(m, Architecture::Nvpg, &p)),
            fmt_bet(bet_closed_form(m, Architecture::Nvpg, &sf)),
            fmt_bet(bet_closed_form(m, Architecture::Nof, &p)),
        );
    }

    let _ = writeln!(w, "\n## Fast technology point (Fig. 9(b))\n");
    let fast = Experiments::new(CellDesign::fig9b())?;
    let p = BenchmarkParams::fig7_default();
    let _ = writeln!(
        w,
        "1 GHz, J_C = 1e6 A/cm², re-designed store drive: BET = {} \
         (vs {} at the Table I point); store {}, restore {}.",
        fmt_bet(bet_closed_form(fast.model(), Architecture::Nvpg, &p)),
        fmt_bet(bet_closed_form(m, Architecture::Nvpg, &p)),
        if fast.characterization().store_ok {
            "ok"
        } else {
            "FAILED"
        },
        if fast.characterization().restore_ok {
            "ok"
        } else {
            "FAILED"
        },
    );

    let _ = writeln!(w, "\n## Performance (benchmark wall-clock)\n");
    let p = BenchmarkParams {
        n_rw: 100,
        t_sl: 100e-9,
        t_sd: 0.0,
        ..BenchmarkParams::fig7_default()
    };
    let t_osr = m.cycle_duration(Architecture::Osr, &p).0;
    let t_nvpg = m.cycle_duration(Architecture::Nvpg, &p).0;
    let t_nof = m.cycle_duration(Architecture::Nof, &p).0;
    let _ = writeln!(
        w,
        "n_RW = 100, 32×32 domain: OSR {}, NVPG {} ({:+.1} %), NOF {} ({:.1}× NVPG).",
        format_eng(t_osr, "s"),
        format_eng(t_nvpg, "s"),
        100.0 * (t_nvpg - t_osr) / t_osr,
        format_eng(t_nof, "s"),
        t_nof / t_nvpg
    );

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections_and_sane_values() {
        let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
        let report = generate_report(&exp).expect("report");
        for section in [
            "# nvpg measurement report",
            "## Cell characterisation",
            "## Margins & timing",
            "## Break-even times",
            "## Fast technology point",
            "## Performance",
        ] {
            assert!(report.contains(section), "missing `{section}`");
        }
        // The store/restore must have verified, and units must render.
        assert!(report.contains("switched"));
        assert!(report.contains("data ok"));
        assert!(report.contains("µs") || report.contains("ms"));
        assert!(!report.contains("FAILED"));
    }
}
