//! `loadgen` — closed-loop load generator for the `nvpg-serve` daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT | --spawn] [--requests N] [--concurrency C]
//!         [--arrival-rps R] [--arrival poisson|fixed] [--arrival-seed S]
//!         [--p99-ms MS] [--overload] [--overload-p99-ms MS]
//!         [--check] [--out FILE]
//! ```
//!
//! The default workload is a two-phase figure run against a live daemon:
//!
//! 1. **cache-cold** — each figure id requested once; every request is a
//!    miss and pays a real solve;
//! 2. **cache-hot** — `--requests` requests round-robin over the same
//!    ids from `--concurrency` closed-loop connections; every request is
//!    a content-addressed cache hit.
//!
//! With `--overload` it instead runs the mixed-tenant overload scenario:
//! a **heavy** tenant (`X-Client: heavy`) hammers `/simulate` with slow
//! transient decks under a short `timeout_ms`, while a **light** tenant
//! sends paced, cached figure reads. The daemon (spawned with rate
//! limiting and deadlines on) must shed the flood — `429` per-tenant
//! rate limits and `504` request deadlines — while the light tenant's
//! p99 stays bounded and no worker wedges (post-storm health probe +
//! clean SIGTERM drain).
//!
//! Either mode records latency histograms (p50/p90/p99) and writes the
//! result to `--out`. With `--check` it acts as a CI gate: non-zero exit
//! if a gate fails (cache-hot p99 / error counts in the default mode;
//! light-tenant p99, observed sheds, and zero wedged workers under
//! `--overload`).
//!
//! With `--arrival-rps R` the hot phase switches from closed-loop to
//! **open-loop**: requests are launched at externally scheduled arrival
//! instants (Poisson by default — exponential inter-arrival gaps from a
//! seedable LCG — or `--arrival fixed` for a metronome), independent of
//! how fast earlier responses come back. Closed-loop generators hide
//! server slowdowns by self-throttling (coordinated omission); open-loop
//! arrivals keep offered load constant, so queueing delay shows up in
//! the latency percentiles instead of disappearing into the send rate.
//!
//! With `--spawn` it launches the sibling `nvpg-serve` binary on a free
//! port, runs the workload, then terminates it with SIGTERM and verifies
//! a clean drain (exit status 0). No HTTP library, no signal crate: raw
//! `TcpStream`s and `/bin/kill`.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The figure workload: one heavy transient figure (the cold phase pays
/// a real solve) plus two cheap model sweeps (so the hot phase exercises
/// several cache keys, not one).
const FIGURE_IDS: [&str; 3] = ["fig6a", "fig7a", "fig8a"];

/// How open-loop arrival instants are spaced.
#[derive(Clone, Copy, PartialEq)]
enum ArrivalMode {
    /// Exponential inter-arrival gaps (memoryless, bursty — the realistic
    /// model of independent clients).
    Poisson,
    /// A metronome: every gap is exactly `1/rps`.
    Fixed,
}

impl ArrivalMode {
    fn name(self) -> &'static str {
        match self {
            ArrivalMode::Poisson => "poisson",
            ArrivalMode::Fixed => "fixed",
        }
    }
}

struct Args {
    addr: Option<String>,
    spawn: bool,
    requests: usize,
    concurrency: usize,
    /// Open-loop offered load in requests/second (0 = closed-loop).
    arrival_rps: f64,
    arrival_mode: ArrivalMode,
    arrival_seed: u64,
    p99_ms: f64,
    overload: bool,
    overload_p99_ms: f64,
    check: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --spawn] [--requests N] [--concurrency C] \
         [--arrival-rps R] [--arrival poisson|fixed] [--arrival-seed S] \
         [--p99-ms MS] [--overload] [--overload-p99-ms MS] [--check] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        spawn: false,
        requests: 200,
        concurrency: 4,
        arrival_rps: 0.0,
        arrival_mode: ArrivalMode::Poisson,
        arrival_seed: 1,
        p99_ms: 250.0,
        overload: false,
        overload_p99_ms: 750.0,
        check: false,
        out: String::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => out.addr = Some(value()),
            "--spawn" => out.spawn = true,
            "--requests" => out.requests = value().parse().unwrap_or_else(|_| usage()),
            "--concurrency" => out.concurrency = value().parse().unwrap_or_else(|_| usage()),
            "--arrival-rps" => out.arrival_rps = value().parse().unwrap_or_else(|_| usage()),
            "--arrival" => {
                out.arrival_mode = match value().as_str() {
                    "poisson" => ArrivalMode::Poisson,
                    "fixed" => ArrivalMode::Fixed,
                    _ => usage(),
                }
            }
            "--arrival-seed" => out.arrival_seed = value().parse().unwrap_or_else(|_| usage()),
            "--p99-ms" => out.p99_ms = value().parse().unwrap_or_else(|_| usage()),
            "--overload" => out.overload = true,
            "--overload-p99-ms" => {
                out.overload_p99_ms = value().parse().unwrap_or_else(|_| usage())
            }
            "--check" => out.check = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.arrival_rps < 0.0 || !out.arrival_rps.is_finite() {
        eprintln!("loadgen: --arrival-rps must be a finite rate >= 0");
        usage();
    }
    if out.addr.is_none() && !out.spawn {
        eprintln!("loadgen: need --addr or --spawn");
        usage();
    }
    if out.out.is_empty() {
        out.out = if out.overload {
            "BENCH_PR7.json".to_owned()
        } else {
            "BENCH_PR5.json".to_owned()
        };
    }
    out
}

/// One request on a fresh connection; returns (status, body length,
/// latency). `client` becomes the `X-Client` tenant header when set.
fn request(
    addr: &str,
    method: &str,
    path: &str,
    client: Option<&str>,
    body: Option<&str>,
) -> Result<(u16, usize, Duration), String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| e.to_string())?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: l\r\nConnection: close\r\n");
    if let Some(c) = client {
        head.push_str(&format!("X-Client: {c}\r\n"));
    }
    if let Some(b) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| e.to_string())?;
    if let Some(b) = body {
        stream.write_all(b.as_bytes()).map_err(|e| e.to_string())?;
    }
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", line.trim_end()))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let h = line.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| "bad length".to_owned())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((status, body.len(), t0.elapsed()))
}

/// One GET on a fresh connection; returns (status, body length, latency).
fn get(addr: &str, path: &str) -> Result<(u16, usize, Duration), String> {
    request(addr, "GET", path, None, None)
}

/// GET that returns the response body as text (for `/metrics`).
fn get_body(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .map_err(|e| e.to_string())?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err("no body".to_owned()),
    }
}

/// Latency summary of one phase.
struct Phase {
    requests: usize,
    errors: usize,
    elapsed: Duration,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn json(&self, label: &str) -> String {
        format!(
            "\"{label}\": {{\"requests\": {}, \"errors\": {}, \"wall_clock_s\": {:.6}, \
             \"throughput_rps\": {:.3}, \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}}}}",
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.p50_ms,
            self.p90_ms,
            self.p99_ms
        )
    }
}

fn summarize(mut latencies: Vec<Duration>, errors: usize, elapsed: Duration) -> Phase {
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx].as_secs_f64() * 1e3
    };
    Phase {
        requests: latencies.len() + errors,
        errors,
        elapsed,
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
    }
}

/// Cache-cold phase: every figure once, sequentially (each is a solve).
fn run_cold(addr: &str) -> Phase {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for id in FIGURE_IDS {
        match get(addr, &format!("/figures/{id}?format=csv")) {
            Ok((200, _, dt)) => latencies.push(dt),
            Ok((status, ..)) => {
                eprintln!("loadgen: cold {id} -> {status}");
                errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: cold {id}: {e}");
                errors += 1;
            }
        }
    }
    summarize(latencies, errors, t0.elapsed())
}

/// Cache-hot phase: `requests` round-robin requests over the same
/// figures from `concurrency` closed-loop worker threads.
fn run_hot(addr: &str, requests: usize, concurrency: usize) -> Phase {
    let t0 = Instant::now();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency.max(1))
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= requests {
                            break;
                        }
                        let id = FIGURE_IDS[i % FIGURE_IDS.len()];
                        match get(addr, &format!("/figures/{id}?format=csv")) {
                            Ok((200, _, dt)) => latencies.push(dt),
                            Ok((status, ..)) => {
                                eprintln!("loadgen: hot {id} -> {status}");
                                errors += 1;
                            }
                            Err(e) => {
                                eprintln!("loadgen: hot {id}: {e}");
                                errors += 1;
                            }
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker"))
            .collect()
    });
    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for (l, e) in results {
        latencies.extend(l);
        errors += e;
    }
    summarize(latencies, errors, t0.elapsed())
}

/// splitmix64 — the gap generator's PRNG step. Good enough spectral
/// quality for inter-arrival sampling, and one `u64` of state keeps the
/// schedule reproducible from `--arrival-seed`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in (0, 1] — never 0, so `ln` below is always finite.
fn uniform_01(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// The deterministic inter-arrival schedule for `n` open-loop requests at
/// `rps` offered load: exponential gaps (Poisson process) or a fixed
/// metronome. Same seed, same schedule — reruns are comparable.
fn arrival_gaps(n: usize, rps: f64, mode: ArrivalMode, seed: u64) -> Vec<Duration> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let gap_s = match mode {
                ArrivalMode::Fixed => 1.0 / rps,
                ArrivalMode::Poisson => -uniform_01(&mut state).ln() / rps,
            };
            Duration::from_secs_f64(gap_s)
        })
        .collect()
}

/// Open-loop hot phase: `requests` requests launched at pre-scheduled
/// arrival instants, each on its own thread. Unlike the closed loop,
/// a slow response does NOT delay later sends — offered load stays at
/// `rps` and any server-side queueing shows up as latency, not as a
/// silently reduced request rate.
fn run_open_loop(addr: &str, requests: usize, rps: f64, mode: ArrivalMode, seed: u64) -> Phase {
    let gaps = arrival_gaps(requests, rps, mode, seed);
    let t0 = Instant::now();
    let results: Vec<Result<Duration, ()>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(requests);
        let mut due = Duration::ZERO;
        for (i, gap) in gaps.iter().enumerate() {
            due += *gap;
            // The scheduler thread owns the clock; sleep until this
            // arrival is due (a late wake just sends immediately).
            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            let id = FIGURE_IDS[i % FIGURE_IDS.len()];
            handles.push(scope.spawn(move || {
                match get(addr, &format!("/figures/{id}?format=csv")) {
                    Ok((200, _, dt)) => Ok(dt),
                    Ok((status, ..)) => {
                        eprintln!("loadgen: open-loop {id} -> {status}");
                        Err(())
                    }
                    Err(e) => {
                        eprintln!("loadgen: open-loop {id}: {e}");
                        Err(())
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen arrival"))
            .collect()
    });
    let errors = results.iter().filter(|r| r.is_err()).count();
    let latencies = results.into_iter().filter_map(|r| r.ok()).collect();
    summarize(latencies, errors, t0.elapsed())
}

/// Spawns the sibling `nvpg-serve` binary on a free port and returns the
/// child plus the parsed listen address.
fn spawn_daemon(extra_args: &[&str]) -> Result<(Child, String), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let daemon = exe.parent().ok_or("no parent dir")?.join("nvpg-serve");
    if !daemon.exists() {
        return Err(format!(
            "{} not found (build it: cargo build -p nvpg-serve)",
            daemon.display()
        ));
    }
    let mut child = Command::new(&daemon)
        .args(["--listen", "127.0.0.1:0"])
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", daemon.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    // "nvpg-serve listening on 127.0.0.1:PORT (...)"
    let addr = line
        .split_whitespace()
        .find(|tok| tok.contains(':') && tok.starts_with("127."))
        .ok_or_else(|| format!("could not parse listen address from `{}`", line.trim_end()))?
        .to_owned();
    // Keep draining the pipe so the daemon never blocks on stdout.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    Ok((child, addr))
}

/// SIGTERMs the daemon and verifies a clean drain (exit status 0).
fn stop_daemon(mut child: Child) -> Result<(), String> {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map_err(|e| format!("kill: {e}"))?;
    if !status.success() {
        let _ = child.kill();
        return Err("kill -TERM failed".to_owned());
    }
    let t0 = Instant::now();
    loop {
        match child.try_wait().map_err(|e| e.to_string())? {
            Some(status) if status.success() => return Ok(()),
            Some(status) => return Err(format!("daemon exited uncleanly: {status}")),
            None if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                return Err("daemon did not drain within 30 s of SIGTERM".to_owned());
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The daemon configuration the overload scenario runs against: enough
/// workers that a rate-limited heavy tenant cannot saturate them, a
/// per-tenant token bucket, and deadlines on (the heavy tenant's
/// `timeout_ms` is what bounds its worker hold time).
const OVERLOAD_DAEMON_ARGS: &[&str] = &[
    "--jobs",
    "4",
    "--rate-limit-rps",
    "8",
    "--rate-limit-burst",
    "16",
    "--default-timeout-ms",
    "120000",
    "--max-timeout-ms",
    "10000",
    "--watchdog-stall-ms",
    "5000",
];

/// What one tenant saw during the storm.
#[derive(Default)]
struct TenantStats {
    latencies: Vec<Duration>,
    /// HTTP status -> count (transport errors under 0).
    statuses: BTreeMap<u16, usize>,
}

impl TenantStats {
    fn record(&mut self, outcome: &Result<(u16, usize, Duration), String>) {
        match outcome {
            Ok((status, _, dt)) => {
                self.latencies.push(*dt);
                *self.statuses.entry(*status).or_default() += 1;
            }
            Err(_) => *self.statuses.entry(0).or_default() += 1,
        }
    }

    fn merge(&mut self, other: TenantStats) {
        self.latencies.extend(other.latencies);
        for (s, n) in other.statuses {
            *self.statuses.entry(s).or_default() += n;
        }
    }

    fn count(&self, status: u16) -> usize {
        self.statuses.get(&status).copied().unwrap_or(0)
    }

    fn total(&self) -> usize {
        self.statuses.values().sum()
    }

    fn p99_ms(&self) -> f64 {
        let mut l = self.latencies.clone();
        l.sort_unstable();
        if l.is_empty() {
            return f64::NAN;
        }
        let idx = ((l.len() as f64 * 0.99).ceil() as usize).clamp(1, l.len()) - 1;
        l[idx].as_secs_f64() * 1e3
    }

    fn statuses_json(&self) -> String {
        let pairs: Vec<String> = self
            .statuses
            .iter()
            .map(|(s, n)| {
                format!(
                    "\"{}\": {n}",
                    if *s == 0 {
                        "error".to_owned()
                    } else {
                        s.to_string()
                    }
                )
            })
            .collect();
        format!("{{{}}}", pairs.join(", "))
    }
}

/// A heavy-tenant `/simulate` body: a slow RC transient (≥10 M accepted
/// steps at the breakpoint-capped 100 ps step — minutes of solving) under
/// a 300 ms deadline. `i` perturbs `t_stop` so every request has its own
/// cache/single-flight key and pays its own admission.
fn heavy_body(i: usize) -> String {
    format!(
        "{{\"deck\":\"V1 vin 0 PULSE(0 1 1n 1n 1n 1u 2u)\\nR1 vin out 1k\\nC1 out 0 1n\\n\",\
         \"analysis\":\"tran\",\"t_stop\":{},\"timeout_ms\":300}}",
        1e-3 + i as f64 * 1e-6
    )
}

struct OverloadResult {
    light: TenantStats,
    heavy: TenantStats,
    storm: Duration,
    post_healthz_ms: f64,
    post_figure_status: u16,
    post_figure_ms: f64,
    counters: BTreeMap<String, u64>,
}

/// The mixed-tenant storm: 2 paced light connections reading cached
/// figures, 4 unpaced heavy connections pounding slow `/simulate` decks,
/// for as long as the light workload runs (~10 s).
fn run_overload(addr: &str) -> OverloadResult {
    // Warm the cache (and the one-off Table I characterisation) so the
    // light tenant's storm-time reads are cache hits.
    match request(
        addr,
        "GET",
        "/figures/fig7a?format=csv",
        Some("light"),
        None,
    ) {
        Ok((200, ..)) => {}
        Ok((status, ..)) => eprintln!("loadgen: warm-up -> {status}"),
        Err(e) => eprintln!("loadgen: warm-up: {e}"),
    }

    const LIGHT_THREADS: usize = 2;
    const LIGHT_REQUESTS_PER_THREAD: usize = 25;
    const LIGHT_PACE: Duration = Duration::from_millis(400);
    const HEAVY_THREADS: usize = 4;

    let t0 = Instant::now();
    let stop = AtomicBool::new(false);
    let heavy_cursor = AtomicUsize::new(0);
    let (light, heavy) = std::thread::scope(|scope| {
        let heavy_handles: Vec<_> = (0..HEAVY_THREADS)
            .map(|_| {
                let stop = &stop;
                let cursor = &heavy_cursor;
                scope.spawn(move || {
                    let mut stats = TenantStats::default();
                    while !stop.load(Ordering::Relaxed) {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let body = heavy_body(i);
                        stats.record(&request(
                            addr,
                            "POST",
                            "/simulate",
                            Some("heavy"),
                            Some(&body),
                        ));
                    }
                    stats
                })
            })
            .collect();
        let light_handles: Vec<_> = (0..LIGHT_THREADS)
            .map(|_| {
                scope.spawn(move || {
                    let mut stats = TenantStats::default();
                    for _ in 0..LIGHT_REQUESTS_PER_THREAD {
                        stats.record(&request(
                            addr,
                            "GET",
                            "/figures/fig7a?format=csv",
                            Some("light"),
                            None,
                        ));
                        std::thread::sleep(LIGHT_PACE);
                    }
                    stats
                })
            })
            .collect();
        let mut light = TenantStats::default();
        for h in light_handles {
            light.merge(h.join().expect("light worker"));
        }
        stop.store(true, Ordering::Relaxed);
        let mut heavy = TenantStats::default();
        for h in heavy_handles {
            heavy.merge(h.join().expect("heavy worker"));
        }
        (light, heavy)
    });
    let storm = t0.elapsed();

    // Zero-wedged-workers probes: with the storm over, the daemon must
    // answer immediately — every admitted heavy solve was cancelled at
    // its deadline, so no worker is still grinding a dead request.
    let (post_healthz_ms, _) = match get(addr, "/healthz") {
        Ok((200, _, dt)) => (dt.as_secs_f64() * 1e3, true),
        _ => (f64::NAN, false),
    };
    let (post_figure_status, post_figure_ms) = match request(
        addr,
        "GET",
        "/figures/fig7a?format=csv",
        Some("light"),
        None,
    ) {
        Ok((status, _, dt)) => (status, dt.as_secs_f64() * 1e3),
        Err(_) => (0, f64::NAN),
    };

    let mut counters = BTreeMap::new();
    if let Ok(text) = get_body(addr, "/metrics") {
        for line in text.lines() {
            if let Some((name, value)) = line.rsplit_once(' ') {
                if let Ok(v) = value.parse::<u64>() {
                    counters.insert(name.to_owned(), v);
                }
            }
        }
    }

    OverloadResult {
        light,
        heavy,
        storm,
        post_healthz_ms,
        post_figure_status,
        post_figure_ms,
        counters,
    }
}

/// Runs `--overload` end to end (storm, probes, JSON, gates); returns the
/// process exit code.
fn overload_main(args: &Args, addr: &str, daemon: Option<Child>) -> i32 {
    eprintln!("loadgen: mixed-tenant overload storm against {addr}");
    let r = run_overload(addr);
    eprintln!(
        "loadgen: storm {:.1} s: light {} req (p99 {:.1} ms, statuses {}), heavy {} req (statuses {})",
        r.storm.as_secs_f64(),
        r.light.total(),
        r.light.p99_ms(),
        r.light.statuses_json(),
        r.heavy.total(),
        r.heavy.statuses_json(),
    );

    let drain = match daemon {
        Some(child) => match stop_daemon(child) {
            Ok(()) => {
                eprintln!("loadgen: daemon drained cleanly on SIGTERM");
                Some(true)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                Some(false)
            }
        },
        None => None,
    };

    let counter = |name: &str| r.counters.get(name).copied().unwrap_or(0);
    let counters_json: Vec<String> = [
        "serve.requests",
        "serve.rate_limited",
        "serve.deadline_exceeded",
        "serve.rejected",
        "serve.disconnects",
        "serve.watchdog_fires",
        "engine.cancelled_points",
    ]
    .iter()
    .filter(|n| r.counters.contains_key(**n))
    .map(|n| format!("\"{n}\": {}", counter(n)))
    .collect();
    let json = format!(
        "{{\n  \"generated_by\": \"loadgen --overload\",\n  \"daemon_args\": {:?},\n  \
         \"storm_s\": {:.3},\n  \"light\": {{\"requests\": {}, \"p99_ms\": {:.3}, \
         \"statuses\": {}}},\n  \"heavy\": {{\"requests\": {}, \"statuses\": {}}},\n  \
         \"post_storm\": {{\"healthz_ms\": {:.3}, \"figure_status\": {}, \"figure_ms\": {:.3}}},\n  \
         \"server_counters\": {{{}}},\n  \"clean_drain\": {},\n  \"notes\": \"heavy tenant: slow \
         /simulate decks under timeout_ms=300; light tenant: paced cached figure reads. Gates: \
         every light request answers 200 under the p99 bound, the heavy flood is shed with 429s \
         and 504s, and post-storm probes prove no worker wedged.\"\n}}\n",
        OVERLOAD_DAEMON_ARGS,
        r.storm.as_secs_f64(),
        r.light.total(),
        r.light.p99_ms(),
        r.light.statuses_json(),
        r.heavy.total(),
        r.heavy.statuses_json(),
        r.post_healthz_ms,
        r.post_figure_status,
        r.post_figure_ms,
        counters_json.join(", "),
        match drain {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        }
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("loadgen: write {}: {e}", args.out);
        return 1;
    }
    eprintln!("loadgen: wrote {}", args.out);

    if args.check {
        let mut failures = Vec::new();
        if r.light.count(200) != r.light.total() {
            failures.push(format!(
                "light tenant saw non-200s: {}",
                r.light.statuses_json()
            ));
        }
        // NaN (no latencies at all) must fail the gate too.
        if r.light.p99_ms().is_nan() || r.light.p99_ms() > args.overload_p99_ms {
            failures.push(format!(
                "light p99 {:.1} ms exceeds the {:.1} ms overload gate",
                r.light.p99_ms(),
                args.overload_p99_ms
            ));
        }
        if r.heavy.count(429) == 0 {
            failures.push("heavy tenant was never rate-limited (no 429s)".to_owned());
        }
        if r.heavy.count(504) == 0 {
            failures.push("no heavy request hit its deadline (no 504s)".to_owned());
        }
        if counter("serve.rate_limited") == 0 || counter("serve.deadline_exceeded") == 0 {
            failures.push(format!(
                "server counters do not reflect the sheds (rate_limited {}, deadline_exceeded {})",
                counter("serve.rate_limited"),
                counter("serve.deadline_exceeded")
            ));
        }
        if r.post_healthz_ms.is_nan() || r.post_healthz_ms > 1000.0 {
            failures.push(format!(
                "post-storm healthz took {:.1} ms (wedged worker?)",
                r.post_healthz_ms
            ));
        }
        if r.post_figure_status != 200 || r.post_figure_ms.is_nan() || r.post_figure_ms > 1000.0 {
            failures.push(format!(
                "post-storm figure read: status {} in {:.1} ms",
                r.post_figure_status, r.post_figure_ms
            ));
        }
        if drain == Some(false) {
            failures.push("daemon did not drain cleanly".to_owned());
        }
        if !failures.is_empty() {
            eprintln!("loadgen --check FAILED: {}", failures.join("; "));
            return 1;
        }
        eprintln!("loadgen --check passed");
    }
    0
}

fn main() {
    let args = parse_args();
    let (daemon, addr) = if args.spawn {
        let daemon_args: &[&str] = if args.overload {
            OVERLOAD_DAEMON_ARGS
        } else {
            &["--jobs", "2"]
        };
        match spawn_daemon(daemon_args) {
            Ok((child, addr)) => (Some(child), addr),
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        (None, args.addr.clone().expect("checked in parse_args"))
    };

    // Liveness first: a dead daemon should fail fast, not time out.
    if let Err(e) = get(&addr, "/healthz") {
        eprintln!("loadgen: daemon not healthy at {addr}: {e}");
        std::process::exit(1);
    }

    if args.overload {
        std::process::exit(overload_main(&args, &addr, daemon));
    }

    eprintln!("loadgen: cache-cold pass over {:?}", FIGURE_IDS);
    let cold = run_cold(&addr);
    eprintln!(
        "loadgen: cold {} req in {:.2} s ({:.2} rps), p99 {:.1} ms",
        cold.requests,
        cold.elapsed.as_secs_f64(),
        cold.rps(),
        cold.p99_ms
    );
    let open_loop = args.arrival_rps > 0.0;
    let hot = if open_loop {
        eprintln!(
            "loadgen: cache-hot pass, {} open-loop arrivals at {} rps ({})",
            args.requests,
            args.arrival_rps,
            args.arrival_mode.name()
        );
        run_open_loop(
            &addr,
            args.requests,
            args.arrival_rps,
            args.arrival_mode,
            args.arrival_seed,
        )
    } else {
        eprintln!(
            "loadgen: cache-hot pass, {} requests x{} connections",
            args.requests, args.concurrency
        );
        run_hot(&addr, args.requests, args.concurrency)
    };
    eprintln!(
        "loadgen: hot {} req in {:.2} s ({:.2} rps), p99 {:.1} ms",
        hot.requests,
        hot.elapsed.as_secs_f64(),
        hot.rps(),
        hot.p99_ms
    );

    let drain = match daemon {
        Some(child) => match stop_daemon(child) {
            Ok(()) => {
                eprintln!("loadgen: daemon drained cleanly on SIGTERM");
                Some(true)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                Some(false)
            }
        },
        None => None,
    };

    let speedup = hot.rps() / cold.rps().max(1e-9);
    let arrival_json = if open_loop {
        format!(
            "{{\"mode\": \"{}\", \"offered_rps\": {}, \"seed\": {}}}",
            args.arrival_mode.name(),
            args.arrival_rps,
            args.arrival_seed
        )
    } else {
        "null".to_owned()
    };
    let json = format!(
        "{{\n  \"generated_by\": \"loadgen\",\n  \"workload\": {:?},\n  \"arrival\": {},\n  {},\n  {},\n  \
         \"cache_hot_speedup\": {:.3},\n  \"clean_drain\": {},\n  \"notes\": \"cold pass pays one \
         solve per figure (plus the one-off Table I characterisation on the first request); hot \
         pass is served from the content-addressed cache without touching the solver. arrival=null \
         means the hot phase ran closed-loop; otherwise requests were launched open-loop at the \
         recorded offered rate, so hot throughput tracks offered load, not server capacity.\"\n}}\n",
        FIGURE_IDS.as_slice(),
        arrival_json,
        cold.json("cache_cold"),
        hot.json("cache_hot"),
        speedup,
        match drain {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        }
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("loadgen: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("loadgen: wrote {} (speedup {speedup:.1}x)", args.out);

    if args.check {
        let mut failures = Vec::new();
        if cold.errors + hot.errors > 0 {
            failures.push(format!("{} request errors", cold.errors + hot.errors));
        }
        if hot.p99_ms > args.p99_ms {
            failures.push(format!(
                "cache-hot p99 {:.1} ms exceeds the {:.1} ms gate",
                hot.p99_ms, args.p99_ms
            ));
        }
        // Open-loop throughput is pinned to the offered rate, so the
        // hot/cold speedup gate only applies to the closed-loop mode.
        if !open_loop && speedup < 10.0 {
            failures.push(format!("cache-hot speedup {speedup:.1}x is below 10x"));
        }
        if drain == Some(false) {
            failures.push("daemon did not drain cleanly".to_owned());
        }
        if !failures.is_empty() {
            eprintln!("loadgen --check FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        eprintln!("loadgen --check passed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_arrivals_are_a_metronome() {
        let gaps = arrival_gaps(5, 50.0, ArrivalMode::Fixed, 7);
        assert_eq!(gaps.len(), 5);
        for gap in gaps {
            assert_eq!(gap, Duration::from_millis(20));
        }
    }

    #[test]
    fn poisson_arrivals_are_seeded_and_mean_one_over_rps() {
        let a = arrival_gaps(10_000, 200.0, ArrivalMode::Poisson, 42);
        let b = arrival_gaps(10_000, 200.0, ArrivalMode::Poisson, 42);
        assert_eq!(a, b, "same seed, same schedule");
        let c = arrival_gaps(10_000, 200.0, ArrivalMode::Poisson, 43);
        assert_ne!(a, c, "different seed, different schedule");
        let mean_s: f64 = a.iter().map(Duration::as_secs_f64).sum::<f64>() / a.len() as f64;
        // Exponential with rate 200 → mean 5 ms; 10k draws pin it tightly.
        assert!(
            (mean_s - 0.005).abs() < 0.0005,
            "mean gap {mean_s} s is far from 1/rps"
        );
        assert!(a.iter().all(|g| g.as_secs_f64().is_finite()));
    }
}
