//! `loadgen` — closed-loop load generator for the `nvpg-serve` daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT | --spawn] [--requests N] [--concurrency C]
//!         [--p99-ms MS] [--check] [--out BENCH_PR5.json]
//! ```
//!
//! Runs a two-phase figure workload against a live daemon:
//!
//! 1. **cache-cold** — each figure id requested once; every request is a
//!    miss and pays a real solve;
//! 2. **cache-hot** — `--requests` requests round-robin over the same
//!    ids from `--concurrency` closed-loop connections; every request is
//!    a content-addressed cache hit.
//!
//! Per-phase it records throughput and a latency histogram
//! (p50/p90/p99), writing the comparison to `--out`. With `--check` it
//! acts as a CI gate: non-zero exit if any request failed or the
//! cache-hot p99 exceeds `--p99-ms`.
//!
//! With `--spawn` it launches the sibling `nvpg-serve` binary on a free
//! port, runs the workload, then terminates it with SIGTERM and verifies
//! a clean drain (exit status 0). No HTTP library, no signal crate: raw
//! `TcpStream`s and `/bin/kill`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The figure workload: one heavy transient figure (the cold phase pays
/// a real solve) plus two cheap model sweeps (so the hot phase exercises
/// several cache keys, not one).
const FIGURE_IDS: [&str; 3] = ["fig6a", "fig7a", "fig8a"];

struct Args {
    addr: Option<String>,
    spawn: bool,
    requests: usize,
    concurrency: usize,
    p99_ms: f64,
    check: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --spawn] [--requests N] [--concurrency C] \
         [--p99-ms MS] [--check] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: None,
        spawn: false,
        requests: 200,
        concurrency: 4,
        p99_ms: 250.0,
        check: false,
        out: "BENCH_PR5.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => out.addr = Some(value()),
            "--spawn" => out.spawn = true,
            "--requests" => out.requests = value().parse().unwrap_or_else(|_| usage()),
            "--concurrency" => out.concurrency = value().parse().unwrap_or_else(|_| usage()),
            "--p99-ms" => out.p99_ms = value().parse().unwrap_or_else(|_| usage()),
            "--check" => out.check = true,
            "--out" => out.out = value(),
            _ => usage(),
        }
    }
    if out.addr.is_none() && !out.spawn {
        eprintln!("loadgen: need --addr or --spawn");
        usage();
    }
    out
}

/// One GET on a fresh connection; returns (status, body length, latency).
fn get(addr: &str, path: &str) -> Result<(u16, usize, Duration), String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: l\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", line.trim_end()))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let h = line.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| "bad length".to_owned())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((status, body.len(), t0.elapsed()))
}

/// Latency summary of one phase.
struct Phase {
    requests: usize,
    errors: usize,
    elapsed: Duration,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

impl Phase {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn json(&self, label: &str) -> String {
        format!(
            "\"{label}\": {{\"requests\": {}, \"errors\": {}, \"wall_clock_s\": {:.6}, \
             \"throughput_rps\": {:.3}, \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}}}}",
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.p50_ms,
            self.p90_ms,
            self.p99_ms
        )
    }
}

fn summarize(mut latencies: Vec<Duration>, errors: usize, elapsed: Duration) -> Phase {
    latencies.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx].as_secs_f64() * 1e3
    };
    Phase {
        requests: latencies.len() + errors,
        errors,
        elapsed,
        p50_ms: pct(0.50),
        p90_ms: pct(0.90),
        p99_ms: pct(0.99),
    }
}

/// Cache-cold phase: every figure once, sequentially (each is a solve).
fn run_cold(addr: &str) -> Phase {
    let t0 = Instant::now();
    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for id in FIGURE_IDS {
        match get(addr, &format!("/figures/{id}?format=csv")) {
            Ok((200, _, dt)) => latencies.push(dt),
            Ok((status, ..)) => {
                eprintln!("loadgen: cold {id} -> {status}");
                errors += 1;
            }
            Err(e) => {
                eprintln!("loadgen: cold {id}: {e}");
                errors += 1;
            }
        }
    }
    summarize(latencies, errors, t0.elapsed())
}

/// Cache-hot phase: `requests` round-robin requests over the same
/// figures from `concurrency` closed-loop worker threads.
fn run_hot(addr: &str, requests: usize, concurrency: usize) -> Phase {
    let t0 = Instant::now();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<(Vec<Duration>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency.max(1))
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= requests {
                            break;
                        }
                        let id = FIGURE_IDS[i % FIGURE_IDS.len()];
                        match get(addr, &format!("/figures/{id}?format=csv")) {
                            Ok((200, _, dt)) => latencies.push(dt),
                            Ok((status, ..)) => {
                                eprintln!("loadgen: hot {id} -> {status}");
                                errors += 1;
                            }
                            Err(e) => {
                                eprintln!("loadgen: hot {id}: {e}");
                                errors += 1;
                            }
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker"))
            .collect()
    });
    let mut latencies = Vec::new();
    let mut errors = 0usize;
    for (l, e) in results {
        latencies.extend(l);
        errors += e;
    }
    summarize(latencies, errors, t0.elapsed())
}

/// Spawns the sibling `nvpg-serve` binary on a free port and returns the
/// child plus the parsed listen address.
fn spawn_daemon() -> Result<(Child, String), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let daemon = exe.parent().ok_or("no parent dir")?.join("nvpg-serve");
    if !daemon.exists() {
        return Err(format!(
            "{} not found (build it: cargo build -p nvpg-serve)",
            daemon.display()
        ));
    }
    let mut child = Command::new(&daemon)
        .args(["--listen", "127.0.0.1:0", "--jobs", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", daemon.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    // "nvpg-serve listening on 127.0.0.1:PORT (...)"
    let addr = line
        .split_whitespace()
        .find(|tok| tok.contains(':') && tok.starts_with("127."))
        .ok_or_else(|| format!("could not parse listen address from `{}`", line.trim_end()))?
        .to_owned();
    // Keep draining the pipe so the daemon never blocks on stdout.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    Ok((child, addr))
}

/// SIGTERMs the daemon and verifies a clean drain (exit status 0).
fn stop_daemon(mut child: Child) -> Result<(), String> {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map_err(|e| format!("kill: {e}"))?;
    if !status.success() {
        let _ = child.kill();
        return Err("kill -TERM failed".to_owned());
    }
    let t0 = Instant::now();
    loop {
        match child.try_wait().map_err(|e| e.to_string())? {
            Some(status) if status.success() => return Ok(()),
            Some(status) => return Err(format!("daemon exited uncleanly: {status}")),
            None if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                return Err("daemon did not drain within 30 s of SIGTERM".to_owned());
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn main() {
    let args = parse_args();
    let (daemon, addr) = if args.spawn {
        match spawn_daemon() {
            Ok((child, addr)) => (Some(child), addr),
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        }
    } else {
        (None, args.addr.clone().expect("checked in parse_args"))
    };

    // Liveness first: a dead daemon should fail fast, not time out.
    if let Err(e) = get(&addr, "/healthz") {
        eprintln!("loadgen: daemon not healthy at {addr}: {e}");
        std::process::exit(1);
    }

    eprintln!("loadgen: cache-cold pass over {:?}", FIGURE_IDS);
    let cold = run_cold(&addr);
    eprintln!(
        "loadgen: cold {} req in {:.2} s ({:.2} rps), p99 {:.1} ms",
        cold.requests,
        cold.elapsed.as_secs_f64(),
        cold.rps(),
        cold.p99_ms
    );
    eprintln!(
        "loadgen: cache-hot pass, {} requests x{} connections",
        args.requests, args.concurrency
    );
    let hot = run_hot(&addr, args.requests, args.concurrency);
    eprintln!(
        "loadgen: hot {} req in {:.2} s ({:.2} rps), p99 {:.1} ms",
        hot.requests,
        hot.elapsed.as_secs_f64(),
        hot.rps(),
        hot.p99_ms
    );

    let drain = match daemon {
        Some(child) => match stop_daemon(child) {
            Ok(()) => {
                eprintln!("loadgen: daemon drained cleanly on SIGTERM");
                Some(true)
            }
            Err(e) => {
                eprintln!("loadgen: {e}");
                Some(false)
            }
        },
        None => None,
    };

    let speedup = hot.rps() / cold.rps().max(1e-9);
    let json = format!(
        "{{\n  \"generated_by\": \"loadgen\",\n  \"workload\": {:?},\n  {},\n  {},\n  \
         \"cache_hot_speedup\": {:.3},\n  \"clean_drain\": {},\n  \"notes\": \"cold pass pays one \
         solve per figure (plus the one-off Table I characterisation on the first request); hot \
         pass is served from the content-addressed cache without touching the solver.\"\n}}\n",
        FIGURE_IDS.as_slice(),
        cold.json("cache_cold"),
        hot.json("cache_hot"),
        speedup,
        match drain {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        }
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("loadgen: write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("loadgen: wrote {} (speedup {speedup:.1}x)", args.out);

    if args.check {
        let mut failures = Vec::new();
        if cold.errors + hot.errors > 0 {
            failures.push(format!("{} request errors", cold.errors + hot.errors));
        }
        if hot.p99_ms > args.p99_ms {
            failures.push(format!(
                "cache-hot p99 {:.1} ms exceeds the {:.1} ms gate",
                hot.p99_ms, args.p99_ms
            ));
        }
        if speedup < 10.0 {
            failures.push(format!("cache-hot speedup {speedup:.1}x is below 10x"));
        }
        if drain == Some(false) {
            failures.push("daemon did not drain cleanly".to_owned());
        }
        if !failures.is_empty() {
            eprintln!("loadgen --check FAILED: {}", failures.join("; "));
            std::process::exit(1);
        }
        eprintln!("loadgen --check passed");
    }
}
