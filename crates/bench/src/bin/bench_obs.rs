//! Observability self-benchmark: overhead gate + trace validation.
//!
//! ```text
//! bench_obs [--out FILE] [--check] [--validate FILE] [--runs N]
//! ```
//!
//! The default mode measures the representative 100 ns NV-SRAM transient
//! with tracing **off** and **on** (min-of-N wall clock each), counts the
//! spans and counters the traced pass produced, round-trips the trace
//! through the JSONL schema validator, and writes `BENCH_OBS.json` (or
//! `FILE`).
//!
//! `--check` is the CI gate: it exits nonzero when
//!
//! * the traced minimum exceeds the untraced minimum by more than the
//!   overhead budget (2 % + a small absolute slack that absorbs timer
//!   noise on single-core CI runners — min-of-N keeps the comparison
//!   honest), or
//! * the traced run produced no spans / counters, or
//! * the emitted JSONL fails schema validation.
//!
//! `--validate FILE` validates an existing JSONL trace (e.g. the one the
//! figures binary wrote) and prints its span/counter/gauge counts.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nvpg_cells::cell::{build_cell, CellKind, MtjConfig};
use nvpg_cells::design::CellDesign;
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::Circuit;
use nvpg_obs::schema::validate_jsonl;

/// Relative overhead budget for the tracing layer (the ISSUE bar).
const OVERHEAD_REL: f64 = 0.02;
/// Absolute slack absorbing scheduler/timer noise on small CI runners;
/// the workload below runs long enough that the relative term dominates
/// on a quiet host.
const OVERHEAD_ABS_S: f64 = 0.010;

/// One sample of the workload: three 100 ns NV-SRAM transients, each
/// with its own DC solve — enough span/counter traffic to make a real
/// overhead measurable, long enough that 2 % is above timer noise.
fn workload() -> Result<(), Box<dyn Error>> {
    let design = CellDesign::table1();
    for _ in 0..3 {
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, &design, CellKind::NvSram, MtjConfig::stored(true))?;
        let dc_opts = DcOptions::default()
            .with_nodeset(nodes.q, 0.9)
            .with_nodeset(nodes.qb, 0.0)
            .with_nodeset(nodes.vvdd, 0.9)
            .with_nodeset(nodes.bl, 0.9)
            .with_nodeset(nodes.blb, 0.9);
        let op = operating_point(&mut ckt, &dc_opts)?;
        let topts = TransientOptions {
            t_stop: 100e-9,
            dt_max: 2e-9,
            dt_init: 1e-12,
            device_bypass_tol: 1e-6,
            ..TransientOptions::default()
        };
        transient(&mut ckt, &topts, &op)?;
    }
    Ok(())
}

/// Minimum wall-clock over `runs` samples of the workload.
fn min_wall(runs: usize) -> Result<f64, Box<dyn Error>> {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        workload()?;
        best = best.min(t0.elapsed().as_secs_f64());
    }
    Ok(best)
}

struct Measurement {
    untraced_s: f64,
    traced_s: f64,
    spans: usize,
    jsonl: String,
}

impl Measurement {
    fn overhead_rel(&self) -> f64 {
        (self.traced_s - self.untraced_s) / self.untraced_s
    }

    fn within_budget(&self) -> bool {
        self.traced_s <= self.untraced_s * (1.0 + OVERHEAD_REL) + OVERHEAD_ABS_S
    }
}

fn measure(runs: usize) -> Result<Measurement, Box<dyn Error>> {
    // Warm-up excludes one-time costs (page faults, lazy statics) from
    // both sides of the comparison.
    workload()?;

    nvpg_obs::disable();
    let untraced_s = min_wall(runs)?;

    nvpg_obs::enable();
    nvpg_obs::metrics::reset();
    nvpg_obs::drain_events();
    let traced_s = min_wall(runs)?;
    nvpg_obs::disable();
    let events = nvpg_obs::drain_events();
    let metrics = nvpg_obs::metrics::snapshot();
    let jsonl = nvpg_obs::to_jsonl(&events, &metrics);

    Ok(Measurement {
        untraced_s,
        traced_s,
        spans: events.len(),
        jsonl,
    })
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_OBS.json");
    let mut check_only = false;
    let mut validate_path: Option<String> = None;
    let mut runs: usize = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--check" => check_only = true,
            "--validate" => {
                validate_path = Some(args.next().ok_or("--validate requires a file path")?);
            }
            "--runs" => {
                runs = args
                    .next()
                    .ok_or("--runs requires a count")?
                    .parse()
                    .map_err(|_| "--runs requires an integer")?;
                if runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
            }
            "--help" | "-h" => {
                println!("usage: bench_obs [--out FILE] [--check] [--validate FILE] [--runs N]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    if let Some(path) = validate_path {
        let text = std::fs::read_to_string(&path)?;
        let summary = validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "{path}: OK ({} span(s), {} counter(s), {} gauge(s))",
            summary.spans, summary.counters, summary.gauges
        );
        return Ok(());
    }

    eprintln!("measuring tracing overhead (min of {runs}, 3 transients per sample)...");
    let m = measure(runs)?;
    let summary = validate_jsonl(&m.jsonl).map_err(|e| format!("emitted trace invalid: {e}"))?;
    eprintln!(
        "  untraced {:.1} ms, traced {:.1} ms ({:+.2} %), {} span(s), {} counter(s)",
        m.untraced_s * 1e3,
        m.traced_s * 1e3,
        m.overhead_rel() * 1e2,
        m.spans,
        summary.counters,
    );

    if check_only {
        let mut failures = Vec::new();
        if !m.within_budget() {
            failures.push(format!(
                "tracing overhead {:.2} % exceeds {:.0} % (+{:.0} ms slack): \
                 untraced {:.3} ms vs traced {:.3} ms",
                m.overhead_rel() * 1e2,
                OVERHEAD_REL * 1e2,
                OVERHEAD_ABS_S * 1e3,
                m.untraced_s * 1e3,
                m.traced_s * 1e3,
            ));
        }
        if m.spans == 0 {
            failures.push("traced run recorded no spans".into());
        }
        if summary.counters == 0 {
            failures.push("traced run recorded no counters".into());
        }
        if failures.is_empty() {
            eprintln!("check OK");
            return Ok(());
        }
        return Err(format!("observability check failed:\n  {}", failures.join("\n  ")).into());
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_obs\",");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"workload\": \"3x nvsram_transient_100ns\",");
    let _ = writeln!(json, "  \"untraced_min_s\": {:.6},", m.untraced_s);
    let _ = writeln!(json, "  \"traced_min_s\": {:.6},", m.traced_s);
    let _ = writeln!(json, "  \"overhead_rel\": {:.4},", m.overhead_rel());
    let _ = writeln!(json, "  \"overhead_budget_rel\": {OVERHEAD_REL},");
    let _ = writeln!(json, "  \"overhead_budget_abs_s\": {OVERHEAD_ABS_S},");
    let _ = writeln!(json, "  \"within_budget\": {},", m.within_budget());
    let _ = writeln!(json, "  \"trace\": {{");
    let _ = writeln!(json, "    \"spans\": {},", summary.spans);
    let _ = writeln!(json, "    \"counters\": {},", summary.counters);
    let _ = writeln!(json, "    \"gauges\": {},", summary.gauges);
    let _ = writeln!(json, "    \"schema_valid\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"min-of-N wall clock; overhead is (traced-untraced)/untraced. \
         Counters and span structure are deterministic, the seconds are not.\""
    );
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    eprintln!("wrote {out}");
    Ok(())
}
