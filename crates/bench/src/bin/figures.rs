//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [IDS...] [--only ID] [--jobs N] [--csv DIR] [--svg DIR]
//!         [--report FILE] [--full] [--strict]
//!         [--solver auto|dense|sparse]
//!         [--batch auto|serial|N]
//!         [--fault-rate R] [--fault-seed S]
//!         [--trace] [--profile] [--trace-dir DIR]
//! ```
//!
//! With no ids, all figures are produced in paper order. Ids can be given
//! positionally or via repeatable `--only` flags (comma lists accepted).
//! `--jobs N` sets the worker-pool width for both the figure fan-out and
//! the per-figure sweeps (default: available parallelism; `1` forces a
//! serial run). Output is byte-identical for every `--jobs` value:
//! figures run concurrently but print in paper order.
//!
//! `--solver` picks the linear-solver backend for every analysis in the
//! run: `auto` (default) stays dense for cell-sized systems and goes
//! sparse above the unknown-count threshold; `dense`/`sparse` force one
//! backend everywhere. The choice is installed once at startup and is a
//! process-wide default, so output stays byte-identical at any `--jobs`.
//!
//! `--batch` sets the process-default batch mode consulted by the
//! batched sweep drivers (`BatchMode::Auto`): `auto` (default) solves
//! same-topology point sets as 64-lane lock-step stacks sharing one
//! symbolic analysis, `serial` restores one solver per point, `N`
//! forces the lane width. Results are identical in every mode — the
//! flag trades wall-clock, not answers.
//!
//! The run is **fail-soft by default**: a figure whose simulation fails
//! (or panics) becomes a gap, the remaining figures still render, and a
//! failures appendix naming every broken figure is printed at the end
//! (exit code stays 0 so partial artefacts survive CI). `--strict`
//! restores the old abort-on-first-failure behaviour with a nonzero exit.
//!
//! `--fault-rate R` (with optional `--fault-seed S`) injects
//! deterministic solver faults into that fraction of Newton solves —
//! exercising the rescue ladder and the failure reporting end-to-end.
//!
//! `--csv` additionally writes one CSV per figure into `DIR`; `--full`
//! prints every data point instead of a downsampled table. Per-figure
//! wall-clock timings go to stderr.
//!
//! `--trace` records hierarchical spans (experiment → sequence → phase →
//! solve) and solver counters, writing `trace.jsonl` and `manifest.json`
//! into the trace directory (`--trace-dir DIR`, default `trace/`).
//! `--profile` additionally prints a per-span self-time table to stderr
//! and writes `profile.folded` (collapsed stacks). Both are off by
//! default and leave `stdout` byte-identical; all observability output
//! goes to stderr or the trace directory.
//!
//! Figure ids: `table1 fig3a fig3b fig3c fig4 fig6a fig6b fig6c fig7a
//! fig7b fig7c fig8a fig8b fig9a fig9b ext_policy ext_wer ext_breakdown
//! ext_thermal`.

use std::collections::BTreeSet;
use std::error::Error;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use nvpg_bench::obs_cli::{self, ObsOptions};
use nvpg_bench::report::generate_report;
use nvpg_bench::svg::render_svg;
use nvpg_bench::{render_text, summarize, to_csv};
use nvpg_cells::design::CellDesign;
use nvpg_circuit::fault::{with_fault_plan, FaultKind, FaultPlan};
use nvpg_circuit::{CircuitError, RescueStats, SolverChoice};
use nvpg_core::{
    Experiments, PointStatus, RunReport, BET_FIGURE_IDS, EXTENSION_IDS, FIGURE_IDS,
    MACRO_FIGURE_IDS,
};
use nvpg_exec::{Budget, Settled};

/// One rendered figure, ready to print/write in canonical order.
struct Rendered {
    id: String,
    stdout: String,
    csv: Option<(PathBuf, String)>,
    svg: Option<(PathBuf, String)>,
    elapsed: Duration,
}

fn main() -> Result<(), Box<dyn Error>> {
    let t_start = Instant::now();
    let mut ids: BTreeSet<String> = BTreeSet::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut full = false;
    let mut strict = false;
    let mut with_macro = false;
    let mut jobs: usize = 0;
    let mut fault_rate: f64 = 0.0;
    let mut fault_seed: u64 = 0xFA17;
    let mut obs = ObsOptions::default();
    let mut trace_dir = PathBuf::from("trace");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    args.next().ok_or("--csv requires a directory")?,
                ));
            }
            "--svg" => {
                svg_dir = Some(PathBuf::from(
                    args.next().ok_or("--svg requires a directory")?,
                ));
            }
            "--report" => {
                report_path = Some(PathBuf::from(
                    args.next().ok_or("--report requires a file path")?,
                ));
            }
            "--only" => {
                let list = args.next().ok_or("--only requires a figure id")?;
                for id in list.split(',').filter(|s| !s.is_empty()) {
                    ids.insert(id.to_owned());
                }
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .ok_or("--jobs requires a worker count")?
                    .parse()
                    .map_err(|_| "--jobs requires an integer")?;
            }
            "--solver" => {
                let s = args
                    .next()
                    .ok_or("--solver requires auto, dense, or sparse")?;
                let choice: SolverChoice = s.parse().map_err(|e| format!("{e}"))?;
                nvpg_circuit::set_default_solver(choice);
            }
            "--batch" => {
                let s = args
                    .next()
                    .ok_or("--batch requires auto, serial, or a lane count")?;
                let mode: nvpg_circuit::BatchMode = s.parse().map_err(|e| format!("{e}"))?;
                nvpg_circuit::set_default_batch(mode);
            }
            "--full" => full = true,
            "--macro" => with_macro = true,
            "--strict" => strict = true,
            "--trace" => obs.trace = true,
            "--profile" => obs.profile = true,
            "--trace-dir" => {
                trace_dir = PathBuf::from(args.next().ok_or("--trace-dir requires a directory")?);
            }
            "--fault-rate" => {
                fault_rate = args
                    .next()
                    .ok_or("--fault-rate requires a probability")?
                    .parse()
                    .map_err(|_| "--fault-rate requires a number in [0, 1]")?;
                if !(0.0..=1.0).contains(&fault_rate) {
                    return Err("--fault-rate must be in [0, 1]".into());
                }
            }
            "--fault-seed" => {
                fault_seed = args
                    .next()
                    .ok_or("--fault-seed requires an integer")?
                    .parse()
                    .map_err(|_| "--fault-seed requires an integer")?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [IDS...] [--only ID] [--jobs N] [--csv DIR] [--svg DIR] \
                     [--report FILE] [--full] [--macro] [--strict] \
                     [--solver auto|dense|sparse] \
                     [--batch auto|serial|N] [--fault-rate R] [--fault-seed S] \
                     [--trace] [--profile] [--trace-dir DIR]"
                );
                println!(
                    "ids: {} {} {} (--macro adds: {})",
                    FIGURE_IDS.join(" "),
                    BET_FIGURE_IDS.join(" "),
                    EXTENSION_IDS.join(" "),
                    MACRO_FIGURE_IDS.join(" ")
                );
                return Ok(());
            }
            other => {
                ids.insert(other.to_owned());
            }
        }
    }
    if jobs > 0 {
        nvpg_exec::set_default_jobs(jobs);
    }
    obs.install();
    let all_ids: Vec<&str> = FIGURE_IDS
        .iter()
        .chain(BET_FIGURE_IDS.iter())
        .chain(EXTENSION_IDS.iter())
        .chain(MACRO_FIGURE_IDS.iter())
        .copied()
        .collect();
    for id in &ids {
        if !all_ids.contains(&id.as_str()) {
            return Err(format!("unknown figure id: {id}").into());
        }
    }
    // A bare `figures` run reproduces the paper set plus the committed
    // extensions; the macro figures solve generated macro netlists, so
    // they join only under `--macro` (or when named explicitly).
    let run_all = ids.is_empty();
    let want = move |id: &str| {
        ids.contains(id) || (run_all && (with_macro || !MACRO_FIGURE_IDS.contains(&id)))
    };
    let max_rows = if full { usize::MAX } else { 12 };

    eprintln!("characterising the Table I design point (cell-level SPICE runs)...");
    let exp = Experiments::new(CellDesign::table1())?;
    let ch = exp.characterization();
    eprintln!(
        "  store_ok = {}, restore_ok = {}, E_store = {:.1} fJ, E_restore = {:.1} fJ",
        ch.store_ok,
        ch.restore_ok,
        ch.e_store * 1e15,
        ch.e_restore * 1e15
    );

    if want("table1") {
        println!("== table1 — device and circuit parameters (live model echo)");
        for (k, v) in exp.table1_rows() {
            println!("   {k:<44} {v}");
        }
        println!();
    }

    // Fan the selected plot figures out over the worker pool; each worker
    // renders everything to strings so the figures can be printed and
    // written in paper order regardless of completion order. Each figure
    // settles independently: a failure (or a panic) becomes a gap plus a
    // run-report entry instead of aborting the whole regeneration.
    let selected: Vec<&str> = all_ids
        .iter()
        .copied()
        .filter(|&id| id != "table1" && want(id))
        .collect();
    let fault_plan =
        (fault_rate > 0.0).then(|| FaultPlan::random(fault_seed, fault_rate, &FaultKind::ALL));
    if let Some(plan) = &fault_plan {
        eprintln!("fault injection active: {plan:?}");
    }
    let settled: Vec<Settled<Rendered, CircuitError>> =
        nvpg_exec::par_map_settled(jobs, &selected, Budget::unlimited(), |i, &id| {
            let t0 = Instant::now();
            let render = || exp.figure_by_id(id).expect("id validated above");
            let fig = match &fault_plan {
                // Key the schedule to the figure, not the thread, so a
                // given seed breaks the same figures at any --jobs.
                Some(plan) => with_fault_plan(&plan.for_point(i as u64), render),
                None => render(),
            }?;
            let mut stdout = String::new();
            stdout.push_str(&render_text(&fig, max_rows));
            stdout.push('\n');
            stdout.push_str(&summarize(&fig));
            stdout.push('\n');
            let csv = csv_dir
                .as_ref()
                .map(|dir| (dir.join(format!("{}.csv", fig.id)), to_csv(&fig)));
            let svg = svg_dir
                .as_ref()
                .map(|dir| (dir.join(format!("{}.svg", fig.id)), render_svg(&fig)));
            Ok(Rendered {
                id: id.to_owned(),
                stdout,
                csv,
                svg,
                elapsed: t0.elapsed(),
            })
        });

    let mut run_report = RunReport::new();
    let mut rendered: Vec<Rendered> = Vec::new();
    for (&id, s) in selected.iter().zip(settled) {
        match s {
            Settled::Ok(r) => {
                run_report.push(id, "figure", PointStatus::Ok, RescueStats::default());
                rendered.push(r);
            }
            Settled::Err(e) => run_report.push(
                id,
                "figure",
                PointStatus::Failed {
                    taxonomy: e.taxonomy().to_owned(),
                    message: e.to_string(),
                },
                RescueStats::default(),
            ),
            Settled::Panicked(msg) => run_report.push(
                id,
                "figure",
                PointStatus::Failed {
                    taxonomy: "panic".to_owned(),
                    message: msg,
                },
                RescueStats::default(),
            ),
            Settled::Skipped => {
                run_report.push(id, "figure", PointStatus::Skipped, RescueStats::default());
            }
        }
    }

    for r in &rendered {
        print!("{}", r.stdout);
        if let Some((path, csv)) = &r.csv {
            std::fs::create_dir_all(path.parent().expect("csv dir"))?;
            std::fs::write(path, csv)?;
            eprintln!("  wrote {}", path.display());
        }
        if let Some((path, svg)) = &r.svg {
            std::fs::create_dir_all(path.parent().expect("svg dir"))?;
            std::fs::write(path, svg)?;
            eprintln!("  wrote {}", path.display());
        }
    }

    if !run_report.all_ok() {
        if obs.active() {
            // Failing traced runs carry the counter totals in the report.
            run_report.attach_metrics();
        }
        println!("{}", run_report.render());
        if strict {
            return Err(format!(
                "{} of {} figure(s) failed (run without --strict to keep partial output)",
                run_report.failed() + run_report.skipped(),
                run_report.records.len()
            )
            .into());
        }
    }

    if let Some(path) = &report_path {
        eprintln!("generating the live measurement report...");
        std::fs::write(path, generate_report(&exp)?)?;
        eprintln!("  wrote {}", path.display());
    }

    for r in &rendered {
        eprintln!("  {:<14} {:>9.1} ms", r.id, r.elapsed.as_secs_f64() * 1e3);
    }
    eprintln!(
        "total: {:.1} ms across {} figure(s) (jobs = {})",
        t_start.elapsed().as_secs_f64() * 1e3,
        rendered.len(),
        if jobs == 0 {
            nvpg_exec::default_jobs()
        } else {
            jobs
        }
    );
    obs_cli::finish(&obs, &trace_dir, "figures", env!("CARGO_PKG_VERSION"))?;
    Ok(())
}
