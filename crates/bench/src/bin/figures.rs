//! Regenerates every table and figure of the paper.
//!
//! ```text
//! figures [IDS...] [--csv DIR] [--full]
//! ```
//!
//! With no arguments, all figures are produced in paper order. `--csv`
//! additionally writes one CSV per figure into `DIR`; `--full` prints
//! every data point instead of a downsampled table.
//!
//! Figure ids: `table1 fig3a fig3b fig3c fig4 fig6a fig6b fig6c fig7a
//! fig7b fig7c fig8a fig8b fig9a fig9b`.

use std::collections::BTreeSet;
use std::error::Error;
use std::path::PathBuf;

use nvpg_bench::report::generate_report;
use nvpg_bench::svg::render_svg;
use nvpg_bench::{render_text, summarize, to_csv};
use nvpg_cells::design::CellDesign;
use nvpg_core::{Experiments, Figure, BET_FIGURE_IDS, EXTENSION_IDS, FIGURE_IDS};

fn main() -> Result<(), Box<dyn Error>> {
    let mut ids: BTreeSet<String> = BTreeSet::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut full = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => {
                csv_dir = Some(PathBuf::from(
                    args.next().ok_or("--csv requires a directory")?,
                ));
            }
            "--svg" => {
                svg_dir = Some(PathBuf::from(
                    args.next().ok_or("--svg requires a directory")?,
                ));
            }
            "--report" => {
                report_path = Some(PathBuf::from(
                    args.next().ok_or("--report requires a file path")?,
                ));
            }
            "--full" => full = true,
            "--help" | "-h" => {
                println!(
                    "usage: figures [IDS...] [--csv DIR] [--svg DIR] [--report FILE] [--full]"
                );
                println!(
                    "ids: {} {} {}",
                    FIGURE_IDS.join(" "),
                    BET_FIGURE_IDS.join(" "),
                    EXTENSION_IDS.join(" ")
                );
                return Ok(());
            }
            other => {
                ids.insert(other.to_owned());
            }
        }
    }
    let run_all = ids.is_empty();
    let want = |id: &str| run_all || ids.contains(id);
    let max_rows = if full { usize::MAX } else { 12 };

    eprintln!("characterising the Table I design point (cell-level SPICE runs)...");
    let exp = Experiments::new(CellDesign::table1())?;
    let ch = exp.characterization();
    eprintln!(
        "  store_ok = {}, restore_ok = {}, E_store = {:.1} fJ, E_restore = {:.1} fJ",
        ch.store_ok,
        ch.restore_ok,
        ch.e_store * 1e15,
        ch.e_restore * 1e15
    );

    let emit = |fig: &Figure| -> Result<(), Box<dyn Error>> {
        println!("{}", render_text(fig, max_rows));
        println!("{}", summarize(fig));
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{}.csv", fig.id));
            std::fs::write(&path, to_csv(fig))?;
            eprintln!("  wrote {}", path.display());
        }
        if let Some(dir) = &svg_dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(format!("{}.svg", fig.id));
            std::fs::write(&path, render_svg(fig))?;
            eprintln!("  wrote {}", path.display());
        }
        Ok(())
    };

    if want("table1") {
        println!("== table1 — device and circuit parameters (live model echo)");
        for (k, v) in exp.table1_rows() {
            println!("   {k:<44} {v}");
        }
        println!();
    }
    if want("fig3a") {
        emit(&exp.fig3a()?)?;
    }
    if want("fig3b") {
        emit(&exp.fig3b()?)?;
    }
    if want("fig3c") {
        emit(&exp.fig3c()?)?;
    }
    if want("fig4") {
        emit(&exp.fig4()?)?;
    }
    if want("fig6a") {
        emit(&exp.fig6a()?)?;
    }
    if want("fig6b") {
        emit(&exp.fig6b()?)?;
    }
    if want("fig6c") {
        emit(&exp.fig6c()?)?;
    }
    if want("fig7a") {
        emit(&exp.fig7a())?;
    }
    if want("fig7b") {
        emit(&exp.fig7b())?;
    }
    if want("fig7c") {
        emit(&exp.fig7c())?;
    }
    if want("fig8a") {
        emit(&exp.fig8a())?;
    }
    if want("fig8b") {
        emit(&exp.fig8b())?;
    }
    if want("fig9a") {
        emit(&exp.fig9a())?;
    }
    if want("ext_policy") {
        emit(&exp.ext_policy())?;
    }
    if want("ext_wer") {
        emit(&exp.ext_wer())?;
    }
    if want("ext_breakdown") {
        emit(&exp.ext_breakdown())?;
    }
    if want("ext_thermal") {
        eprintln!("temperature sweep (re-characterises per point)...");
        emit(&exp.ext_thermal()?)?;
    }
    if want("fig9b") {
        eprintln!("characterising the Fig. 9(b) design point (1 GHz, low J_C)...");
        emit(&Experiments::fig9b()?)?;
    }
    if let Some(path) = &report_path {
        eprintln!("generating the live measurement report...");
        std::fs::write(path, generate_report(&exp)?)?;
        eprintln!("  wrote {}", path.display());
    }
    Ok(())
}
