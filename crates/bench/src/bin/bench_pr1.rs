//! Machine-readable performance snapshot of the parallel experiment
//! engine and the zero-allocation Newton/LU hot path.
//!
//! ```text
//! bench_pr1 [--out FILE]
//! ```
//!
//! Writes `BENCH_PR1.json` (or `FILE`) containing:
//!
//! * total and per-figure regeneration wall-clock, serial (`jobs = 1`)
//!   vs parallel (`jobs = max(4, available)`);
//! * Newton iteration counts for a representative NV-SRAM cell
//!   transient (the `sim_engine` workload).
//!
//! The comparison set excludes `fig9b` and `ext_thermal`: those go
//! through the process-wide characterisation memo, so whichever pass ran
//! first would subsidise the second and skew the ratio.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nvpg_cells::cell::{build_cell, CellKind, MtjConfig};
use nvpg_cells::design::CellDesign;
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::Circuit;
use nvpg_core::{Experiments, EXTENSION_IDS, FIGURE_IDS};

/// Figure ids timed in both passes (everything deterministic and
/// memo-independent).
fn comparison_ids() -> Vec<&'static str> {
    FIGURE_IDS
        .iter()
        .chain(EXTENSION_IDS.iter())
        .copied()
        .filter(|&id| id != "table1" && id != "ext_thermal")
        .chain(["fig9a"])
        .collect()
}

struct Pass {
    jobs: usize,
    total_s: f64,
    /// Per figure: `(id, wall seconds, CPU seconds)`. CPU time is the
    /// worker thread's on-CPU time ([`nvpg_exec::thread_cpu_time`]);
    /// `None` where the platform doesn't expose it. On an oversubscribed
    /// host the parallel pass inflates wall time with scheduler
    /// contention while CPU time stays put — recording both makes that
    /// anomaly visible instead of looking like a slower solver.
    per_figure: Vec<(String, f64, Option<f64>)>,
}

fn run_pass(exp: &Experiments, ids: &[&str], jobs: usize) -> Pass {
    nvpg_exec::set_default_jobs(jobs);
    let t0 = Instant::now();
    let timed: Vec<(String, f64, Option<f64>)> = nvpg_exec::par_map(jobs, ids, |_, &id| {
        let t = Instant::now();
        let c0 = nvpg_exec::thread_cpu_time();
        exp.figure_by_id(id)
            .expect("known id")
            .expect("figure renders");
        let cpu = nvpg_exec::thread_cpu_time()
            .zip(c0)
            .map(|(c1, c0)| (c1 - c0).as_secs_f64());
        (id.to_owned(), t.elapsed().as_secs_f64(), cpu)
    });
    Pass {
        jobs,
        total_s: t0.elapsed().as_secs_f64(),
        per_figure: timed,
    }
}

fn pass_json(pass: &Pass) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"jobs\": {}, \"total_s\": {:.6}, \"per_figure_s\": {{",
        pass.jobs, pass.total_s
    );
    for (i, (id, secs, _)) in pass.per_figure.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{id}\": {secs:.6}");
    }
    s.push_str("}, \"per_figure_cpu_s\": {");
    for (i, (id, _, cpu)) in pass.per_figure.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match cpu {
            Some(c) => {
                let _ = write!(s, "\"{id}\": {c:.6}");
            }
            None => {
                let _ = write!(s, "\"{id}\": null");
            }
        }
    }
    s.push_str("}}");
    s
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_PR1.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--help" | "-h" => {
                println!("usage: bench_pr1 [--out FILE]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    // Newton telemetry on the sim_engine transient workload: a 100 ns
    // NV-SRAM cell simulation.
    eprintln!("measuring Newton telemetry (100 ns NV-SRAM transient)...");
    let design = CellDesign::table1();
    let mut ckt = Circuit::new();
    let nodes = build_cell(&mut ckt, &design, CellKind::NvSram, MtjConfig::stored(true))?;
    let dc_opts = DcOptions::default()
        .with_nodeset(nodes.q, 0.9)
        .with_nodeset(nodes.qb, 0.0)
        .with_nodeset(nodes.vvdd, 0.9)
        .with_nodeset(nodes.bl, 0.9)
        .with_nodeset(nodes.blb, 0.9);
    let op = operating_point(&mut ckt, &dc_opts)?;
    let topts = TransientOptions {
        t_stop: 100e-9,
        dt_max: 100e-12,
        dt_init: 1e-12,
        ..TransientOptions::default()
    };
    let t0 = Instant::now();
    let result = transient(&mut ckt, &topts, &op)?;
    let transient_s = t0.elapsed().as_secs_f64();
    let steps = result.trace.len().saturating_sub(1);

    eprintln!("characterising the Table I design point...");
    let exp = Experiments::new(CellDesign::table1())?;
    let ids = comparison_ids();
    let host = nvpg_exec::available_parallelism();
    let par_jobs = host.max(4);

    eprintln!("figure pass: serial (jobs = 1)...");
    let serial = run_pass(&exp, &ids, 1);
    eprintln!("  total {:.1} ms", serial.total_s * 1e3);
    eprintln!("figure pass: parallel (jobs = {par_jobs})...");
    let parallel = run_pass(&exp, &ids, par_jobs);
    eprintln!("  total {:.1} ms", parallel.total_s * 1e3);

    let speedup = serial.total_s / parallel.total_s;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_pr1\",");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"newton\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"nvsram_transient_100ns (sim_engine)\","
    );
    let _ = writeln!(json, "    \"iterations\": {},", result.newton_iterations);
    let _ = writeln!(json, "    \"solves\": {},", result.newton_solves);
    let _ = writeln!(json, "    \"accepted_steps\": {steps},");
    let _ = writeln!(
        json,
        "    \"iterations_per_solve\": {:.3},",
        result.newton_iterations as f64 / result.newton_solves.max(1) as f64
    );
    let _ = writeln!(json, "    \"wall_clock_s\": {transient_s:.6}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"figure_regeneration\": {{");
    let _ = writeln!(
        json,
        "    \"comparison_ids\": [{}],",
        ids.iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"serial\": {},", pass_json(&serial));
    let _ = writeln!(json, "    \"parallel\": {},", pass_json(&parallel));
    let _ = writeln!(json, "    \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"Output is byte-identical at every jobs value (order-preserving \
         pool); speedup is bounded by host_parallelism, so a 1-core host measures ~1x. \
         fig9b/ext_thermal are excluded: the characterisation memo would let the first \
         pass subsidise the second.\""
    );
    json.push_str("}\n");

    std::fs::write(&out, &json)?;
    eprintln!("wrote {out} (speedup {speedup:.2}x at {par_jobs} jobs on {host} core(s))");
    Ok(())
}
