//! Machine-readable performance snapshot of the sparse linear-solver
//! backend, the runtime-dispatched SIMD kernels, and the array-scale
//! power-domain generator.
//!
//! ```text
//! bench_pr6 [--out FILE] [--check]
//! ```
//!
//! Writes `BENCH_PR6.json` (or `FILE`) containing:
//!
//! * SIMD kernel throughput (axpy / dot / norm_inf, elements per second)
//!   at the runtime-selected level, plus a scalar re-measurement taken in
//!   a child process with `NVPG_SIMD=scalar` (the level is process-global
//!   by design, so the comparison cannot run in-process);
//! * the dense-vs-sparse crossover: single factor+solve wall times on
//!   MNA-shaped banded systems sized to the 8×8 / 16×16 / 32×32 domain
//!   unknown counts, for dense LU, the sparse first (symbolic + numeric)
//!   factorisation, and the sparse fixed-pattern refactorisation that
//!   Newton actually runs in steady state;
//! * array-scale transients: a full store → shutdown → restore retention
//!   cycle on 16×16, 32×32 and 64×64 NVPG domains through the sparse
//!   backend, with per-phase wall clock, accumulated step telemetry, and
//!   a data-integrity verdict;
//! * an NVPG vs OSR vs NOF architecture cycle at 16×16 (energy and wall
//!   clock), exercising the per-domain gating semantics end to end.
//!
//! `--check` recomputes only the *deterministic* facts (no wall-clock
//! gates): the 8×8 dense and sparse domains agree cell for cell, a 16×16
//! retention cycle through the sparse backend preserves every bit, and
//! the step/solver counters stay inside their committed bounds. It is the
//! CI perf-regression smoke gate for this PR.

use std::error::Error;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use nvpg_cells::design::CellDesign;
use nvpg_cells::domain::{DomainArray, DomainKind};
use nvpg_circuit::{SolverChoice, StepStats, SPARSE_THRESHOLD};
use nvpg_numeric::simd;
use nvpg_numeric::{CscMatrix, DenseMatrix, LuWorkspace, PatternBuilder, SparseLu, SparsePattern};

/// Deterministic counter bounds for `--check`. The counters are exact
/// reproducible integers — identical on every host — so the bounds are
/// tight enough to catch a dead optimisation yet loose enough to survive
/// benign solver tweaks.
struct CheckBounds {
    /// Accepted steps of the full 16×16 store → shutdown → restore cycle
    /// (seven transient phases, dt capped at duration/100 per phase).
    cycle_steps: (u64, u64),
    /// Mean Newton iterations per solve over the same cycle.
    iterations_per_solve: (f64, f64),
}

const BOUNDS: CheckBounds = CheckBounds {
    cycle_steps: (1000, 5000),
    iterations_per_solve: (1.0, 8.0),
};

fn checkerboard(r: usize, c: usize) -> bool {
    (r + c).is_multiple_of(2)
}

// ---------------------------------------------------------------------
// SIMD kernel throughput
// ---------------------------------------------------------------------

/// Elements/second for the three dispatched kernels, measured on 4096-
/// element slices (big enough to amortise dispatch, small enough to stay
/// in L1).
struct KernelRates {
    level: &'static str,
    axpy: f64,
    dot: f64,
    norm_inf: f64,
}

fn measure_kernels() -> KernelRates {
    const N: usize = 4096;
    let x: Vec<f64> = (0..N).map(|i| (i as f64 * 0.7).sin()).collect();
    let z: Vec<f64> = (0..N).map(|i| (i as f64 * 1.3).cos()).collect();
    let mut y = vec![0.0f64; N];

    // Calibrate each kernel to ~100 ms of work.
    let rate = |elapsed: f64, iters: u64| (iters as f64 * N as f64) / elapsed;
    let time_loop = |body: &mut dyn FnMut()| -> f64 {
        // Warm up, then time a fixed iteration count chosen from a probe.
        body();
        let probe = Instant::now();
        for _ in 0..64 {
            body();
        }
        let per_iter = probe.elapsed().as_secs_f64() / 64.0;
        let iters = ((0.1 / per_iter.max(1e-9)) as u64).clamp(64, 2_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            body();
        }
        rate(t0.elapsed().as_secs_f64(), iters)
    };

    let a = black_box(1e-4);
    let axpy = time_loop(&mut || simd::axpy(a, black_box(&x), black_box(&mut y)));
    let dot = time_loop(&mut || {
        black_box(simd::dot(black_box(&x), black_box(&z)));
    });
    let norm_inf = time_loop(&mut || {
        black_box(simd::norm_inf(black_box(&x)));
    });
    KernelRates {
        level: simd::level().name(),
        axpy,
        dot,
        norm_inf,
    }
}

/// Re-measures the kernels in a child process with `NVPG_SIMD=scalar`.
/// The dispatch level is resolved once per process (that is what keeps
/// `figures` byte-identical at any `--jobs`), so the scalar reference
/// point cannot be taken in-process.
fn measure_scalar_in_child() -> Option<KernelRates> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .arg("--kernel-probe")
        .env("NVPG_SIMD", "scalar")
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let mut level = None;
    let mut axpy = None;
    let mut dot = None;
    let mut norm = None;
    for tok in text.split_whitespace() {
        let (key, val) = tok.split_once('=')?;
        match key {
            "level" => level = Some(val.to_owned()),
            "axpy" => axpy = val.parse().ok(),
            "dot" => dot = val.parse().ok(),
            "norm_inf" => norm = val.parse().ok(),
            _ => {}
        }
    }
    if level.as_deref() != Some("scalar") {
        return None;
    }
    Some(KernelRates {
        level: "scalar",
        axpy: axpy?,
        dot: dot?,
        norm_inf: norm?,
    })
}

fn kernel_probe() {
    let k = measure_kernels();
    println!(
        "level={} axpy={:.6e} dot={:.6e} norm_inf={:.6e}",
        k.level, k.axpy, k.dot, k.norm_inf
    );
}

// ---------------------------------------------------------------------
// Dense-vs-sparse crossover on MNA-shaped systems
// ---------------------------------------------------------------------

/// A diagonally dominant banded system with the connectivity profile of a
/// 2-D cell array flattened into MNA order: nearest-neighbour coupling at
/// `±1` plus grid coupling at `±k` with `k ≈ √n`.
fn grid_pattern(n: usize) -> SparsePattern {
    let k = (n as f64).sqrt().ceil() as usize;
    let mut b = PatternBuilder::new(n);
    for i in 0..n {
        b.add(i, i);
        if i + 1 < n {
            b.add(i, i + 1);
            b.add(i + 1, i);
        }
        if i + k < n {
            b.add(i, i + k);
            b.add(i + k, i);
        }
    }
    b.build()
}

fn fill_grid(n: usize, csc: &mut CscMatrix, dense: Option<&mut DenseMatrix>) {
    let k = (n as f64).sqrt().ceil() as usize;
    csc.clear();
    let mut stamps: Vec<(usize, usize, f64)> = Vec::with_capacity(5 * n);
    for i in 0..n {
        stamps.push((i, i, 4.0 + 0.01 * (i as f64 * 0.37).sin()));
        if i + 1 < n {
            stamps.push((i, i + 1, -0.9));
            stamps.push((i + 1, i, -0.9));
        }
        if i + k < n {
            stamps.push((i, i + k, -0.9));
            stamps.push((i + k, i, -0.9));
        }
    }
    for &(r, c, v) in &stamps {
        csc.add(r, c, v);
    }
    if let Some(d) = dense {
        d.clear();
        for &(r, c, v) in &stamps {
            d.add(r, c, v);
        }
    }
}

struct CrossoverPoint {
    array: String,
    unknowns: usize,
    dense_s: f64,
    sparse_first_s: f64,
    sparse_refactor_s: f64,
}

fn crossover_point(array: &str, n: usize) -> Result<CrossoverPoint, Box<dyn Error>> {
    let pattern = grid_pattern(n);
    let mut csc = CscMatrix::from_pattern(&pattern);
    let mut dense = DenseMatrix::zeros(n, n);
    fill_grid(n, &mut csc, Some(&mut dense));
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut x = vec![0.0; n];

    // Dense: factor + solve. One repetition above ~2k unknowns (the
    // O(n³) factor already runs for seconds there), best-of-3 below.
    let reps = if n > 2000 { 1 } else { 3 };
    let mut dense_s = f64::INFINITY;
    for _ in 0..reps {
        let mut ws = LuWorkspace::with_dim(n);
        let t0 = Instant::now();
        ws.factor_from(&dense)?;
        ws.solve_into(&b, &mut x);
        dense_s = dense_s.min(t0.elapsed().as_secs_f64());
    }
    black_box(&x);

    // Sparse first factor (ordering + symbolic + numeric) ...
    let mut lu = SparseLu::new();
    let t0 = Instant::now();
    lu.factor(&csc)?;
    lu.solve_into(&b, &mut x);
    let sparse_first_s = t0.elapsed().as_secs_f64();
    black_box(&x);

    // ... and the fixed-pattern refactorisation Newton runs afterwards.
    let mut sparse_refactor_s = f64::INFINITY;
    for _ in 0..5 {
        fill_grid(n, &mut csc, None);
        let t0 = Instant::now();
        lu.factor(&csc)?;
        lu.solve_into(&b, &mut x);
        sparse_refactor_s = sparse_refactor_s.min(t0.elapsed().as_secs_f64());
    }
    black_box(&x);
    assert!(
        lu.refactorizations() >= 5,
        "crossover refills must take the refactor path"
    );

    Ok(CrossoverPoint {
        array: array.to_owned(),
        unknowns: n,
        dense_s,
        sparse_first_s,
        sparse_refactor_s,
    })
}

// ---------------------------------------------------------------------
// Array-scale retention cycles
// ---------------------------------------------------------------------

struct CycleRun {
    array: String,
    unknowns: usize,
    build_dc_s: f64,
    store_s: f64,
    shutdown_s: f64,
    restore_s: f64,
    energy_j: f64,
    data_survived: bool,
    steps: StepStats,
}

/// One full NVPG retention cycle (store → super-cutoff shutdown →
/// restore) on an `size × size` checkerboard domain via the sparse
/// backend.
fn retention_cycle(size: usize) -> Result<CycleRun, Box<dyn Error>> {
    let design = CellDesign::table1();
    let t0 = Instant::now();
    let mut dom = DomainArray::with_solver(
        design,
        DomainKind::Nvpg,
        size,
        size,
        SolverChoice::Sparse,
        checkerboard,
    )?;
    let build_dc_s = t0.elapsed().as_secs_f64();
    let before = dom.pattern();
    dom.reset_step_stats();

    let t0 = Instant::now();
    let p_store = dom.store()?;
    let store_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let p_shut = dom.shutdown(true)?;
    let shutdown_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let p_rest = dom.restore()?;
    let restore_s = t0.elapsed().as_secs_f64();

    Ok(CycleRun {
        array: format!("{size}x{size}"),
        unknowns: dom.unknown_count(),
        build_dc_s,
        store_s,
        shutdown_s,
        restore_s,
        energy_j: (p_store.energy + p_shut.energy + p_rest.energy).0,
        data_survived: dom.pattern() == before,
        steps: *dom.step_stats(),
    })
}

struct ArchCycle {
    kind: &'static str,
    energy_j: f64,
    wall_s: f64,
}

/// The three architectures' standby round at 16×16: NVPG and NOF run
/// store → shutdown → restore (normal vs super cutoff), OSR runs
/// sleep → hold → wake — per the paper it never powers off.
fn architecture_cycle(kind: DomainKind) -> Result<ArchCycle, Box<dyn Error>> {
    let design = CellDesign::table1();
    let mut dom =
        DomainArray::with_solver(design, kind, 16, 16, SolverChoice::Sparse, checkerboard)?;
    let t0 = Instant::now();
    let (name, energy) = match kind {
        DomainKind::Nvpg => {
            let e = dom.store()?.energy + dom.shutdown(false)?.energy + dom.restore()?.energy;
            ("nvpg", e)
        }
        DomainKind::Nof => {
            let e = dom.store()?.energy + dom.shutdown(true)?.energy + dom.restore()?.energy;
            ("nof", e)
        }
        DomainKind::Osr => {
            let e = dom.sleep()?.energy + dom.hold(10e-9)?.energy + dom.wake()?.energy;
            ("osr", e)
        }
    };
    Ok(ArchCycle {
        kind: name,
        energy_j: energy.0,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------
// --check: deterministic gates
// ---------------------------------------------------------------------

fn check() -> Result<(), Box<dyn Error>> {
    let mut failures = Vec::new();

    // 1. The two backends must agree cell for cell on an 8×8 domain.
    let design = CellDesign::table1();
    let dense = DomainArray::with_solver(
        design,
        DomainKind::Nvpg,
        8,
        8,
        SolverChoice::Dense,
        checkerboard,
    )?;
    let sparse = DomainArray::with_solver(
        design,
        DomainKind::Nvpg,
        8,
        8,
        SolverChoice::Sparse,
        checkerboard,
    )?;
    if dense.pattern() != sparse.pattern() {
        failures.push("8x8 dense and sparse domains disagree on the data pattern".to_owned());
    }
    for r in 0..8 {
        for c in 0..8 {
            if dense.mtj_states(r, c) != sparse.mtj_states(r, c) {
                failures.push(format!("8x8 MTJ state mismatch at ({r}, {c})"));
            }
        }
    }

    // 2. A 16×16 retention cycle through the sparse backend keeps every
    //    bit and its counters stay in bounds.
    let cycle = retention_cycle(16)?;
    eprintln!("16x16 cycle telemetry: {}", cycle.steps);
    if cycle.unknowns <= SPARSE_THRESHOLD {
        failures.push(format!(
            "16x16 domain has {} unknowns — does not exercise the sparse path",
            cycle.unknowns
        ));
    }
    if !cycle.data_survived {
        failures.push("16x16 checkerboard lost through store/shutdown/restore".to_owned());
    }
    let (lo, hi) = BOUNDS.cycle_steps;
    if !(lo..=hi).contains(&cycle.steps.accepted_steps) {
        failures.push(format!(
            "cycle accepted_steps {} outside [{lo}, {hi}]",
            cycle.steps.accepted_steps
        ));
    }
    let ips = cycle.steps.iterations_per_solve();
    let (lo, hi) = BOUNDS.iterations_per_solve;
    if !(lo..=hi).contains(&ips) {
        failures.push(format!(
            "iterations_per_solve {ips:.3} outside [{lo}, {hi}]"
        ));
    }
    if cycle.steps.refactorizations_avoided == 0 {
        failures.push("refactorizations_avoided is 0 — modified Newton is dead on sparse".into());
    }
    if cycle.steps.device_bypasses == 0 {
        failures.push("device_bypasses is 0 — the eval bypass is dead on the domain".into());
    }

    // 3. The sparse refactor path must actually engage on a refill.
    let n = 512;
    let pattern = grid_pattern(n);
    let mut csc = CscMatrix::from_pattern(&pattern);
    fill_grid(n, &mut csc, None);
    let mut lu = SparseLu::new();
    lu.factor(&csc)?;
    fill_grid(n, &mut csc, None);
    lu.factor(&csc)?;
    if lu.refactorizations() == 0 {
        failures.push("SparseLu refill took a full factorisation, not the refactor path".into());
    }

    if failures.is_empty() {
        eprintln!("check OK ({} SIMD level)", simd::level().name());
        Ok(())
    } else {
        Err(format!("perf-regression check failed:\n  {}", failures.join("\n  ")).into())
    }
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

fn steps_json(s: &StepStats) -> String {
    format!(
        "{{\"accepted_steps\": {}, \"rejected_lte\": {}, \"rejected_newton\": {}, \
         \"newton_iterations\": {}, \"newton_solves\": {}, \
         \"iterations_per_solve\": {:.3}, \
         \"jacobian_refactorizations\": {}, \"refactorizations_avoided\": {}, \
         \"reuse_rate\": {:.3}, \
         \"device_evals\": {}, \"device_bypasses\": {}, \"bypass_rate\": {:.3}}}",
        s.accepted_steps,
        s.rejected_lte,
        s.rejected_newton,
        s.newton_iterations,
        s.newton_solves,
        s.iterations_per_solve(),
        s.jacobian_refactorizations,
        s.refactorizations_avoided,
        s.reuse_rate(),
        s.device_evals,
        s.device_bypasses,
        s.bypass_rate(),
    )
}

fn kernels_json(k: &KernelRates) -> String {
    format!(
        "{{\"axpy\": {:.4e}, \"dot\": {:.4e}, \"norm_inf\": {:.4e}}}",
        k.axpy, k.dot, k.norm_inf
    )
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_PR6.json");
    let mut check_only = false;
    let mut probe_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--check" => check_only = true,
            "--kernel-probe" => probe_only = true,
            "--help" | "-h" => {
                println!("usage: bench_pr6 [--out FILE] [--check]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    if probe_only {
        kernel_probe();
        return Ok(());
    }
    if check_only {
        return check();
    }

    eprintln!("measuring SIMD kernels ({} level)...", simd::level().name());
    let kernels = measure_kernels();
    eprintln!("re-measuring with NVPG_SIMD=scalar in a child process...");
    let scalar = measure_scalar_in_child();
    if scalar.is_none() {
        eprintln!("  (scalar child probe unavailable; ratios omitted)");
    }

    let mut cycles = Vec::new();
    for size in [16usize, 32, 64] {
        eprintln!("{size}x{size} NVPG retention cycle via sparse...");
        let c = retention_cycle(size)?;
        eprintln!(
            "  build {:.2} s, store {:.2} s, shutdown {:.2} s, restore {:.2} s, \
             data {}",
            c.build_dc_s,
            c.store_s,
            c.shutdown_s,
            c.restore_s,
            if c.data_survived { "OK" } else { "LOST" }
        );
        if !c.data_survived {
            return Err(format!("{size}x{size} retention cycle lost data").into());
        }
        cycles.push(c);
    }

    // Unknown counts come from the real netlists (the cycle domains for
    // 16×16/32×32, a sizing build for 8×8); the crossover matrices are
    // sized to match so the linear-algebra comparison reflects the
    // systems Newton actually hands the backends.
    let n8 = DomainArray::with_solver(
        CellDesign::table1(),
        DomainKind::Nvpg,
        8,
        8,
        SolverChoice::Sparse,
        checkerboard,
    )?
    .unknown_count();
    let n16 = cycles[0].unknowns;
    let n32 = cycles[1].unknowns;
    let mut crossover = Vec::new();
    for (label, n) in [("8x8", n8), ("16x16", n16), ("32x32", n32)] {
        eprintln!("crossover at {label} ({n} unknowns)...");
        let p = crossover_point(label, n)?;
        eprintln!(
            "  dense {:.3e} s, sparse first {:.3e} s, sparse refactor {:.3e} s",
            p.dense_s, p.sparse_first_s, p.sparse_refactor_s
        );
        crossover.push(p);
    }

    eprintln!("architecture comparison at 16x16 (NVPG / OSR / NOF)...");
    let arch: Vec<ArchCycle> = [DomainKind::Nvpg, DomainKind::Osr, DomainKind::Nof]
        .into_iter()
        .map(architecture_cycle)
        .collect::<Result<_, _>>()?;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_pr6\",");
    let _ = writeln!(json, "  \"simd\": {{");
    let _ = writeln!(json, "    \"level\": \"{}\",", kernels.level);
    let _ = writeln!(
        json,
        "    \"kernels_elems_per_s\": {},",
        kernels_json(&kernels)
    );
    match &scalar {
        Some(s) => {
            let _ = writeln!(json, "    \"scalar_elems_per_s\": {},", kernels_json(s));
            let _ = writeln!(
                json,
                "    \"speedup_vs_scalar\": {{\"axpy\": {:.3}, \"dot\": {:.3}, \
                 \"norm_inf\": {:.3}}}",
                kernels.axpy / s.axpy,
                kernels.dot / s.dot,
                kernels.norm_inf / s.norm_inf
            );
        }
        None => {
            let _ = writeln!(json, "    \"scalar_elems_per_s\": null,");
            let _ = writeln!(json, "    \"speedup_vs_scalar\": null");
        }
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"crossover\": [");
    for (i, p) in crossover.iter().enumerate() {
        let comma = if i + 1 < crossover.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"array\": \"{}\", \"unknowns\": {}, \"dense_factor_solve_s\": {:.6e}, \
             \"sparse_first_factor_s\": {:.6e}, \"sparse_refactor_solve_s\": {:.6e}, \
             \"dense_over_sparse_first\": {:.2}, \"dense_over_sparse_refactor\": {:.2}}}{comma}",
            p.array,
            p.unknowns,
            p.dense_s,
            p.sparse_first_s,
            p.sparse_refactor_s,
            p.dense_s / p.sparse_first_s,
            p.dense_s / p.sparse_refactor_s,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"array_transients\": [");
    for (i, c) in cycles.iter().enumerate() {
        let comma = if i + 1 < cycles.len() { "," } else { "" };
        let total = c.store_s + c.shutdown_s + c.restore_s;
        let _ = writeln!(
            json,
            "    {{\"array\": \"{}\", \"kind\": \"nvpg\", \"solver\": \"sparse\", \
             \"unknowns\": {}, \"build_dc_s\": {:.3}, \"store_s\": {:.3}, \
             \"shutdown_s\": {:.3}, \"restore_s\": {:.3}, \"cycle_total_s\": {:.3}, \
             \"cycle_energy_j\": {:.6e}, \"data_survived\": {}, \"steps\": {}}}{comma}",
            c.array,
            c.unknowns,
            c.build_dc_s,
            c.store_s,
            c.shutdown_s,
            c.restore_s,
            total,
            c.energy_j,
            c.data_survived,
            steps_json(&c.steps),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"architecture_cycle_16x16\": {{");
    for (i, a) in arch.iter().enumerate() {
        let comma = if i + 1 < arch.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{\"energy_j\": {:.6e}, \"wall_s\": {:.3}}}{comma}",
            a.kind, a.energy_j, a.wall_s
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"Counters under steps are deterministic; wall seconds are not. \
         Crossover systems are banded stand-ins sized to the real domain unknown \
         counts (dense factor+solve vs sparse first factor and fixed-pattern \
         refactor+solve). Array transients run store/shutdown(super)/restore on \
         checkerboard NVPG domains through the sparse backend. The scalar SIMD \
         reference is measured in a child process because the dispatch level is \
         resolved once per process.\""
    );
    json.push_str("}\n");

    std::fs::write(&out, &json)?;
    let c64 = cycles.last().expect("64x64 cycle present");
    eprintln!(
        "wrote {out} (64x64 cycle {:.1} s wall, {} unknowns; dense/sparse at 32x32: {:.0}x)",
        c64.store_s + c64.shutdown_s + c64.restore_s,
        c64.unknowns,
        crossover
            .last()
            .map(|p| p.dense_s / p.sparse_refactor_s)
            .unwrap_or(f64::NAN)
    );
    Ok(())
}
