//! Machine-readable performance snapshot of the batched solve path:
//! lock-step Newton over the shared-symbolic sparse stack, the batched
//! domain scans, and the `/sweep` request coalescer.
//!
//! ```text
//! bench_pr8 [--out FILE] [--check]
//! ```
//!
//! Writes `BENCH_PR8.json` (or `FILE`) containing:
//!
//! * **Monte-Carlo @ 1k lanes, sparse** — points/second for 1000 varied
//!   samples of a grid-connected nonlinear system (324 unknowns),
//!   serial (one `NewtonSolver` + fresh symbolic analysis per point, the
//!   pre-batching engine shape) vs batched (one `BatchedSparseLu` stack:
//!   one symbolic analysis, per-lane refactorisation, lock-step Newton
//!   with convergence masking), plus a `NVPG_SIMD=scalar` re-measurement
//!   in a child process;
//! * **domain Monte-Carlo** — `run_domain_variation` on a 4×4 NVPG
//!   domain, `--batch serial` vs batched lanes, points/second each;
//! * **BET design grid** — `bet_design_scan` over a vth-shift × fin-count
//!   grid, serial vs batched points/second;
//! * **coalesced `/sweep` throughput** — the sibling `nvpg-serve` daemon
//!   under open-loop Poisson load of same-topology `/sweep` requests
//!   (shared point grid plus one unique jitter point each, so neither
//!   the cache nor single-flight can help), `--coalesce-window-ms 0`
//!   vs coalescing on, completed requests/second each and the
//!   `serve.batch.*` counter reconciliation.
//!
//! `--check` is the CI gate for this PR: batched Monte-Carlo must be
//! ≥ 3× serial points/sec at 1k lanes on the sparse path, coalesced
//! `/sweep` throughput must be ≥ 2× un-coalesced under open-loop load,
//! and the batched results must agree with serial (the differential
//! contract: identical outcomes, not just faster ones).

use std::error::Error;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write as IoWrite};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nvpg_cells::design::CellDesign;
use nvpg_cells::domain::DomainKind;
use nvpg_core::{bet_design_scan, run_domain_variation, BatchMode, BenchmarkParams, VariationSpec};
use nvpg_numeric::batched::{BatchedNewton, BatchedSparseLu, LaneOutcome};
use nvpg_numeric::{
    simd, CscMatrix, DenseMatrix, NewtonOptions, NewtonSolver, NonlinearSystem, PatternBuilder,
    Rng64, SparsePattern,
};

// ---------------------------------------------------------------------
// Monte-Carlo at 1k lanes over the sparse stack
// ---------------------------------------------------------------------

/// Unknowns of the Monte-Carlo system (an 18×18 grid flattened to MNA
/// order, the size regime where PR 6 measured the symbolic analysis at
/// ~10× the per-refactor cost — exactly what batching amortises).
const MC_UNKNOWNS: usize = 324;
/// Monte-Carlo points per the acceptance gate.
const MC_LANES: usize = 1000;
/// Lock-step lanes per batch chunk (the production
/// `DEFAULT_BATCH_LANES` width).
const MC_CHUNK: usize = 64;

/// A grid-connected nonlinear network: diagonally dominant linear part
/// with nearest-neighbour (±1) and grid (±√n) coupling — the same
/// connectivity profile as the domain netlists — plus a cubic diagonal
/// nonlinearity so Newton takes a few genuine iterations. Each
/// Monte-Carlo sample perturbs the diagonal conductances and the source
/// vector, like device variation perturbs MNA stamps over a fixed
/// topology.
struct GridMc {
    n: usize,
    k: usize,
    gdiag: Vec<f64>,
    src: Vec<f64>,
}

impl GridMc {
    /// Sample `i` of the variation stream (same split-stream discipline
    /// as `run_variation`: lane count never changes the draw).
    fn sample(n: usize, seed: u64, i: u64) -> Self {
        let mut rng = Rng64::split(seed, i);
        GridMc {
            n,
            k: (n as f64).sqrt().ceil() as usize,
            gdiag: (0..n).map(|_| 4.0 + 0.2 * rng.normal()).collect(),
            src: (0..n).map(|_| 0.5 + 0.1 * rng.normal()).collect(),
        }
    }

    fn residual(&self, x: &[f64], residual: &mut [f64]) {
        let (n, k) = (self.n, self.k);
        for i in 0..n {
            let mut r = self.gdiag[i] * x[i] + 0.1 * x[i] * x[i] * x[i] - self.src[i];
            if i >= 1 {
                r += 0.9 * (x[i] - x[i - 1]);
            }
            if i + 1 < n {
                r += 0.9 * (x[i] - x[i + 1]);
            }
            if i >= k {
                r += 0.9 * (x[i] - x[i - k]);
            }
            if i + k < n {
                r += 0.9 * (x[i] - x[i + k]);
            }
            residual[i] = r;
        }
    }

    #[allow(clippy::needless_range_loop)] // `i` walks gdiag and x in lockstep
    fn stamp(&self, x: &[f64], mut add: impl FnMut(usize, usize, f64)) {
        let (n, k) = (self.n, self.k);
        for i in 0..n {
            let mut diag = self.gdiag[i] + 0.3 * x[i] * x[i];
            if i >= 1 {
                diag += 0.9;
                add(i, i - 1, -0.9);
            }
            if i + 1 < n {
                diag += 0.9;
                add(i, i + 1, -0.9);
            }
            if i >= k {
                diag += 0.9;
                add(i, i - k, -0.9);
            }
            if i + k < n {
                diag += 0.9;
                add(i, i + k, -0.9);
            }
            add(i, i, diag);
        }
    }
}

impl NonlinearSystem for GridMc {
    fn dim(&self) -> usize {
        self.n
    }

    fn eval(&mut self, x: &[f64], residual: &mut [f64], jacobian: &mut DenseMatrix) {
        self.residual(x, residual);
        self.stamp(x, |r, c, v| jacobian.add(r, c, v));
    }

    fn eval_sparse(&mut self, x: &[f64], residual: &mut [f64], jacobian: &mut CscMatrix) -> bool {
        self.residual(x, residual);
        jacobian.clear();
        self.stamp(x, |r, c, v| jacobian.add(r, c, v));
        true
    }
}

/// The structural pattern of [`GridMc`] (value-independent — the fixed
/// topology every sample shares).
fn mc_pattern(n: usize) -> SparsePattern {
    let k = (n as f64).sqrt().ceil() as usize;
    let mut b = PatternBuilder::new(n);
    for i in 0..n {
        b.add(i, i);
        if i + 1 < n {
            b.add(i, i + 1);
            b.add(i + 1, i);
        }
        if i + k < n {
            b.add(i, i + k);
            b.add(i + k, i);
        }
    }
    b.build()
}

struct McRun {
    points: usize,
    unknowns: usize,
    serial_s: f64,
    batched_s: f64,
    /// Lanes the lock-step driver peeled to the (unneeded here) serial
    /// rescue ladder — 0 on this well-conditioned corpus.
    peeled: usize,
    /// Worst per-unknown |serial − batched| over all points.
    max_dev: f64,
}

impl McRun {
    fn speedup(&self) -> f64 {
        self.serial_s / self.batched_s.max(1e-12)
    }
}

/// Solves the same `points` Monte-Carlo samples serially (fresh pattern,
/// symbolic analysis, and solver per point — what the engine did before
/// the batched backend) and batched (one shared-symbolic stack), and
/// cross-checks the solutions.
fn mc_points(points: usize, seed: u64) -> Result<McRun, Box<dyn Error>> {
    let n = MC_UNKNOWNS;
    let opts = NewtonOptions::default();

    // Serial baseline: per point, rebuild the structure the way the
    // serial Monte-Carlo loop does — pattern, matrix, solver — then pay
    // the symbolic analysis inside the first factor.
    let mut serial_x = vec![0.0f64; points * n];
    let t0 = Instant::now();
    for p in 0..points {
        let pattern = mc_pattern(n);
        let mut solver = NewtonSolver::with_sparse(opts, &pattern);
        let mut system = GridMc::sample(n, seed, p as u64);
        let x = &mut serial_x[p * n..(p + 1) * n];
        match solver.solve(&mut system, x) {
            nvpg_numeric::NewtonOutcome::Converged { .. } => {}
            other => {
                return Err(format!("serial MC point {p} failed to converge: {other:?}").into())
            }
        }
    }
    let serial_s = t0.elapsed().as_secs_f64();

    // Batched: one symbolic schedule shared by every lane, points solved
    // `MC_CHUNK` lock-step lanes at a time (the production batch width —
    // wide enough to amortise the symbolic analysis, narrow enough that
    // the per-lane L/U value stacks stay cache-resident).
    let mut batched_x = vec![0.0f64; points * n];
    let t0 = Instant::now();
    let pattern = mc_pattern(n);
    let mut newton = BatchedNewton::new(BatchedSparseLu::new(&pattern, MC_CHUNK), opts);
    let mut outcomes = vec![
        LaneOutcome::Peeled {
            iteration: 0,
            reason: nvpg_numeric::batched::PeelReason::IterationLimit,
        };
        points
    ];
    let mut p = 0;
    while p < points {
        let width = MC_CHUNK.min(points - p);
        let mut systems: Vec<GridMc> = (p..p + width)
            .map(|i| GridMc::sample(n, seed, i as u64))
            .collect();
        newton.solve(
            &mut systems,
            &mut batched_x[p * n..(p + width) * n],
            &mut outcomes[p..p + width],
        );
        p += width;
    }
    let batched_s = t0.elapsed().as_secs_f64();

    let peeled = outcomes
        .iter()
        .filter(|o| matches!(o, LaneOutcome::Peeled { .. }))
        .count();
    let mut max_dev = 0.0f64;
    for (s, b) in serial_x.iter().zip(&batched_x) {
        max_dev = max_dev.max((s - b).abs());
    }
    Ok(McRun {
        points,
        unknowns: n,
        serial_s,
        batched_s,
        peeled,
        max_dev,
    })
}

/// `--mc-probe`: run the Monte-Carlo comparison and print one parsable
/// line. Invoked in a child process with `NVPG_SIMD=scalar` because the
/// dispatch level is resolved once per process.
fn mc_probe() -> Result<(), Box<dyn Error>> {
    let run = mc_points(MC_LANES, 0x6d63505238)?;
    println!(
        "level={} serial_s={:.6e} batched_s={:.6e} peeled={} max_dev={:.3e}",
        simd::level().name(),
        run.serial_s,
        run.batched_s,
        run.peeled,
        run.max_dev
    );
    Ok(())
}

/// Re-runs the Monte-Carlo phase with `NVPG_SIMD=scalar` in a child.
fn mc_scalar_in_child() -> Option<(f64, f64)> {
    let exe = std::env::current_exe().ok()?;
    let out = Command::new(exe)
        .arg("--mc-probe")
        .env("NVPG_SIMD", "scalar")
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let mut level = None;
    let mut serial = None;
    let mut batched = None;
    for tok in text.split_whitespace() {
        let (key, val) = tok.split_once('=')?;
        match key {
            "level" => level = Some(val.to_owned()),
            "serial_s" => serial = val.parse().ok(),
            "batched_s" => batched = val.parse().ok(),
            _ => {}
        }
    }
    if level.as_deref() != Some("scalar") {
        return None;
    }
    Some((serial?, batched?))
}

// ---------------------------------------------------------------------
// Domain Monte-Carlo and BET grid (engine-level, report-only)
// ---------------------------------------------------------------------

struct ScanRun {
    points: usize,
    serial_s: f64,
    batched_s: f64,
}

/// `run_domain_variation` serial vs batched on a 4×4 NVPG domain; also
/// verifies the outcomes are identical (the differential contract at
/// the engine level).
fn domain_mc(samples: u32) -> Result<ScanRun, Box<dyn Error>> {
    let design = CellDesign::table1();
    let spec = VariationSpec {
        samples,
        ..VariationSpec::default()
    };
    let t0 = Instant::now();
    let (serial, _) = run_domain_variation(
        &design,
        &spec,
        DomainKind::Nvpg,
        4,
        4,
        None,
        BatchMode::Serial,
        1,
    )?;
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (batched, _) = run_domain_variation(
        &design,
        &spec,
        DomainKind::Nvpg,
        4,
        4,
        None,
        BatchMode::Auto,
        1,
    )?;
    let batched_s = t0.elapsed().as_secs_f64();
    if serial != batched {
        return Err("domain Monte-Carlo: batched outcome differs from serial".into());
    }
    Ok(ScanRun {
        points: samples as usize,
        serial_s,
        batched_s,
    })
}

/// `bet_design_scan` serial vs batched over a vth-shift × fin-count
/// grid; verifies the surfaces agree point for point.
fn bet_grid() -> Result<ScanRun, Box<dyn Error>> {
    let design = CellDesign::table1();
    let ch = nvpg_cells::characterize(&design)?;
    let params = BenchmarkParams::fig7_default();
    let shifts: Vec<f64> = (-3..=3).map(|i| f64::from(i) * 0.01).collect();
    let fins = [1u32, 2, 4, 8];
    let t0 = Instant::now();
    let serial = bet_design_scan(
        &design,
        &ch,
        &shifts,
        &fins,
        4,
        4,
        &params,
        BatchMode::Serial,
        1,
    )?;
    let serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let batched = bet_design_scan(
        &design,
        &ch,
        &shifts,
        &fins,
        4,
        4,
        &params,
        BatchMode::Auto,
        1,
    )?;
    let batched_s = t0.elapsed().as_secs_f64();
    if serial != batched {
        return Err("BET design scan: batched surface differs from serial".into());
    }
    Ok(ScanRun {
        points: serial.len(),
        serial_s,
        batched_s,
    })
}

// ---------------------------------------------------------------------
// Coalesced /sweep throughput under open-loop load
// ---------------------------------------------------------------------

/// Worker threads for the coalescing daemon runs. More workers than the
/// machine has cores is deliberate: a parked batch follower occupies a
/// worker slot, so the worker count bounds the achievable batch width.
const SWEEP_JOBS: &str = "16";
/// Requests per daemon run.
const SWEEP_REQUESTS: usize = 96;
/// Shared sweep grid size; every request posts this grid plus one unique
/// jitter point, so requests share a topology but never a cache key.
///
/// The workload is a `vth_shift` sweep: each point is a real batched
/// 4×4 domain operating-point solve (~ms), so the solve — the part a
/// coalesced union dedupes — dominates the request, not JSON handling.
const SWEEP_GRID: usize = 24;

fn sweep_body(jitter: usize) -> String {
    let mut values = String::new();
    for i in 0..SWEEP_GRID {
        // -12 mV .. +11 mV in 1 mV steps, identical across requests.
        let _ = write!(values, "{},", (i as f64 - 12.0) * 1e-3);
    }
    // The unique point stays inside the handler's |v| <= 0.5 V bound
    // even for the calibration run's million-scale jitters.
    let _ = write!(values, "{}", 0.05 + jitter as f64 * 1e-7);
    format!("{{\"arch\":\"NVPG\",\"var\":\"vth_shift\",\"values\":[{values}]}}")
}

/// One POST on a fresh connection; returns (status, latency).
fn post(addr: &str, path: &str, body: &str) -> Result<(u16, Duration), String> {
    let t0 = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{}`", line.trim_end()))?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        let h = line.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| "bad length".to_owned())?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    Ok((status, t0.elapsed()))
}

/// GET that returns the response body as text (for `/metrics`).
fn get_body(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    BufReader::new(stream)
        .read_to_string(&mut raw)
        .map_err(|e| e.to_string())?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err("no body".to_owned()),
    }
}

/// Spawns the sibling `nvpg-serve` binary with the given coalescing
/// window; returns the child and its listen address.
fn spawn_daemon(window_ms: &str) -> Result<(Child, String), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let daemon = exe.parent().ok_or("no parent dir")?.join("nvpg-serve");
    if !daemon.exists() {
        return Err(format!(
            "{} not found (build it: cargo build -p nvpg-serve)",
            daemon.display()
        ));
    }
    let mut child = Command::new(&daemon)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--jobs",
            SWEEP_JOBS,
            "--cache-mb",
            "0",
            "--queue-depth",
            "1024",
            "--default-timeout-ms",
            "120000",
            "--coalesce-window-ms",
            window_ms,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", daemon.display()))?;
    let stdout = child.stdout.take().ok_or("no stdout")?;
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let addr = line
        .split_whitespace()
        .find(|tok| tok.contains(':') && tok.starts_with("127."))
        .ok_or_else(|| format!("could not parse listen address from `{}`", line.trim_end()))?
        .to_owned();
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = reader.read_to_string(&mut sink);
    });
    Ok((child, addr))
}

fn stop_daemon(mut child: Child) -> Result<(), String> {
    let pid = child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map_err(|e| format!("kill: {e}"))?;
    if !status.success() {
        let _ = child.kill();
        return Err("kill -TERM failed".to_owned());
    }
    let t0 = Instant::now();
    loop {
        match child.try_wait().map_err(|e| e.to_string())? {
            Some(status) if status.success() => return Ok(()),
            Some(status) => return Err(format!("daemon exited uncleanly: {status}")),
            None if t0.elapsed() > Duration::from_secs(30) => {
                let _ = child.kill();
                return Err("daemon did not drain within 30 s of SIGTERM".to_owned());
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// splitmix64 step for the Poisson arrival schedule.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct SweepRun {
    window_ms: u64,
    offered_rps: f64,
    completed: usize,
    shed: usize,
    errors: usize,
    wall_s: f64,
    batches: u64,
    coalesced: u64,
    batch_points: u64,
}

impl SweepRun {
    fn rps(&self) -> f64 {
        self.completed as f64 / self.wall_s.max(1e-9)
    }
}

/// One open-loop run against a daemon with the given coalescing window:
/// `SWEEP_REQUESTS` same-topology `/sweep` requests launched at Poisson
/// arrival instants at `offered_rps`.
fn sweep_run(window_ms: u64, offered_rps: f64) -> Result<SweepRun, Box<dyn Error>> {
    let (child, addr) = spawn_daemon(&window_ms.to_string())?;
    // Pay the one-off Table I characterisation before the clock starts.
    let (status, _) = post(&addr, "/bet", "{\"arch\":\"NVPG\"}")?;
    if status != 200 {
        let _ = stop_daemon(child);
        return Err(format!("warm-up /bet answered {status}").into());
    }

    let counter = |metrics: &str, name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    let before = get_body(&addr, "/metrics")?;

    let mut state = 0x5eed_0123_4567_89abu64 ^ window_ms;
    let t0 = Instant::now();
    let addr_ref = &addr;
    let statuses: Vec<Result<u16, ()>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(SWEEP_REQUESTS);
        let mut due = Duration::ZERO;
        for i in 0..SWEEP_REQUESTS {
            let u = ((splitmix64(&mut state) >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            due += Duration::from_secs_f64(-u.ln() / offered_rps);
            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            handles.push(scope.spawn(move || {
                let body = sweep_body(i);
                match post(addr_ref, "/sweep", &body) {
                    Ok((status, _)) => Ok(status),
                    Err(e) => {
                        eprintln!("bench_pr8: sweep request {i}: {e}");
                        Err(())
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("arrival"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let after = get_body(&addr, "/metrics")?;
    stop_daemon(child)?;

    let completed = statuses.iter().filter(|s| matches!(s, Ok(200))).count();
    let shed = statuses
        .iter()
        .filter(|s| matches!(s, Ok(503) | Ok(429)))
        .count();
    let errors = SWEEP_REQUESTS - completed - shed;
    Ok(SweepRun {
        window_ms,
        offered_rps,
        completed,
        shed,
        errors,
        wall_s,
        batches: counter(&after, "serve.batch.batches") - counter(&before, "serve.batch.batches"),
        coalesced: counter(&after, "serve.batch.coalesced")
            - counter(&before, "serve.batch.coalesced"),
        batch_points: counter(&after, "serve.batch.points")
            - counter(&before, "serve.batch.points"),
    })
}

/// Runs the un-coalesced and coalesced daemons under the same open-loop
/// load. The offered rate is calibrated to ~6× the un-coalesced
/// capacity, measured from three sequential requests.
fn sweep_comparison() -> Result<(SweepRun, SweepRun), Box<dyn Error>> {
    // Calibrate single-request service time against a window=0 daemon.
    let (child, addr) = spawn_daemon("0")?;
    let (status, _) = post(&addr, "/bet", "{\"arch\":\"NVPG\"}")?;
    if status != 200 {
        let _ = stop_daemon(child);
        return Err(format!("calibration warm-up answered {status}").into());
    }
    let mut service_s = f64::INFINITY;
    for i in 0..3 {
        let (status, dt) = post(&addr, "/sweep", &sweep_body(1_000_000 + i))?;
        if status != 200 {
            let _ = stop_daemon(child);
            return Err(format!("calibration sweep answered {status}").into());
        }
        service_s = service_s.min(dt.as_secs_f64());
    }
    stop_daemon(child)?;
    let offered_rps = (6.0 / service_s.max(1e-4)).clamp(10.0, 1500.0);
    eprintln!(
        "  calibration: one /sweep takes {:.1} ms; offering {:.0} rps open-loop",
        service_s * 1e3,
        offered_rps
    );

    let uncoalesced = sweep_run(0, offered_rps)?;
    eprintln!(
        "  window 0 ms: {}/{} completed in {:.2} s ({:.1} rps, {} shed)",
        uncoalesced.completed,
        SWEEP_REQUESTS,
        uncoalesced.wall_s,
        uncoalesced.rps(),
        uncoalesced.shed
    );
    let coalesced = sweep_run(20, offered_rps)?;
    eprintln!(
        "  window 20 ms: {}/{} completed in {:.2} s ({:.1} rps, {} batches, {} joins)",
        coalesced.completed,
        SWEEP_REQUESTS,
        coalesced.wall_s,
        coalesced.rps(),
        coalesced.batches,
        coalesced.coalesced
    );
    Ok((uncoalesced, coalesced))
}

// ---------------------------------------------------------------------
// Gates, JSON, main
// ---------------------------------------------------------------------

fn check() -> Result<(), Box<dyn Error>> {
    let mut failures = Vec::new();

    eprintln!("MC @ {MC_LANES} lanes, sparse (serial vs batched)...");
    let mc = mc_points(MC_LANES, 0x6d63505238)?;
    eprintln!(
        "  serial {:.2} s, batched {:.2} s ({:.1}x), max dev {:.3e}",
        mc.serial_s,
        mc.batched_s,
        mc.speedup(),
        mc.max_dev
    );
    if mc.speedup() < 3.0 {
        failures.push(format!(
            "batched Monte-Carlo is {:.2}x serial points/sec (gate: >= 3x at {MC_LANES} lanes)",
            mc.speedup()
        ));
    }
    if mc.peeled != 0 {
        failures.push(format!(
            "{} of {MC_LANES} well-conditioned lanes peeled off the lock-step batch",
            mc.peeled
        ));
    }
    if mc.max_dev.is_nan() || mc.max_dev >= 1e-6 {
        failures.push(format!(
            "batched and serial Monte-Carlo solutions deviate by {:.3e} (> 1e-6)",
            mc.max_dev
        ));
    }

    eprintln!("domain Monte-Carlo differential (serial vs batched)...");
    if let Err(e) = domain_mc(16) {
        failures.push(e.to_string());
    }

    eprintln!("coalesced /sweep under open-loop load...");
    let (uncoalesced, coalesced) = sweep_comparison()?;
    let ratio = coalesced.rps() / uncoalesced.rps().max(1e-9);
    if ratio < 2.0 {
        failures.push(format!(
            "coalesced /sweep throughput is {:.2}x un-coalesced (gate: >= 2x; {:.1} vs {:.1} rps)",
            ratio,
            coalesced.rps(),
            uncoalesced.rps()
        ));
    }
    if coalesced.batches == 0 || coalesced.coalesced == 0 {
        failures.push(format!(
            "coalescing counters show no batching (batches {}, coalesced {})",
            coalesced.batches, coalesced.coalesced
        ));
    }
    if uncoalesced.batches != 0 || uncoalesced.coalesced != 0 {
        failures.push(format!(
            "window=0 daemon ticked batch counters (batches {}, coalesced {})",
            uncoalesced.batches, uncoalesced.coalesced
        ));
    }
    if coalesced.errors != 0 || uncoalesced.errors != 0 {
        failures.push(format!(
            "transport/5xx errors during the sweep runs ({} coalesced, {} un-coalesced)",
            coalesced.errors, uncoalesced.errors
        ));
    }

    if failures.is_empty() {
        eprintln!(
            "check OK (MC {:.1}x, /sweep {:.1}x, {} SIMD level)",
            mc.speedup(),
            ratio,
            simd::level().name()
        );
        Ok(())
    } else {
        Err(format!("batched-sweep check failed:\n  {}", failures.join("\n  ")).into())
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_PR8.json");
    let mut check_only = false;
    let mut probe_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--check" => check_only = true,
            "--mc-probe" => probe_only = true,
            "--help" | "-h" => {
                println!("usage: bench_pr8 [--out FILE] [--check]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    if probe_only {
        return mc_probe();
    }
    if check_only {
        return check();
    }

    eprintln!(
        "MC @ {MC_LANES} lanes, sparse, {MC_UNKNOWNS} unknowns ({} SIMD level)...",
        simd::level().name()
    );
    let mc = mc_points(MC_LANES, 0x6d63505238)?;
    eprintln!(
        "  serial {:.2} s, batched {:.2} s ({:.1}x), max dev {:.3e}, {} peeled",
        mc.serial_s,
        mc.batched_s,
        mc.speedup(),
        mc.max_dev,
        mc.peeled
    );
    eprintln!("re-measuring with NVPG_SIMD=scalar in a child process...");
    let scalar = mc_scalar_in_child();
    if scalar.is_none() {
        eprintln!("  (scalar child probe unavailable; scalar block omitted)");
    }

    eprintln!("domain Monte-Carlo on a 4x4 NVPG domain (serial vs batched)...");
    let dom = domain_mc(32)?;
    eprintln!(
        "  {} samples: serial {:.2} s, batched {:.2} s ({:.1}x)",
        dom.points,
        dom.serial_s,
        dom.batched_s,
        dom.serial_s / dom.batched_s.max(1e-12)
    );

    eprintln!("BET design grid (7 vth shifts x 4 fin counts, serial vs batched)...");
    let grid = bet_grid()?;
    eprintln!(
        "  {} points: serial {:.2} s, batched {:.2} s ({:.1}x)",
        grid.points,
        grid.serial_s,
        grid.batched_s,
        grid.serial_s / grid.batched_s.max(1e-12)
    );

    eprintln!("coalesced /sweep under open-loop Poisson load...");
    let (uncoalesced, coalesced) = sweep_comparison()?;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_pr8\",");
    let _ = writeln!(json, "  \"mc_sparse_1k\": {{");
    let _ = writeln!(json, "    \"simd_level\": \"{}\",", simd::level().name());
    let _ = writeln!(
        json,
        "    \"points\": {}, \"unknowns\": {},",
        mc.points, mc.unknowns
    );
    let _ = writeln!(
        json,
        "    \"serial_s\": {:.6e}, \"batched_s\": {:.6e},",
        mc.serial_s, mc.batched_s
    );
    let _ = writeln!(
        json,
        "    \"serial_points_per_s\": {:.3}, \"batched_points_per_s\": {:.3},",
        mc.points as f64 / mc.serial_s,
        mc.points as f64 / mc.batched_s
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3}, \"peeled\": {}, \"max_deviation\": {:.3e},",
        mc.speedup(),
        mc.peeled,
        mc.max_dev
    );
    match scalar {
        Some((serial_s, batched_s)) => {
            let _ = writeln!(
                json,
                "    \"scalar\": {{\"serial_s\": {:.6e}, \"batched_s\": {:.6e}, \
                 \"speedup\": {:.3}}}",
                serial_s,
                batched_s,
                serial_s / batched_s.max(1e-12)
            );
        }
        None => {
            let _ = writeln!(json, "    \"scalar\": null");
        }
    }
    let _ = writeln!(json, "  }},");
    for (label, run) in [("domain_mc_4x4", &dom), ("bet_grid_4x4", &grid)] {
        let _ = writeln!(
            json,
            "  \"{label}\": {{\"points\": {}, \"serial_s\": {:.6e}, \"batched_s\": {:.6e}, \
             \"speedup\": {:.3}, \"outcomes_identical\": true}},",
            run.points,
            run.serial_s,
            run.batched_s,
            run.serial_s / run.batched_s.max(1e-12)
        );
    }
    let _ = writeln!(json, "  \"sweep_coalescing\": {{");
    let _ = writeln!(
        json,
        "    \"grid_points\": {SWEEP_GRID}, \"requests\": {SWEEP_REQUESTS}, \
         \"jobs\": {SWEEP_JOBS}, \"arrival\": \"poisson\","
    );
    for (label, run, comma) in [
        ("uncoalesced", &uncoalesced, ","),
        ("coalesced", &coalesced, ","),
    ] {
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"window_ms\": {}, \"offered_rps\": {:.1}, \
             \"completed\": {}, \"shed\": {}, \"errors\": {}, \"wall_s\": {:.3}, \
             \"rps\": {:.3}, \"batches\": {}, \"coalesced_joins\": {}, \
             \"batched_points\": {}}}{comma}",
            run.window_ms,
            run.offered_rps,
            run.completed,
            run.shed,
            run.errors,
            run.wall_s,
            run.rps(),
            run.batches,
            run.coalesced,
            run.batch_points
        );
    }
    let _ = writeln!(
        json,
        "    \"throughput_ratio\": {:.3}",
        coalesced.rps() / uncoalesced.rps().max(1e-9)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"mc_sparse_1k: 1000 varied grid systems (324 unknowns), serial = fresh \
         pattern + symbolic analysis + NewtonSolver per point, batched = one BatchedSparseLu \
         stack (one symbolic schedule) under lock-step Newton; solutions cross-checked. \
         domain_mc/bet_grid run the engine-level scans both ways and require identical \
         outcomes. sweep_coalescing: same-topology vth_shift /sweep requests (shared shift \
         grid + unique jitter point, cache off; every point is a real batched 4x4 domain \
         solve) under open-loop Poisson arrivals at ~6x the un-coalesced \
         capacity; coalescing merges sibling windows into union solves, so throughput \
         approaches the offered rate instead of the per-request service rate.\""
    );
    json.push_str("}\n");

    std::fs::write(&out, &json)?;
    eprintln!(
        "wrote {out} (MC {:.1}x, /sweep {:.1}x)",
        mc.speedup(),
        coalesced.rps() / uncoalesced.rps().max(1e-9)
    );
    Ok(())
}
