//! Machine-readable performance snapshot of the LTE step controller, the
//! modified-Newton Jacobian reuse, and the device-eval bypass.
//!
//! ```text
//! bench_pr3 [--out FILE] [--check] [--profile] [--trace-dir DIR]
//! ```
//!
//! Writes `BENCH_PR3.json` (or `FILE`) containing:
//!
//! * step-control/solver telemetry ([`nvpg_circuit::StepStats`]) for the
//!   representative 100 ns NV-SRAM transient and for a full Fig. 6(a)
//!   NVPG benchmark sequence: accepted/rejected steps, Newton
//!   iterations per solve, LU refactorisations avoided, device-bypass
//!   hit rate;
//! * total and per-figure regeneration wall-clock *and per-thread CPU
//!   time*, serial (`jobs = 1`) vs parallel — the characterisation memo
//!   is pre-warmed first, so `fig9b` and `ext_thermal` are part of the
//!   comparison set (unlike `bench_pr1`, which had to exclude them);
//! * wall-clock speedup of the two transient-dominated figures
//!   (`fig6a`, `fig6b`) against the serial timings committed in
//!   `BENCH_PR1.json`.
//!
//! `--check` recomputes only the *deterministic* counters (no
//! wall-clock) and exits nonzero if any falls outside the committed
//! bounds — the CI perf-regression smoke gate.
//!
//! `--profile` traces the run and prints a per-span self-time table to
//! stderr, plus `profile.folded` (collapsed stacks) under the trace
//! directory (`--trace-dir DIR`, default `trace/`).

use std::error::Error;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use nvpg_bench::obs_cli::{self, ObsOptions};

use nvpg_cells::cell::{build_cell, CellKind, MtjConfig};
use nvpg_cells::characterize::characterize_cached;
use nvpg_cells::design::CellDesign;
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, StepStats};
use nvpg_core::{
    at_temperature, run_sequence, Architecture, Experiments, SequenceParams, BET_FIGURE_IDS,
    EXTENSION_IDS, FIGURE_IDS,
};

/// Serial per-figure wall-clock committed in `BENCH_PR1.json` for the two
/// transient-dominated figures. The ISSUE acceptance gate is ≥ 2× on
/// both.
const PR1_FIG6A_SERIAL_S: f64 = 0.344249;
const PR1_FIG6B_SERIAL_S: f64 = 0.331133;

/// Deterministic counter bounds for `--check` (the CI smoke gate). The
/// counters are exact reproducible integers — identical on every host —
/// so the bounds are tight enough to catch a disabled optimisation yet
/// loose enough to survive benign solver tweaks.
struct CheckBounds {
    /// Accepted steps of the 100 ns NV-SRAM hold transient: the LTE
    /// controller grows dt to the 2 ns cap and lands at ~58; the pre-PR3
    /// heuristic stepper needed ~2000.
    transient_steps: (u64, u64),
    /// Mean Newton iterations per solve over the same transient.
    iterations_per_solve: (f64, f64),
}

const BOUNDS: CheckBounds = CheckBounds {
    transient_steps: (45, 200),
    iterations_per_solve: (1.0, 6.0),
};

/// Every deterministic figure id — with the characterisation memo
/// pre-warmed, that is all of them except `table1` (a table, not a
/// figure run).
fn comparison_ids() -> Vec<&'static str> {
    FIGURE_IDS
        .iter()
        .chain(BET_FIGURE_IDS.iter())
        .chain(EXTENSION_IDS.iter())
        .copied()
        .filter(|&id| id != "table1")
        .collect()
}

/// Characterises every design point the comparison set touches, so both
/// timing passes start from a hot memo and neither subsidises the other.
fn prewarm_memo() -> Result<(), Box<dyn Error>> {
    let base = CellDesign::table1();
    characterize_cached(&base)?;
    characterize_cached(&CellDesign::fig9b())?;
    // ext_thermal re-characterises the cell at each sweep temperature.
    for temp in [250.0, 275.0, 300.0, 330.0, 360.0, 400.0] {
        characterize_cached(&at_temperature(&base, temp))?;
    }
    Ok(())
}

/// The 100 ns NV-SRAM hold transient (the `sim_engine` workload).
fn nvsram_transient() -> Result<(StepStats, f64), Box<dyn Error>> {
    let design = CellDesign::table1();
    let mut ckt = Circuit::new();
    let nodes = build_cell(&mut ckt, &design, CellKind::NvSram, MtjConfig::stored(true))?;
    let dc_opts = DcOptions::default()
        .with_nodeset(nodes.q, 0.9)
        .with_nodeset(nodes.qb, 0.0)
        .with_nodeset(nodes.vvdd, 0.9)
        .with_nodeset(nodes.bl, 0.9)
        .with_nodeset(nodes.blb, 0.9);
    let op = operating_point(&mut ckt, &dc_opts)?;
    // Mirror the knobs CellBench::phase runs production figures with.
    let topts = TransientOptions {
        t_stop: 100e-9,
        dt_max: 2e-9,
        dt_init: 1e-12,
        device_bypass_tol: 1e-6,
        ..TransientOptions::default()
    };
    let t0 = Instant::now();
    let result = transient(&mut ckt, &topts, &op)?;
    Ok((result.steps, t0.elapsed().as_secs_f64()))
}

struct Pass {
    jobs: usize,
    total_s: f64,
    /// `(id, wall seconds, worker-thread CPU seconds)`; CPU is `None`
    /// where the platform doesn't expose per-thread time. Wall inflates
    /// with scheduler contention on busy hosts, CPU does not — the pair
    /// separates "slower solver" from "busier machine".
    per_figure: Vec<(String, f64, Option<f64>)>,
}

fn run_pass(exp: &Experiments, ids: &[&str], jobs: usize) -> Pass {
    nvpg_exec::set_default_jobs(jobs);
    let t0 = Instant::now();
    let timed: Vec<(String, f64, Option<f64>)> = nvpg_exec::par_map(jobs, ids, |_, &id| {
        let t = Instant::now();
        let c0 = nvpg_exec::thread_cpu_time();
        exp.figure_by_id(id)
            .expect("known id")
            .expect("figure renders");
        let cpu = nvpg_exec::thread_cpu_time()
            .zip(c0)
            .map(|(c1, c0)| (c1 - c0).as_secs_f64());
        (id.to_owned(), t.elapsed().as_secs_f64(), cpu)
    });
    Pass {
        jobs,
        total_s: t0.elapsed().as_secs_f64(),
        per_figure: timed,
    }
}

fn pass_json(pass: &Pass) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"jobs\": {}, \"total_s\": {:.6}, \"per_figure_s\": {{",
        pass.jobs, pass.total_s
    );
    for (i, (id, secs, _)) in pass.per_figure.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{id}\": {secs:.6}");
    }
    s.push_str("}, \"per_figure_cpu_s\": {");
    for (i, (id, _, cpu)) in pass.per_figure.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match cpu {
            Some(c) => {
                let _ = write!(s, "\"{id}\": {c:.6}");
            }
            None => {
                let _ = write!(s, "\"{id}\": null");
            }
        }
    }
    s.push_str("}}");
    s
}

fn steps_json(s: &StepStats) -> String {
    format!(
        "{{\"accepted_steps\": {}, \"rejected_lte\": {}, \"rejected_newton\": {}, \
         \"newton_iterations\": {}, \"newton_solves\": {}, \
         \"iterations_per_solve\": {:.3}, \
         \"jacobian_refactorizations\": {}, \"refactorizations_avoided\": {}, \
         \"reuse_rate\": {:.3}, \
         \"device_evals\": {}, \"device_bypasses\": {}, \"bypass_rate\": {:.3}, \
         \"max_lte_ratio\": {:.4}}}",
        s.accepted_steps,
        s.rejected_lte,
        s.rejected_newton,
        s.newton_iterations,
        s.newton_solves,
        s.iterations_per_solve(),
        s.jacobian_refactorizations,
        s.refactorizations_avoided,
        s.reuse_rate(),
        s.device_evals,
        s.device_bypasses,
        s.bypass_rate(),
        s.max_lte_ratio,
    )
}

/// `--check`: recompute the deterministic counters and gate them.
fn check() -> Result<(), Box<dyn Error>> {
    let (steps, _) = nvsram_transient()?;
    eprintln!("nvsram transient telemetry: {steps}");
    let mut failures = Vec::new();
    let (lo, hi) = BOUNDS.transient_steps;
    if !(lo..=hi).contains(&steps.accepted_steps) {
        failures.push(format!(
            "accepted_steps {} outside [{lo}, {hi}]",
            steps.accepted_steps
        ));
    }
    let ips = steps.iterations_per_solve();
    let (lo, hi) = BOUNDS.iterations_per_solve;
    if !(lo..=hi).contains(&ips) {
        failures.push(format!(
            "iterations_per_solve {ips:.3} outside [{lo}, {hi}]"
        ));
    }
    if steps.refactorizations_avoided == 0 {
        failures.push("refactorizations_avoided is 0 — modified Newton is dead".into());
    }
    if steps.device_bypasses == 0 {
        failures.push("device_bypasses is 0 — the eval bypass is dead".into());
    }
    let seq = run_sequence(
        &CellDesign::table1(),
        Architecture::Nvpg,
        &SequenceParams::default(),
    )?;
    eprintln!("nvpg sequence telemetry:    {}", seq.steps);
    if seq.steps.refactorizations_avoided == 0 {
        failures.push("sequence refactorizations_avoided is 0".into());
    }
    if seq.steps.device_bypasses == 0 {
        failures.push("sequence device_bypasses is 0".into());
    }
    if failures.is_empty() {
        eprintln!("check OK");
        Ok(())
    } else {
        Err(format!("perf-regression check failed:\n  {}", failures.join("\n  ")).into())
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_PR3.json");
    let mut check_only = false;
    let mut obs = ObsOptions::default();
    let mut trace_dir = PathBuf::from("trace");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--check" => check_only = true,
            "--profile" => obs.profile = true,
            "--trace-dir" => {
                trace_dir = PathBuf::from(args.next().ok_or("--trace-dir requires a directory")?);
            }
            "--help" | "-h" => {
                println!("usage: bench_pr3 [--out FILE] [--check] [--profile] [--trace-dir DIR]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    obs.install();
    if check_only {
        let result = check();
        obs_cli::finish(&obs, &trace_dir, "bench_pr3", env!("CARGO_PKG_VERSION"))?;
        return result;
    }

    eprintln!("measuring step telemetry (100 ns NV-SRAM transient)...");
    let (tr_steps, transient_s) = nvsram_transient()?;
    eprintln!("  {tr_steps}");

    eprintln!("running the Fig. 6(a) NVPG sequence...");
    let seq = run_sequence(
        &CellDesign::table1(),
        Architecture::Nvpg,
        &SequenceParams::default(),
    )?;
    eprintln!("  {}", seq.steps);

    eprintln!("pre-warming the characterisation memo (table1, fig9b, thermal sweep)...");
    let t0 = Instant::now();
    prewarm_memo()?;
    let prewarm_s = t0.elapsed().as_secs_f64();
    eprintln!("  {:.1} ms", prewarm_s * 1e3);

    let exp = Experiments::new(CellDesign::table1())?;
    let ids = comparison_ids();
    let host = nvpg_exec::available_parallelism();
    let par_jobs = host.max(4);

    eprintln!("figure pass: serial (jobs = 1)...");
    let serial = run_pass(&exp, &ids, 1);
    eprintln!("  total {:.1} ms", serial.total_s * 1e3);
    eprintln!("figure pass: parallel (jobs = {par_jobs})...");
    let parallel = run_pass(&exp, &ids, par_jobs);
    eprintln!("  total {:.1} ms", parallel.total_s * 1e3);

    let fig_wall = |pass: &Pass, id: &str| {
        pass.per_figure
            .iter()
            .find(|(fid, _, _)| fid == id)
            .map(|&(_, w, _)| w)
            .unwrap_or(f64::NAN)
    };
    let fig6a_s = fig_wall(&serial, "fig6a");
    let fig6b_s = fig_wall(&serial, "fig6b");
    let speedup_6a = PR1_FIG6A_SERIAL_S / fig6a_s;
    let speedup_6b = PR1_FIG6B_SERIAL_S / fig6b_s;
    let speedup_jobs = serial.total_s / parallel.total_s;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_pr3\",");
    let _ = writeln!(json, "  \"host_parallelism\": {host},");
    let _ = writeln!(json, "  \"transient\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"nvsram_transient_100ns (sim_engine)\","
    );
    let _ = writeln!(json, "    \"wall_clock_s\": {transient_s:.6},");
    let _ = writeln!(json, "    \"steps\": {}", steps_json(&tr_steps));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"nvpg_sequence\": {{");
    let _ = writeln!(json, "    \"workload\": \"fig6a NVPG benchmark sequence\",");
    let _ = writeln!(json, "    \"steps\": {}", steps_json(&seq.steps));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"figure_regeneration\": {{");
    let _ = writeln!(
        json,
        "    \"comparison_ids\": [{}],",
        ids.iter()
            .map(|id| format!("\"{id}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "    \"memo_prewarm_s\": {prewarm_s:.6},");
    let _ = writeln!(json, "    \"serial\": {},", pass_json(&serial));
    let _ = writeln!(json, "    \"parallel\": {},", pass_json(&parallel));
    let _ = writeln!(json, "    \"speedup_vs_jobs\": {speedup_jobs:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup_vs_pr1\": {{");
    let _ = writeln!(
        json,
        "    \"fig6a\": {{\"pr1_serial_s\": {PR1_FIG6A_SERIAL_S}, \
         \"pr3_serial_s\": {fig6a_s:.6}, \"speedup\": {speedup_6a:.3}}},"
    );
    let _ = writeln!(
        json,
        "    \"fig6b\": {{\"pr1_serial_s\": {PR1_FIG6B_SERIAL_S}, \
         \"pr3_serial_s\": {fig6b_s:.6}, \"speedup\": {speedup_6b:.3}}}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"Counters under steps are deterministic (identical on every \
         host); wall/CPU seconds are not. per_figure_cpu_s is the worker thread's \
         on-CPU time. The characterisation memo is pre-warmed before both passes, so \
         fig9b/ext_thermal are timed fairly and included.\""
    );
    json.push_str("}\n");

    std::fs::write(&out, &json)?;
    eprintln!(
        "wrote {out} (fig6a {speedup_6a:.2}x, fig6b {speedup_6b:.2}x vs PR1 serial; \
         {speedup_jobs:.2}x at {par_jobs} jobs on {host} core(s))"
    );
    obs_cli::finish(&obs, &trace_dir, "bench_pr3", env!("CARGO_PKG_VERSION"))?;
    Ok(())
}
