//! `validate` — the golden-reference validation harness's entry point.
//!
//! ```text
//! validate [--check | --bless] [--goldens DIR] [--jobs N] [--lanes N]
//!          [--random N] [--fuzz N] [--seed S] [--no-ngspice] [--deck ID]...
//! ```
//!
//! * `--check` (the default) runs, in order: the full differential
//!   matrix (dense×sparse × serial×batched, DC + transient, plus the
//!   jobs-invariance bit-compare), the committed-golden comparison for
//!   every registry deck, `--random N` seeded random-netlist
//!   equivalence points, a `--fuzz N`-iteration mutation smoke loop
//!   over the hostile corpus, and — when an `ngspice` binary is on
//!   `PATH` — the external-oracle cross-check (absent binary = counted
//!   skip, never a failure). Exit 0 when everything passes, 1 when any
//!   check fails, 2 on usage errors.
//! * `--bless` regenerates `goldens/` — but refuses, writing nothing,
//!   while the differential matrix disagrees with itself.
//!
//! Output is a [`ValidationReport`]: the familiar run-report summary
//! plus a failures appendix tagged with the same taxonomy the figures
//! pipeline uses, followed by the `validate.*` counter totals.

use std::process::ExitCode;

use nvpg_circuit::registry::fuzz_smoke;
use nvpg_core::validate::golden::{bless, check_goldens, default_goldens_dir};
use nvpg_core::validate::{
    run_matrix, run_ngspice_checks, run_random_equivalence, MatrixConfig, Tolerance,
    ValidationReport,
};
use nvpg_obs::metrics::counters;

fn usage() -> ! {
    eprintln!(
        "usage: validate [--check | --bless] [--goldens DIR] [--jobs N] [--lanes N]\n\
         \x20               [--random N] [--fuzz N] [--seed S] [--no-ngspice] [--deck ID]..."
    );
    std::process::exit(2);
}

struct Options {
    bless: bool,
    goldens: std::path::PathBuf,
    jobs: usize,
    lanes: usize,
    random: u64,
    fuzz: u64,
    seed: u64,
    ngspice: bool,
    decks: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            bless: false,
            goldens: default_goldens_dir(),
            jobs: 0,
            lanes: 4,
            random: 40,
            fuzz: 2000,
            seed: 0x5eed,
            ngspice: true,
            decks: Vec::new(),
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs an unsigned integer");
                usage();
            })
        };
        match arg.as_str() {
            "--check" => opts.bless = false,
            "--bless" => opts.bless = true,
            "--goldens" => opts.goldens = args.next().unwrap_or_else(|| usage()).into(),
            "--jobs" => opts.jobs = num("--jobs") as usize,
            "--lanes" => opts.lanes = num("--lanes") as usize,
            "--random" => opts.random = num("--random"),
            "--fuzz" => opts.fuzz = num("--fuzz"),
            "--seed" => opts.seed = num("--seed"),
            "--no-ngspice" => opts.ngspice = false,
            "--deck" => opts.decks.push(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    opts
}

fn matrix_config(opts: &Options) -> MatrixConfig {
    MatrixConfig {
        jobs: opts.jobs,
        batch_lanes: opts.lanes,
        decks: if opts.decks.is_empty() {
            None
        } else {
            Some(opts.decks.clone())
        },
        ..MatrixConfig::default()
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    nvpg_obs::enable_metrics();
    let cfg = matrix_config(&opts);

    if opts.bless {
        match bless(&opts.goldens, &cfg) {
            Ok(written) => {
                println!(
                    "blessed {} goldens into {}:",
                    written.len(),
                    opts.goldens.display()
                );
                for path in written {
                    println!("  {}", path.display());
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut report = ValidationReport::new();

    println!("== differential matrix ==");
    report.extend(run_matrix(&cfg));

    // Golden comparison only makes sense over the full registry; a
    // --deck-filtered run is a matrix drill-down, not a golden audit.
    if opts.decks.is_empty() {
        println!("== committed goldens ==");
        check_goldens(&opts.goldens, &mut report);
    }

    if opts.random > 0 {
        println!("== random-netlist equivalence ({} seeds) ==", opts.random);
        report.extend(run_random_equivalence(
            opts.random,
            opts.seed,
            &Tolerance::MATRIX,
        ));
    }

    if opts.fuzz > 0 {
        println!("== fuzz smoke ({} mutants) ==", opts.fuzz);
        match fuzz_smoke(opts.fuzz, opts.seed) {
            Ok(cases) => {
                counters::VALIDATE_FUZZ_CASES.add(cases);
                report.pass("fuzz:smoke", format!("{cases} mutants, no panic"));
            }
            Err(e) => report.fail(
                "fuzz:smoke",
                format!("seed {:#x}", opts.seed),
                "fuzz_panic",
                e,
            ),
        }
    }

    if opts.ngspice {
        println!("== ngspice oracle ==");
        run_ngspice_checks(&mut report);
    }

    println!();
    print!("{report}");
    let snap = nvpg_obs::metrics::snapshot();
    println!("validate counters:");
    for (name, value) in &snap.counters {
        if name.starts_with("validate.") {
            println!("  {name} = {value}");
        }
    }

    if report.passed() {
        println!("validation PASSED");
        ExitCode::SUCCESS
    } else {
        println!("validation FAILED");
        ExitCode::FAILURE
    }
}
