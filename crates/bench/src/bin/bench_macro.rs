//! Machine-readable snapshot of the macro generator path: a full-array
//! nonvolatile power cycle on a generated 16×16 NV-SRAM macro (sparse
//! backend), and the macro-level break-even-time scan across gating
//! granularity × retention technology × architecture.
//!
//! ```text
//! bench_macro [--out FILE] [--check]
//! ```
//!
//! Writes `BENCH_PR10.json` (or `FILE`) containing:
//!
//! * **16×16 full cycle** — `nvpg-macro` builds the complete macro
//!   netlist (cell array, decoder chains, wordline drivers, precharge,
//!   column mux, sense amps, write drivers, replica bitline, distributed
//!   WL/BL RC) and runs store → shutdown (super cutoff) → hold →
//!   restore on the sparse backend; every one of the 256 data bits must
//!   survive the power-down bit-exactly, and the written retention
//!   states must be a consistent function of the stored data;
//! * **macro BET scan** — [`nvpg_core::bet_macro_scan`] over
//!   {per_domain, per_bank2, per_row} × {mtj, fefet, nand_spin} ×
//!   {NVPG, NOF}, each point priced with the solved macro's always-on
//!   periphery overhead and the granularity's half-array shutdown
//!   policy, BET against the OSR baseline.
//!
//! `--check` is the CI gate for this PR: the 16×16 cycle must preserve
//! all 256 bits through shutdown, and the scan must answer a finite BET
//! for at least one NVPG and one NOF point of every technology.

use std::error::Error;
use std::fmt::Write as _;
use std::time::Instant;

use nvpg_cells::design::RetentionKind;
use nvpg_circuit::SolverChoice;
use nvpg_core::{
    bet_macro_scan, BatchMode, BenchmarkParams, Granularity, MacroScanPoint, MacroSpec,
};
use nvpg_macro::NvMacro;

/// Rows and columns of the acceptance macro.
const CYCLE_EDGE: usize = 16;
/// Column-mux ratio of the acceptance macro (4 sense amps).
const CYCLE_MUX: usize = 4;
/// Power-gating banks of the acceptance macro.
const CYCLE_BANKS: usize = 4;
/// Dark time between shutdown and restore, seconds.
const CYCLE_HOLD_S: f64 = 20e-9;

/// The seed data pattern (same checkerboard the engine scans use, so
/// both cell polarities and both retention states are exercised).
fn checkerboard(r: usize, c: usize) -> bool {
    (r + c).is_multiple_of(2)
}

struct CycleRun {
    unknowns: usize,
    bits: usize,
    preserved: usize,
    /// Written retention states are one consistent pair per data value.
    states_consistent: bool,
    /// Worst |v(Q) − v(QB)| over the array after restore, volts.
    margin_v: f64,
    static_power_w: f64,
    store_s: f64,
    shutdown_s: f64,
    hold_s: f64,
    restore_s: f64,
    /// Accepted transient steps over the whole cycle.
    steps: u64,
}

/// Builds the 16×16 macro, solves its operating point on the sparse
/// backend, and runs the full store → shutdown → hold → restore cycle.
fn full_cycle() -> Result<CycleRun, Box<dyn Error>> {
    let spec = MacroSpec::new(CYCLE_EDGE, CYCLE_EDGE, CYCLE_MUX)
        .with_granularity(Granularity::PerBank(CYCLE_BANKS));
    let mut m = NvMacro::with_solver(spec, SolverChoice::Sparse, checkerboard)?;
    let unknowns = m.unknown_count();
    let static_power_w = m.static_power();
    let before = m.pattern();
    let groups: Vec<usize> = (0..spec.groups()).collect();

    let t0 = Instant::now();
    m.store(&groups)?;
    let store_s = t0.elapsed().as_secs_f64();

    // The retention states the store wrote must be one consistent
    // (left, right) pair for data=1 and the mirrored pair for data=0 —
    // checked against the *pre-cycle* data so a latch flip cannot hide.
    let mut one_state = None;
    let mut zero_state = None;
    let mut states_consistent = true;
    for (r, row) in before.iter().enumerate() {
        for (c, &bit) in row.iter().enumerate() {
            let pair = m.mtj_states(r, c).ok_or("macro lost its NV elements")?;
            let slot = if bit { &mut one_state } else { &mut zero_state };
            match slot {
                None => *slot = Some(pair),
                Some(p) => states_consistent &= *p == pair,
            }
        }
    }
    states_consistent &= one_state != zero_state;

    let t0 = Instant::now();
    m.shutdown(&groups, true)?;
    let shutdown_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    m.hold(CYCLE_HOLD_S)?;
    let hold_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    m.restore(&groups)?;
    let restore_s = t0.elapsed().as_secs_f64();

    let mut preserved = 0usize;
    for (r, row) in before.iter().enumerate() {
        for (c, &bit) in row.iter().enumerate() {
            preserved += usize::from(m.data(r, c) == bit);
        }
    }
    Ok(CycleRun {
        unknowns,
        bits: CYCLE_EDGE * CYCLE_EDGE,
        preserved,
        states_consistent,
        margin_v: m.min_storage_margin(),
        static_power_w,
        store_s,
        shutdown_s,
        hold_s,
        restore_s,
        steps: m.step_stats().accepted_steps,
    })
}

/// The scan's granularity axis: whole-array, half-banked, per-row.
const GRANULARITIES: [Granularity; 3] = [
    Granularity::PerDomain,
    Granularity::PerBank(2),
    Granularity::PerRow,
];

fn scan() -> Result<Vec<MacroScanPoint>, Box<dyn Error>> {
    let params = BenchmarkParams::fig7_default();
    Ok(bet_macro_scan(
        4,
        4,
        2,
        &GRANULARITIES,
        &RetentionKind::LABELS,
        &params,
        1,
        BatchMode::Auto,
    )?)
}

fn check() -> Result<(), Box<dyn Error>> {
    let mut failures = Vec::new();

    eprintln!("16x16 macro full power cycle on the sparse backend...");
    let cycle = full_cycle()?;
    eprintln!(
        "  {} unknowns, {}/{} bits preserved, margin {:.3} V, {} steps",
        cycle.unknowns, cycle.preserved, cycle.bits, cycle.margin_v, cycle.steps
    );
    if cycle.preserved != cycle.bits {
        failures.push(format!(
            "{} of {} bits lost through the shutdown cycle",
            cycle.bits - cycle.preserved,
            cycle.bits
        ));
    }
    if !cycle.states_consistent {
        failures.push("stored retention states are not a consistent function of the data".into());
    }
    if cycle.margin_v < 0.3 {
        failures.push(format!(
            "post-restore storage margin {:.3} V (gate: >= 0.3 V)",
            cycle.margin_v
        ));
    }

    eprintln!("macro BET scan (granularity x technology x architecture)...");
    let points = scan()?;
    let expected = GRANULARITIES.len() * RetentionKind::LABELS.len() * 2;
    if points.len() != expected {
        failures.push(format!(
            "scan answered {} points (expected {expected})",
            points.len()
        ));
    }
    for p in &points {
        if !(p.static_power.is_finite() && p.static_power > 0.0) || p.unknowns == 0 {
            failures.push(format!(
                "degenerate scan point {}/{}/{}: {} unknowns, {:e} W",
                p.arch, p.technology, p.granularity, p.unknowns, p.static_power
            ));
        }
    }
    for tech in RetentionKind::LABELS {
        for arch in ["NVPG", "NOF"] {
            if !points
                .iter()
                .any(|p| p.technology == tech && p.arch.to_string() == arch && p.bet.is_some())
            {
                failures.push(format!(
                    "no finite BET for {arch}/{tech} at any granularity"
                ));
            }
        }
    }

    if failures.is_empty() {
        eprintln!(
            "check OK ({}/{} bits, {} scan points)",
            cycle.preserved,
            cycle.bits,
            points.len()
        );
        Ok(())
    } else {
        Err(format!("macro check failed:\n  {}", failures.join("\n  ")).into())
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut out = String::from("BENCH_PR10.json");
    let mut check_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().ok_or("--out requires a path")?,
            "--check" => check_only = true,
            "--help" | "-h" => {
                println!("usage: bench_macro [--out FILE] [--check]");
                return Ok(());
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    if check_only {
        return check();
    }

    eprintln!(
        "16x16 macro (mux {CYCLE_MUX}, {CYCLE_BANKS} banks): full power cycle, sparse backend..."
    );
    let cycle = full_cycle()?;
    eprintln!(
        "  {} unknowns; store {:.2} s, shutdown {:.2} s, hold {:.2} s, restore {:.2} s; \
         {}/{} bits preserved, margin {:.3} V",
        cycle.unknowns,
        cycle.store_s,
        cycle.shutdown_s,
        cycle.hold_s,
        cycle.restore_s,
        cycle.preserved,
        cycle.bits,
        cycle.margin_v
    );

    eprintln!("macro BET scan: 3 granularities x 3 technologies x {{NVPG, NOF}}...");
    let t0 = Instant::now();
    let points = scan()?;
    let scan_s = t0.elapsed().as_secs_f64();
    eprintln!("  {} points in {:.2} s", points.len(), scan_s);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"generated_by\": \"bench_macro\",");
    let _ = writeln!(json, "  \"full_cycle_16x16\": {{");
    let _ = writeln!(
        json,
        "    \"rows\": {CYCLE_EDGE}, \"cols\": {CYCLE_EDGE}, \"mux\": {CYCLE_MUX}, \
         \"banks\": {CYCLE_BANKS}, \"solver\": \"sparse\","
    );
    let _ = writeln!(
        json,
        "    \"unknowns\": {}, \"bits\": {}, \"bits_preserved\": {}, \
         \"states_consistent\": {},",
        cycle.unknowns, cycle.bits, cycle.preserved, cycle.states_consistent
    );
    let _ = writeln!(
        json,
        "    \"margin_v\": {:.4}, \"static_power_w\": {:.6e}, \"steps\": {},",
        cycle.margin_v, cycle.static_power_w, cycle.steps
    );
    let _ = writeln!(
        json,
        "    \"store_s\": {:.3}, \"shutdown_s\": {:.3}, \"hold_s\": {:.3}, \"restore_s\": {:.3}",
        cycle.store_s, cycle.shutdown_s, cycle.hold_s, cycle.restore_s
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"macro_bet_scan\": {{");
    let _ = writeln!(
        json,
        "    \"rows\": 4, \"cols\": 4, \"mux\": 2, \"wall_s\": {scan_s:.3},"
    );
    let _ = writeln!(json, "    \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let bet = match p.bet {
            Some(t) => format!("{t:.6e}"),
            None => "null".to_owned(),
        };
        let _ = writeln!(
            json,
            "      {{\"arch\": \"{}\", \"technology\": \"{}\", \"granularity\": \"{}\", \
             \"unknowns\": {}, \"static_power_w\": {:.6e}, \"periphery_overhead_w\": {:.6e}, \
             \"gated_fraction\": {:.4}, \"bet_s\": {bet}}}{}",
            p.arch,
            p.technology,
            p.granularity,
            p.unknowns,
            p.static_power,
            p.periphery_overhead,
            p.gated_fraction,
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"notes\": \"full_cycle_16x16: nvpg-macro generates the complete 16x16 NV-SRAM \
         macro netlist (decoders, wordline drivers, precharge, column mux, sense amps, write \
         drivers, replica bitline, distributed WL/BL RC) and runs store -> shutdown (super \
         cutoff) -> hold -> restore on the sparse backend; bits_preserved counts exact \
         data survival. macro_bet_scan: bet_macro_scan prices each granularity's shutdown \
         policy and the solved macro's always-on periphery into the closed-form BET against \
         the OSR baseline, per retention technology.\""
    );
    json.push_str("}\n");

    std::fs::write(&out, &json)?;
    eprintln!(
        "wrote {out} ({}/{} bits, {} scan points)",
        cycle.preserved,
        cycle.bits,
        points.len()
    );
    Ok(())
}
