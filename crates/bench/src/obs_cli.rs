//! Shared `--trace`/`--profile` plumbing for the benchmark binaries.
//!
//! Every binary that grows tracing flags does the same three things:
//! enable the collector up front, and at exit drain the span buffer into
//! (a) on-disk artefacts — `trace.jsonl`, `manifest.json`,
//! `profile.folded` — and (b) a per-phase self-time table on stderr.
//! This module holds that plumbing so the binaries stay flag parsing +
//! two calls.
//!
//! Everything here writes to `stderr` or to files; `stdout` is reserved
//! for figure data and must stay byte-identical whether or not tracing
//! is on.

use std::error::Error;
use std::path::Path;

use nvpg_obs::{MetricsSnapshot, SpanEvent};

/// What the tracing flags asked for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsOptions {
    /// `--trace`: write `trace.jsonl` + `manifest.json` into the trace
    /// directory.
    pub trace: bool,
    /// `--profile`: print the self-time table to stderr and write
    /// `profile.folded` into the trace directory.
    pub profile: bool,
}

impl ObsOptions {
    /// `true` when any collection was requested.
    pub fn active(&self) -> bool {
        self.trace || self.profile
    }

    /// Enables the global collector when any flag asked for it. Call
    /// once, right after argument parsing.
    pub fn install(&self) {
        if self.active() {
            nvpg_obs::enable();
        }
    }
}

/// Drains the collector and writes the requested artefacts for `tool`.
///
/// With `trace`: `DIR/trace.jsonl` (spans + final metric values, one
/// JSON object per line) and `DIR/manifest.json` (tool, args, git rev,
/// host). With `profile`: the self-time table on stderr and
/// `DIR/profile.folded` (collapsed stacks, one `a;b;c µs` per line).
/// No-op when neither flag is set.
///
/// # Errors
///
/// Propagates filesystem errors creating or writing the trace directory.
pub fn finish(
    opts: &ObsOptions,
    dir: &Path,
    tool: &str,
    version: &str,
) -> Result<(), Box<dyn Error>> {
    if !opts.active() {
        return Ok(());
    }
    nvpg_obs::disable();
    let events: Vec<SpanEvent> = nvpg_obs::drain_events();
    let metrics: MetricsSnapshot = nvpg_obs::metrics::snapshot();
    std::fs::create_dir_all(dir)?;
    if opts.trace {
        let jsonl = nvpg_obs::to_jsonl(&events, &metrics);
        let path = dir.join("trace.jsonl");
        std::fs::write(&path, jsonl)?;
        eprintln!("  wrote {} ({} span(s))", path.display(), events.len());
        let manifest = nvpg_obs::RunManifest::collect(tool, version);
        let path = dir.join("manifest.json");
        std::fs::write(&path, manifest.to_json())?;
        eprintln!("  wrote {}", path.display());
    }
    if opts.profile {
        let rows = nvpg_obs::self_time_table(&events);
        eprint!("{}", nvpg_obs::render_self_time_table(&rows));
        let path = dir.join("profile.folded");
        std::fs::write(&path, nvpg_obs::collapsed_stacks(&events))?;
        eprintln!("  wrote {}", path.display());
    }
    Ok(())
}
