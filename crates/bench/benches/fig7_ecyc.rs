//! Fig. 7(a)-(c): E_cyc vs n_RW families (closed-form composition over
//! the cached characterisation).

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::Experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    let mut g = c.benchmark_group("fig7");
    g.bench_function("fig7a_ecyc_vs_nrw", |b| b.iter(|| black_box(&exp).fig7a()));
    g.bench_function("fig7b_ecyc_vs_nrw_domain_sizes", |b| {
        b.iter(|| black_box(&exp).fig7b())
    });
    g.bench_function("fig7c_ecyc_vs_nrw_tsd", |b| {
        b.iter(|| black_box(&exp).fig7c())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
