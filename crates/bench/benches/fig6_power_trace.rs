//! Fig. 6: the cell-level transient benchmark sequences (power traces)
//! and the per-mode static-power table.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::sequence::{run_sequence, SequenceParams};
use nvpg_core::{Architecture, Experiments};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let design = CellDesign::table1();
    let params = SequenceParams {
        n_rw: 1,
        t_sl: 20e-9,
        t_sd: 50e-9,
    };
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    for arch in Architecture::ALL {
        g.bench_function(format!("fig6a_sequence_{arch}"), |b| {
            b.iter(|| run_sequence(black_box(&design), arch, &params).expect("sequence"))
        });
    }
    let exp = Experiments::new(design).expect("characterisation");
    g.bench_function("fig6c_static_power", |b| {
        b.iter(|| black_box(&exp).fig6c().expect("fig6c"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
