//! Table I: times the full cell characterisation (the simulation flow
//! behind every figure) and the parameter-echo itself.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::characterize::characterize;
use nvpg_cells::design::CellDesign;
use nvpg_core::Experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("characterize_table1_design", |b| {
        b.iter(|| characterize(black_box(&CellDesign::table1())).expect("characterisation"))
    });
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    g.bench_function("table1_rows", |b| b.iter(|| black_box(&exp).table1_rows()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
