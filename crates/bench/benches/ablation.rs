//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Integration method** — backward Euler (default) vs trapezoidal on
//!   the read-energy measurement: quantifies the cost/accuracy trade of
//!   the L-stable default.
//! * **Time-step ceiling** — store-energy extraction at dt_max ∈
//!   {25, 100, 400} ps: how coarse the transient can run before the
//!   energy figures drift.
//! * **MTCMOS V_th boost** — the high-V_th power switch (0.15 V boost by
//!   default): static-power table extraction across boost values, the
//!   knob that separates shutdown from sleep power.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::bench::CellBench;
use nvpg_cells::cell::{CellKind, MtjConfig};
use nvpg_cells::characterize::static_power_by_mode;
use nvpg_cells::design::CellDesign;
use std::hint::black_box;

fn read_energy(design: &CellDesign) -> f64 {
    let mut bench =
        CellBench::new(*design, CellKind::NvSram, true, MtjConfig::stored(true)).expect("cell");
    bench.read().expect("read").energy.0
}

fn store_energy(design: &CellDesign) -> f64 {
    let mut bench =
        CellBench::new(*design, CellKind::NvSram, true, MtjConfig::stored(false)).expect("cell");
    bench
        .store()
        .expect("store")
        .iter()
        .map(|p| p.energy.0)
        .sum()
}

fn bench(c: &mut Criterion) {
    let design = CellDesign::table1();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    // Print the accuracy side of the ablations once, so the bench report
    // carries the numbers alongside the timings.
    let e_store = store_energy(&design);
    eprintln!("ablation: E_store (default dt ceiling) = {:.4e} J", e_store);
    for boost in [0.0, 0.15, 0.25] {
        let mut d = design;
        d.power_switch_vth_boost = boost;
        let t = static_power_by_mode(&d).expect("static power");
        eprintln!(
            "ablation: Vth boost {boost} V -> P_shutdown = {:.3e} W, super cutoff = {:.3e} W",
            t.p_nv_shutdown, t.p_nv_shutdown_super
        );
    }

    g.bench_function("read_energy_backward_euler", |b| {
        b.iter(|| read_energy(black_box(&design)))
    });
    g.bench_function("store_energy_extraction", |b| {
        b.iter(|| store_energy(black_box(&design)))
    });
    g.bench_function("static_power_vth_boost_sweep", |b| {
        b.iter(|| {
            for boost in [0.0, 0.15, 0.25] {
                let mut d = design;
                d.power_switch_vth_boost = boost;
                let _ = static_power_by_mode(black_box(&d)).expect("static power");
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
