//! Fig. 3(a)-(c): leakage vs V_CTRL and the two store-current
//! characteristics (DC sweeps over the NV-SRAM cell).

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::Experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3a_leakage_vs_vctrl", |b| {
        b.iter(|| black_box(&exp).fig3a().expect("fig3a"))
    });
    g.bench_function("fig3b_store_current_vs_vsr", |b| {
        b.iter(|| black_box(&exp).fig3b().expect("fig3b"))
    });
    g.bench_function("fig3c_store_current_vs_vctrl", |b| {
        b.iter(|| black_box(&exp).fig3c().expect("fig3c"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
