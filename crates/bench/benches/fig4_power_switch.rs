//! Fig. 4: virtual-V_DD vs power-switch fin count (10 cell rebuilds and
//! DC solves per regeneration).

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::Experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("fig4_vvdd_vs_nfsw", |b| {
        b.iter(|| black_box(&exp).fig4().expect("fig4"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
