//! Fig. 9(a)/(b): BET vs domain size, with store-free shutdown and the
//! fast-technology point.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::bet::{bet_closed_form, bet_iterative};
use nvpg_core::{Architecture, BenchmarkParams, Experiments};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    let mut g = c.benchmark_group("fig9");
    g.bench_function("fig9a_bet_vs_rows", |b| b.iter(|| black_box(&exp).fig9a()));
    let params = BenchmarkParams::fig7_default();
    g.bench_function("bet_closed_form_single", |b| {
        b.iter(|| bet_closed_form(black_box(exp.model()), Architecture::Nvpg, &params))
    });
    g.bench_function("bet_iterative_single", |b| {
        b.iter(|| bet_iterative(black_box(exp.model()), Architecture::Nvpg, &params, 1.0))
    });
    g.sample_size(10);
    g.bench_function("fig9b_fast_tech_point", |b| {
        b.iter(|| Experiments::fig9b().expect("fig9b"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
