//! Simulator-engine performance: the primitives every figure is built
//! from — dense LU factorisation across MNA-typical sizes, the NV-SRAM
//! cell DC operating point, and transient throughput (steps/second) on
//! the cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvpg_cells::cell::{build_cell, CellKind, MtjConfig};
use nvpg_cells::design::CellDesign;
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::Circuit;
use nvpg_numeric::{DenseMatrix, LuWorkspace};
use std::hint::black_box;

fn lu_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu");
    for n in [8usize, 16, 32, 64] {
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 31 + j * 17) % 23) as f64 / 23.0;
            }
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        // Factor allocates fresh `LuFactors` each iteration, but the solve
        // goes through the non-allocating `solve_into` path like every
        // other call-site in the tree.
        let mut x_factors = vec![0.0; n];
        g.bench_with_input(BenchmarkId::new("factor_and_solve", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(&a)
                    .lu()
                    .expect("nonsingular")
                    .solve_into(black_box(&b), &mut x_factors);
                black_box(x_factors[0])
            })
        });
        // The zero-allocation path the Newton loop runs: same
        // factorisation arithmetic, but into a reused workspace and a
        // caller-owned solution buffer.
        let mut ws = LuWorkspace::with_dim(n);
        let mut x = vec![0.0; n];
        g.bench_with_input(
            BenchmarkId::new("workspace_factor_and_solve", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    ws.factor_from(black_box(&a)).expect("nonsingular");
                    ws.solve_into(black_box(&b), &mut x);
                    black_box(x[0])
                })
            },
        );
    }
    g.finish();
}

fn cell_bench(c: &mut Criterion) {
    let design = CellDesign::table1();
    let mut g = c.benchmark_group("cell");
    g.bench_function("nvsram_dc_operating_point", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let nodes = build_cell(&mut ckt, &design, CellKind::NvSram, MtjConfig::stored(true))
                .expect("cell");
            let opts = DcOptions::default()
                .with_nodeset(nodes.q, 0.9)
                .with_nodeset(nodes.qb, 0.0)
                .with_nodeset(nodes.vvdd, 0.9)
                .with_nodeset(nodes.bl, 0.9)
                .with_nodeset(nodes.blb, 0.9);
            operating_point(&mut ckt, &opts).expect("op")
        })
    });
    g.bench_function("nvsram_transient_100ns", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            let nodes = build_cell(&mut ckt, &design, CellKind::NvSram, MtjConfig::stored(true))
                .expect("cell");
            let opts = DcOptions::default()
                .with_nodeset(nodes.q, 0.9)
                .with_nodeset(nodes.qb, 0.0)
                .with_nodeset(nodes.vvdd, 0.9)
                .with_nodeset(nodes.bl, 0.9)
                .with_nodeset(nodes.blb, 0.9);
            let op = operating_point(&mut ckt, &opts).expect("op");
            let topts = TransientOptions {
                t_stop: 100e-9,
                dt_max: 100e-12,
                dt_init: 1e-12,
                ..TransientOptions::default()
            };
            transient(&mut ckt, &topts, &op).expect("transient")
        })
    });
    g.finish();
}

criterion_group!(benches, lu_bench, cell_bench);
criterion_main!(benches);
