//! Fig. 8(a)/(b): E_cyc vs t_SD and the normalised BET read-off curves.

use criterion::{criterion_group, criterion_main, Criterion};
use nvpg_cells::design::CellDesign;
use nvpg_core::Experiments;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let exp = Experiments::new(CellDesign::table1()).expect("characterisation");
    let mut g = c.benchmark_group("fig8");
    g.bench_function("fig8a_ecyc_vs_tsd", |b| b.iter(|| black_box(&exp).fig8a()));
    g.bench_function("fig8b_normalized_ecyc", |b| {
        b.iter(|| black_box(&exp).fig8b())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
