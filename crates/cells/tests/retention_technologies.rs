//! Cross-technology cell checks: every [`RetentionKind`] must survive the
//! paper's full store → shutdown → restore sequence with the *same*
//! control waveforms, and the MTJ-through-trait path must be bit-identical
//! to the historical direct-construction path.

use nvpg_cells::bench::CellBench;
use nvpg_cells::cell::{build_cell, sources, CellKind, MtjConfig};
use nvpg_cells::design::{CellDesign, RetentionKind};
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, SolverChoice, Waveform};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::{Mtj, MtjState};

/// Store of `Q = data` then power-off then restore must bring `data`
/// back, for every supported retention technology.
#[test]
fn all_technologies_survive_a_power_cycle() {
    for label in RetentionKind::LABELS {
        for data in [true, false] {
            let design = CellDesign::for_technology(label).unwrap();
            // Elements start holding the OPPOSITE data so the store has
            // to genuinely switch both of them.
            let mut bench =
                CellBench::new(design, CellKind::NvSram, data, MtjConfig::stored(!data)).unwrap();
            bench.write(data).unwrap();
            bench.store().unwrap();
            assert_eq!(
                bench.mtj_states(),
                Some(if data {
                    (MtjState::AntiParallel, MtjState::Parallel)
                } else {
                    (MtjState::Parallel, MtjState::AntiParallel)
                }),
                "{label}: store(Q={data}) did not switch both elements"
            );
            bench.shutdown_enter(true, 3e-9).unwrap();
            bench.idle(500e-9).unwrap();
            bench.restore().unwrap();
            assert_eq!(
                bench.data(),
                data,
                "{label}: data lost across the power cycle"
            );
        }
    }
}

/// Replicates the pre-refactor NV cell netlist — identical construction
/// sequence, but with the MTJs instantiated *directly* via [`Mtj::new`]
/// instead of through the [`RetentionDevice`] trait dispatch.
fn legacy_nv_cell(design: &CellDesign, mtjs: MtjConfig) -> Circuit {
    let c = &design.conditions;
    let mut ckt = Circuit::new();
    let gnd = Circuit::GROUND;
    let vdd_rail = ckt.node("vdd_rail");
    let vvdd = ckt.node("vvdd");
    let q = ckt.node("q");
    let qb = ckt.node("qb");
    let bl = ckt.node("bl");
    let blb = ckt.node("blb");
    let bl_drv = ckt.node("bl_drv");
    let blb_drv = ckt.node("blb_drv");
    let wl = ckt.node("wl");
    let pg = ckt.node("pg");
    ckt.vsource(sources::VDD, vdd_rail, gnd, c.vdd).unwrap();
    ckt.vsource(sources::VPG, pg, gnd, 0.0).unwrap();
    ckt.vsource(sources::VWL, wl, gnd, 0.0).unwrap();
    ckt.vsource(sources::VBL, bl_drv, gnd, c.vdd).unwrap();
    ckt.vsource(sources::VBLB, blb_drv, gnd, c.vdd).unwrap();
    let mut sw_params = design.pmos.with_fins(design.fins_power_switch);
    sw_params.vth0 += design.power_switch_vth_boost;
    ckt.device(Box::new(FinFet::new("msw", vvdd, pg, vdd_rail, sw_params)))
        .unwrap();
    let pu = design.pmos.with_fins(design.fins_load);
    let pd = design.nmos.with_fins(design.fins_driver);
    let pa = design.nmos.with_fins(design.fins_access);
    ckt.device(Box::new(FinFet::new("mpul", q, qb, vvdd, pu)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpur", qb, q, vvdd, pu)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpdl", q, qb, gnd, pd)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpdr", qb, q, gnd, pd)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpgl", bl, wl, q, pa)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpgr", blb, wl, qb, pa)))
        .unwrap();
    ckt.capacitor("cbl", bl, gnd, design.c_bitline).unwrap();
    ckt.capacitor("cblb", blb, gnd, design.c_bitline).unwrap();
    ckt.resistor("rbl", bl_drv, bl, design.r_bitline_driver)
        .unwrap();
    ckt.resistor("rblb", blb_drv, blb, design.r_bitline_driver)
        .unwrap();
    let sr = ckt.node("sr");
    let ctrl = ckt.node("ctrl");
    let ml = ckt.node("ml");
    let mr = ckt.node("mr");
    let mla = ckt.node("mla");
    let mra = ckt.node("mra");
    ckt.vsource(sources::VSR, sr, gnd, 0.0).unwrap();
    ckt.vsource(sources::VCTRL, ctrl, gnd, c.v_ctrl_normal)
        .unwrap();
    let ps = design.nmos.with_fins(design.fins_ps);
    ckt.device(Box::new(FinFet::new("mpsl", q, sr, ml, ps)))
        .unwrap();
    ckt.device(Box::new(FinFet::new("mpsr", qb, sr, mr, ps)))
        .unwrap();
    ckt.vsource(sources::IAM_L, ml, mla, 0.0).unwrap();
    ckt.vsource(sources::IAM_R, mr, mra, 0.0).unwrap();
    ckt.device(Box::new(Mtj::new("xl", ctrl, mla, design.mtj, mtjs.left)))
        .unwrap();
    ckt.device(Box::new(Mtj::new("xr", ctrl, mra, design.mtj, mtjs.right)))
        .unwrap();
    ckt
}

/// MTJ results through the `RetentionDevice` trait are bit-identical to
/// the pre-refactor direct-construction path — DC operating point and a
/// full store-H transient, on both the dense and the sparse backend.
#[test]
fn mtj_through_trait_is_bit_identical_to_direct_path() {
    let design = CellDesign::table1();
    let mtjs = MtjConfig::stored(false);
    for solver in [SolverChoice::Dense, SolverChoice::Sparse] {
        let run = |mut ckt: Circuit| {
            let q = ckt.node("q");
            let qb = ckt.node("qb");
            let vvdd = ckt.node("vvdd");
            let bl = ckt.node("bl");
            let blb = ckt.node("blb");
            let c = design.conditions;
            let opts = DcOptions {
                solver,
                ..DcOptions::default()
            }
            .with_nodeset(q, c.vdd)
            .with_nodeset(qb, 0.0)
            .with_nodeset(vvdd, c.vdd)
            .with_nodeset(bl, c.vdd)
            .with_nodeset(blb, c.vdd);
            let op = operating_point(&mut ckt, &opts).unwrap();
            // Store-H drive: SR up, CTRL to ground, over the paper's
            // 10 ns pulse.
            let e = c.edge_time;
            ckt.set_source(sources::VSR, Waveform::Pwl(vec![(0.0, 0.0), (e, c.v_sr)]))
                .unwrap();
            ckt.set_source(
                sources::VCTRL,
                Waveform::Pwl(vec![(0.0, c.v_ctrl_normal), (e, 0.0)]),
            )
            .unwrap();
            let topts = TransientOptions {
                t_stop: c.store_duration,
                solver,
                ..TransientOptions::default()
            };
            let res = transient(&mut ckt, &topts, &op).unwrap();
            let mut sig: Vec<(String, f64)> = ckt.device_state("xl").unwrap();
            sig.extend(ckt.device_state("xr").unwrap());
            (
                op.as_slice().to_vec(),
                res.final_state.as_slice().to_vec(),
                sig,
            )
        };
        let mut via_trait = Circuit::new();
        build_cell(&mut via_trait, &design, CellKind::NvSram, mtjs).unwrap();
        let (dc_a, tr_a, st_a) = run(via_trait);
        let (dc_b, tr_b, st_b) = run(legacy_nv_cell(&design, mtjs));
        assert_eq!(dc_a.len(), dc_b.len(), "{solver:?}: unknown counts differ");
        for (i, (a, b)) in dc_a.iter().zip(&dc_b).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{solver:?}: DC unknown {i}");
        }
        for (i, (a, b)) in tr_a.iter().zip(&tr_b).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{solver:?}: tran unknown {i}");
        }
        assert_eq!(st_a, st_b, "{solver:?}: device state signals differ");
    }
}

/// A store must cost dramatically less energy on the voltage-switched
/// FeFET and the SOT-assisted NAND-SPIN (shorter pulse) than on the
/// baseline CIMS MTJ.
#[test]
fn store_energy_ranks_by_technology() {
    let store_energy = |label: &str| -> f64 {
        let design = CellDesign::for_technology(label).unwrap();
        let mut bench =
            CellBench::new(design, CellKind::NvSram, true, MtjConfig::stored(false)).unwrap();
        bench
            .store()
            .unwrap()
            .iter()
            .map(|p| p.energy.value())
            .sum()
    };
    let mtj = store_energy("mtj");
    let nand_spin = store_energy("nand_spin");
    assert!(
        nand_spin < 0.5 * mtj,
        "NAND-SPIN store {nand_spin:e} J should undercut MTJ {mtj:e} J"
    );
    // The FeFET path is voltage-driven; it should at minimum not cost
    // more than the CIMS store.
    let fefet = store_energy("fefet");
    assert!(
        fefet < mtj,
        "FeFET store {fefet:e} J should undercut MTJ {mtj:e} J"
    );
}
