//! Nonvolatile D flip-flop (NV-FF) with PS-FinFET/MTJ retention.
//!
//! The NVPG architecture covers not just caches but *all* bistable state:
//! the paper's companion circuits are the NV-FF of refs. \[5, 6\], where a
//! master–slave D flip-flop carries a PS-FinFET + MTJ pair on its slave
//! latch. This module builds that flip-flop at transistor level:
//!
//! * master latch: input transmission gate (transparent while `CK = 0`),
//!   inverter, feedback inverter + transmission gate (closed while
//!   `CK = 1`);
//! * slave latch: transfer gate (transparent while `CK = 1`), inverter,
//!   feedback inverter + gate (closed while `CK = 0`) — a rising-edge
//!   D-FF with `Q` on the slave's inverted node;
//! * retention: PS-FinFETs from both slave nodes through MTJs to the
//!   CTRL line, gated by SR — the same two-step store and
//!   ramp-up restore as the NV-SRAM cell;
//! * a header power switch for shutdown.
//!
//! The store/restore flow and Table I biases are shared with the SRAM
//! cell via [`CellDesign`].

use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, CircuitError, DcSolution, NodeId, Waveform};
use nvpg_devices::finfet::{FinFet, FinFetParams};
use nvpg_devices::mtj::{Mtj, MtjState};
use nvpg_units::{Joules, Seconds};

use crate::design::CellDesign;

/// Result of one flip-flop operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlopPhase {
    /// Energy delivered by all sources during the operation.
    pub energy: Joules,
    /// Operation duration.
    pub duration: Seconds,
}

/// A nonvolatile D flip-flop bench.
#[derive(Debug)]
pub struct NvFlipFlop {
    ckt: Circuit,
    design: CellDesign,
    s: NodeId,
    sb: NodeId,
    state: DcSolution,
    /// Current DC levels: (vd, vck, vckb, vsr, vctrl, vpg).
    levels: [f64; 6],
}

const SOURCES: [&str; 7] = ["vdd", "vd", "vck", "vckb", "vsr", "vctrl", "vpg"];

fn inverter(
    ckt: &mut Circuit,
    tag: &str,
    input: NodeId,
    output: NodeId,
    vvdd: NodeId,
    nmos: FinFetParams,
    pmos: FinFetParams,
) -> Result<(), CircuitError> {
    ckt.device(Box::new(FinFet::new(
        format!("mp_{tag}"),
        output,
        input,
        vvdd,
        pmos,
    )))?;
    ckt.device(Box::new(FinFet::new(
        format!("mn_{tag}"),
        output,
        input,
        Circuit::GROUND,
        nmos,
    )))?;
    Ok(())
}

/// Transmission gate between `a` and `b`: NMOS gated by `on_high`, PMOS
/// gated by `on_low` (drive them complementarily).
#[allow(clippy::too_many_arguments)] // netlist helper mirrors the schematic
fn transmission_gate(
    ckt: &mut Circuit,
    tag: &str,
    a: NodeId,
    b: NodeId,
    on_high: NodeId,
    on_low: NodeId,
    nmos: FinFetParams,
    pmos: FinFetParams,
) -> Result<(), CircuitError> {
    ckt.device(Box::new(FinFet::new(
        format!("tn_{tag}"),
        a,
        on_high,
        b,
        nmos,
    )))?;
    ckt.device(Box::new(FinFet::new(
        format!("tp_{tag}"),
        a,
        on_low,
        b,
        pmos,
    )))?;
    Ok(())
}

impl NvFlipFlop {
    /// Builds the flip-flop with `Q = q_init` latched and the MTJs in the
    /// pattern produced by storing `mtj_data`.
    ///
    /// # Errors
    ///
    /// Propagates netlist and DC-convergence errors.
    pub fn new(design: CellDesign, q_init: bool, mtj_data: bool) -> Result<Self, CircuitError> {
        let c = design.conditions;
        let gnd = Circuit::GROUND;
        let mut ckt = Circuit::new();

        let vdd_rail = ckt.node("vdd_rail");
        let vvdd = ckt.node("vvdd");
        let d = ckt.node("d");
        let ck = ckt.node("ck");
        let ckb = ckt.node("ckb");
        let m = ckt.node("m");
        let mb = ckt.node("mb");
        let fbm = ckt.node("fbm");
        let s = ckt.node("s");
        let sb = ckt.node("sb");
        let fbs = ckt.node("fbs");
        let sr = ckt.node("sr");
        let ctrl = ckt.node("ctrl");
        let ml = ckt.node("ml");
        let mr = ckt.node("mr");
        let pg = ckt.node("pg");

        // Q = sb; with CK = 0 the master is transparent (D flows to m) and
        // the slave holds. Initial D equals q_init so the settled latch is
        // consistent.
        let d0 = if q_init { c.vdd } else { 0.0 };
        ckt.vsource("vdd", vdd_rail, gnd, c.vdd)?;
        ckt.vsource("vd", d, gnd, d0)?;
        ckt.vsource("vck", ck, gnd, 0.0)?;
        ckt.vsource("vckb", ckb, gnd, c.vdd)?;
        ckt.vsource("vsr", sr, gnd, 0.0)?;
        ckt.vsource("vctrl", ctrl, gnd, c.v_ctrl_normal)?;
        ckt.vsource("vpg", pg, gnd, 0.0)?;

        let mut sw = design.pmos.with_fins(design.fins_power_switch);
        sw.vth0 += design.power_switch_vth_boost;
        ckt.device(Box::new(FinFet::new("msw", vvdd, pg, vdd_rail, sw)))?;

        let n = design.nmos.with_fins(1);
        let p = design.pmos.with_fins(1);
        // Master: D → (TG, open at CK=0) → m → inv → mb; feedback
        // mb → inv → fbm → (TG, closed at CK=1) → m.
        transmission_gate(&mut ckt, "in", d, m, ckb, ck, n, p)?;
        inverter(&mut ckt, "m", m, mb, vvdd, n, p)?;
        inverter(&mut ckt, "fbm", mb, fbm, vvdd, n, p)?;
        transmission_gate(&mut ckt, "fbm", fbm, m, ck, ckb, n, p)?;
        // Slave: mb → (TG, open at CK=1) → s → inv → sb (= Q); feedback
        // sb → inv → fbs → (TG, closed at CK=0) → s.
        transmission_gate(&mut ckt, "xfer", mb, s, ck, ckb, n, p)?;
        inverter(&mut ckt, "s", s, sb, vvdd, n, p)?;
        inverter(&mut ckt, "fbs", sb, fbs, vvdd, n, p)?;
        transmission_gate(&mut ckt, "fbs", fbs, s, ckb, ck, n, p)?;

        // Retention: PS-FinFETs from both slave nodes through MTJs to
        // CTRL (pinned layer toward the latch, free layer on CTRL — same
        // orientation as the NV-SRAM cell). The H-side junction ends up
        // antiparallel after a store.
        let ps = design.nmos.with_fins(design.fins_ps);
        ckt.device(Box::new(FinFet::new("mpsl", s, sr, ml, ps)))?;
        ckt.device(Box::new(FinFet::new("mpsr", sb, sr, mr, ps)))?;
        // Q = sb; stored data refers to Q, and s = ¬Q.
        let (l0, r0) = if mtj_data {
            (MtjState::Parallel, MtjState::AntiParallel)
        } else {
            (MtjState::AntiParallel, MtjState::Parallel)
        };
        ckt.device(Box::new(Mtj::new("xl", ctrl, ml, design.mtj, l0)))?;
        ckt.device(Box::new(Mtj::new("xr", ctrl, mr, design.mtj, r0)))?;

        // Settle: with CK = 0, m follows D and the slave is seeded to the
        // consistent state (s = ¬Q, sb = Q).
        let (vs, vsb) = if q_init { (0.0, c.vdd) } else { (c.vdd, 0.0) };
        let opts = DcOptions::default()
            .with_nodeset(vvdd, c.vdd)
            .with_nodeset(m, d0)
            .with_nodeset(mb, c.vdd - d0)
            .with_nodeset(s, vs)
            .with_nodeset(sb, vsb);
        let state = operating_point(&mut ckt, &opts)?;
        Ok(NvFlipFlop {
            ckt,
            design,
            s,
            sb,
            state,
            levels: [d0, 0.0, c.vdd, 0.0, c.v_ctrl_normal, 0.0],
        })
    }

    /// The flip-flop output `Q` in the current state.
    pub fn q(&self) -> bool {
        self.state.voltage(self.sb) > self.state.voltage(self.s)
    }

    /// Current MTJ states `(s side, sb side)`.
    pub fn mtj_states(&self) -> Option<(MtjState, MtjState)> {
        let decode = |name: &str| -> Option<MtjState> {
            let st = self.ckt.device_state(name)?;
            let v = st.iter().find(|(l, _)| l == "state")?.1;
            Some(if v > 0.5 {
                MtjState::AntiParallel
            } else {
                MtjState::Parallel
            })
        };
        Some((decode("xl")?, decode("xr")?))
    }

    fn level(&self, name: &str) -> f64 {
        match name {
            "vd" => self.levels[0],
            "vck" => self.levels[1],
            "vckb" => self.levels[2],
            "vsr" => self.levels[3],
            "vctrl" => self.levels[4],
            "vpg" => self.levels[5],
            _ => 0.0,
        }
    }

    fn set_level(&mut self, name: &str, v: f64) {
        match name {
            "vd" => self.levels[0] = v,
            "vck" => self.levels[1] = v,
            "vckb" => self.levels[2] = v,
            "vsr" => self.levels[3] = v,
            "vctrl" => self.levels[4] = v,
            "vpg" => self.levels[5] = v,
            _ => {}
        }
    }

    fn phase(
        &mut self,
        duration: f64,
        waves: &[(&str, Waveform)],
    ) -> Result<FlopPhase, CircuitError> {
        for (src, wave) in waves {
            self.ckt.set_source(src, wave.clone())?;
        }
        let opts = TransientOptions {
            t_stop: duration,
            dt_max: (duration / 400.0).clamp(1e-12, 100e-12),
            dt_init: 1e-12,
            ..TransientOptions::default()
        };
        let result = transient(&mut self.ckt, &opts, &self.state)?;
        self.state = result.final_state;
        for (src, wave) in waves {
            let end = wave.value(duration);
            self.ckt.set_source(src, end)?;
            self.set_level(src, end);
        }
        let mut energy = 0.0;
        for src in SOURCES {
            if let Ok(v) = result.trace.integral(&format!("p({src})")) {
                energy += v;
            }
        }
        Ok(FlopPhase {
            energy: Joules(energy),
            duration: Seconds(duration),
        })
    }

    fn ramp(&self, src: &str, t0: f64, to: f64) -> Waveform {
        let e = self.design.conditions.edge_time;
        let from = self.level(src);
        Waveform::Pwl(vec![(0.0, from), (t0, from), (t0 + e, to)])
    }

    /// Applies `d` and issues one rising clock edge (positive-edge
    /// triggered: `Q` becomes `d`), then returns the clock low.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn clock_in(&mut self, d: bool) -> Result<FlopPhase, CircuitError> {
        let c = self.design.conditions;
        let dv = if d { c.vdd } else { 0.0 };
        // Phase 1: settle D with CK low (master samples).
        let p1 = self.phase(1e-9, &[("vd", self.ramp("vd", 0.1e-9, dv))])?;
        // Phase 2: CK rising edge (slave captures), hold, falling edge.
        let ck = Waveform::Pwl(vec![
            (0.0, 0.0),
            (0.1e-9, 0.0),
            (0.1e-9 + c.edge_time, c.vdd),
            (1.4e-9, c.vdd),
            (1.4e-9 + c.edge_time, 0.0),
        ]);
        let ckb = Waveform::Pwl(vec![
            (0.0, c.vdd),
            (0.1e-9, c.vdd),
            (0.1e-9 + c.edge_time, 0.0),
            (1.4e-9, 0.0),
            (1.4e-9 + c.edge_time, c.vdd),
        ]);
        let p2 = self.phase(2e-9, &[("vck", ck), ("vckb", ckb)])?;
        Ok(FlopPhase {
            energy: p1.energy + p2.energy,
            duration: p1.duration + p2.duration,
        })
    }

    /// Two-step store of `Q` into the MTJs (clock held low: the slave is
    /// regenerating and drives the store current).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn store(&mut self) -> Result<FlopPhase, CircuitError> {
        let c = self.design.conditions;
        let t = c.store_duration;
        let p1 = self.phase(
            t,
            &[
                ("vsr", self.ramp("vsr", 0.0, c.v_sr)),
                ("vctrl", self.ramp("vctrl", 0.0, 0.0)),
            ],
        )?;
        let p2 = self.phase(t, &[("vctrl", self.ramp("vctrl", 0.0, c.v_ctrl_store))])?;
        let p3 = self.phase(
            1e-9,
            &[
                ("vsr", self.ramp("vsr", 0.0, 0.0)),
                ("vctrl", self.ramp("vctrl", 0.0, 0.0)),
            ],
        )?;
        Ok(FlopPhase {
            energy: p1.energy + p2.energy + p3.energy,
            duration: p1.duration + p2.duration + p3.duration,
        })
    }

    /// Powers the flip-flop off (super cutoff) and lets the rail collapse.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn shutdown(&mut self, hold: f64) -> Result<FlopPhase, CircuitError> {
        let c = self.design.conditions;
        let p1 = self.phase(2e-9, &[("vpg", self.ramp("vpg", 0.0, c.v_pg_super))])?;
        let p2 = self.phase(hold, &[])?;
        Ok(FlopPhase {
            energy: p1.energy + p2.energy,
            duration: p1.duration + p2.duration,
        })
    }

    /// Restore: SR on, staged power-switch turn-on, SR off — the slave
    /// latch resolves from the MTJ imbalance; the clock stays low so the
    /// master re-samples `D` afterwards without disturbing `Q`.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn restore(&mut self) -> Result<FlopPhase, CircuitError> {
        let c = self.design.conditions;
        let dur = c.restore_duration;
        let e = c.edge_time;
        let sr = Waveform::Pwl(vec![
            (0.0, self.level("vsr")),
            (e, c.v_sr),
            (0.7 * dur, c.v_sr),
            (0.7 * dur + e, 0.0),
        ]);
        let pg = Waveform::Pwl(vec![
            (0.0, self.level("vpg")),
            (0.05 * dur, self.level("vpg")),
            (0.45 * dur, 0.0),
        ]);
        let ctrl = Waveform::Pwl(vec![
            (0.0, self.level("vctrl")),
            (0.7 * dur, self.level("vctrl")),
            (0.7 * dur + e, c.v_ctrl_normal),
        ]);
        self.phase(dur, &[("vsr", sr), ("vpg", pg), ("vctrl", ctrl)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_both_initial_states() {
        for q in [true, false] {
            let ff = NvFlipFlop::new(CellDesign::table1(), q, q).unwrap();
            assert_eq!(ff.q(), q, "initial Q = {q}");
        }
    }

    #[test]
    fn clocks_data_through() {
        let mut ff = NvFlipFlop::new(CellDesign::table1(), false, false).unwrap();
        ff.clock_in(true).unwrap();
        assert!(ff.q(), "Q should be 1 after clocking in 1");
        ff.clock_in(false).unwrap();
        assert!(!ff.q(), "Q should be 0 after clocking in 0");
        ff.clock_in(true).unwrap();
        ff.clock_in(true).unwrap();
        assert!(ff.q());
    }

    #[test]
    fn d_changes_without_clock_do_not_affect_q() {
        let mut ff = NvFlipFlop::new(CellDesign::table1(), true, true).unwrap();
        // Wiggle D with the clock held low: the slave must hold.
        let dv = ff.design.conditions.vdd;
        let _ = dv;
        ff.phase(
            1e-9,
            &[("vd", Waveform::Pwl(vec![(0.0, 0.9), (0.2e-9, 0.0)]))],
        )
        .unwrap();
        assert!(ff.q(), "Q must hold without a clock edge");
    }

    #[test]
    fn store_flips_mtjs_to_match_q() {
        let mut ff = NvFlipFlop::new(CellDesign::table1(), true, false).unwrap();
        ff.store().unwrap();
        // Q = 1 ⇒ sb high (H-store side: right junction → AP), s low
        // (L-store side: left junction → P).
        assert_eq!(
            ff.mtj_states(),
            Some((MtjState::Parallel, MtjState::AntiParallel))
        );
    }

    #[test]
    fn q_survives_power_cycle() {
        for q in [true, false] {
            let mut ff = NvFlipFlop::new(CellDesign::table1(), q, !q).unwrap();
            ff.store().unwrap();
            ff.shutdown(400e-9).unwrap();
            ff.restore().unwrap();
            assert_eq!(ff.q(), q, "Q = {q} must survive the power cycle");
        }
    }

    #[test]
    fn store_energy_is_comparable_to_sram_cell() {
        let design = CellDesign::table1();
        let mut ff = NvFlipFlop::new(design, true, false).unwrap();
        let store = ff.store().unwrap();
        // Two MTJ writes at ~1.5×I_C for 10 ns each: hundreds of fJ.
        assert!(
            (50e-15..5e-12).contains(&store.energy.0),
            "NV-FF store energy = {:e}",
            store.energy.0
        );
    }
}
