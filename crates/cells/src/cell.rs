//! Cell netlist builders: volatile 6T-SRAM and the PS-FinFET NV-SRAM of
//! Fig. 2.
//!
//! Both cells hang from a virtual-V_DD rail fed through a header pFinFET
//! power switch (fin count `N_FSW`), exactly as the paper's Fig. 2. The
//! NV-SRAM adds, per storage node, a PS-FinFET (gate on the SR line) in
//! series with an MTJ to the CTRL line, plus a 0 V ammeter source so
//! experiments can read the exact MTJ current (`i(iaml)`, `i(iamr)`;
//! positive = cell → CTRL, the paper's H-store direction).
//!
//! MTJ orientation: the **pinned layer faces the cell**, the free layer
//! faces CTRL. H-store current (cell → CTRL) therefore switches P → AP
//! and L-store current (CTRL → cell) switches AP → P, matching the
//! paper's `I_MTJ^{P→AP}`/`I_MTJ^{AP→P}` labels in Fig. 3(b,c).
//!
//! Data/state convention: `Q = H` stored ⇒ Q-side MTJ antiparallel,
//! QB-side MTJ parallel.

use nvpg_circuit::{Circuit, CircuitError, NodeId};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::MtjState;

use crate::design::CellDesign;

/// Which cell flavour to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Ordinary volatile 6T-SRAM cell (the paper's OSR baseline).
    Volatile6T,
    /// PS-FinFET NV-SRAM cell (Fig. 2).
    NvSram,
}

/// Initial magnetisation of the two MTJs `(Q side, QB side)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MtjConfig {
    /// Q-side junction.
    pub left: MtjState,
    /// QB-side junction.
    pub right: MtjState,
}

impl MtjConfig {
    /// The pattern that a store of `Q = data` produces.
    pub fn stored(data_q: bool) -> Self {
        if data_q {
            MtjConfig {
                left: MtjState::AntiParallel,
                right: MtjState::Parallel,
            }
        } else {
            MtjConfig {
                left: MtjState::Parallel,
                right: MtjState::AntiParallel,
            }
        }
    }
}

/// Node handles of a built cell.
#[derive(Debug, Clone, Copy)]
pub struct CellNodes {
    /// Always-on supply rail (source side of the power switch).
    pub vdd_rail: NodeId,
    /// Virtual V_DD (drain side of the power switch).
    pub vvdd: NodeId,
    /// Storage node Q.
    pub q: NodeId,
    /// Storage node QB.
    pub qb: NodeId,
    /// Bitline.
    pub bl: NodeId,
    /// Complement bitline.
    pub blb: NodeId,
    /// Wordline.
    pub wl: NodeId,
    /// Power-switch gate.
    pub pg: NodeId,
    /// NV-only nodes (`None` for the 6T cell).
    pub nv: Option<NvNodes>,
}

/// NV-SRAM-specific nodes.
#[derive(Debug, Clone, Copy)]
pub struct NvNodes {
    /// SR line (PS-FinFET gates).
    pub sr: NodeId,
    /// CTRL line (MTJ far terminals).
    pub ctrl: NodeId,
    /// Q-side PS-FinFET/MTJ junction.
    pub ml: NodeId,
    /// QB-side PS-FinFET/MTJ junction.
    pub mr: NodeId,
}

/// Source names a built cell exposes (reprogram with
/// [`Circuit::set_source`]).
pub mod sources {
    /// Supply rail source.
    pub const VDD: &str = "vdd";
    /// Power-switch gate source.
    pub const VPG: &str = "vpg";
    /// Wordline source.
    pub const VWL: &str = "vwl";
    /// Bitline driver source.
    pub const VBL: &str = "vbl";
    /// Complement-bitline driver source.
    pub const VBLB: &str = "vblb";
    /// SR-line source (NV only).
    pub const VSR: &str = "vsr";
    /// CTRL-line source (NV only).
    pub const VCTRL: &str = "vctrl";
    /// Q-side MTJ ammeter (0 V source; NV only).
    pub const IAM_L: &str = "iaml";
    /// QB-side MTJ ammeter (0 V source; NV only).
    pub const IAM_R: &str = "iamr";
}

/// Builds a cell into `ckt` and returns its node handles.
///
/// All drive sources start in the **normal operation mode**: power switch
/// on, wordline low, bitlines precharged to V_DD, SR off, CTRL at its
/// normal-mode bias.
///
/// # Errors
///
/// Propagates [`CircuitError`] from netlist construction (duplicate names
/// if called twice on one circuit).
pub fn build_cell(
    ckt: &mut Circuit,
    design: &CellDesign,
    kind: CellKind,
    mtjs: MtjConfig,
) -> Result<CellNodes, CircuitError> {
    let c = &design.conditions;
    let gnd = Circuit::GROUND;

    let vdd_rail = ckt.node("vdd_rail");
    let vvdd = ckt.node("vvdd");
    let q = ckt.node("q");
    let qb = ckt.node("qb");
    let bl = ckt.node("bl");
    let blb = ckt.node("blb");
    let bl_drv = ckt.node("bl_drv");
    let blb_drv = ckt.node("blb_drv");
    let wl = ckt.node("wl");
    let pg = ckt.node("pg");

    // Drive sources (normal-mode defaults).
    ckt.vsource(sources::VDD, vdd_rail, gnd, c.vdd)?;
    ckt.vsource(sources::VPG, pg, gnd, 0.0)?;
    ckt.vsource(sources::VWL, wl, gnd, 0.0)?;
    ckt.vsource(sources::VBL, bl_drv, gnd, c.vdd)?;
    ckt.vsource(sources::VBLB, blb_drv, gnd, c.vdd)?;

    // Header power switch (high-V_th pFinFET, N_FSW fins): drain = vvdd,
    // source = rail.
    let mut sw_params = design.pmos.with_fins(design.fins_power_switch);
    sw_params.vth0 += design.power_switch_vth_boost;
    ckt.device(Box::new(FinFet::new("msw", vvdd, pg, vdd_rail, sw_params)))?;

    // 6T core.
    let pu = design.pmos.with_fins(design.fins_load);
    let pd = design.nmos.with_fins(design.fins_driver);
    let pa = design.nmos.with_fins(design.fins_access);
    ckt.device(Box::new(FinFet::new("mpul", q, qb, vvdd, pu)))?;
    ckt.device(Box::new(FinFet::new("mpur", qb, q, vvdd, pu)))?;
    ckt.device(Box::new(FinFet::new("mpdl", q, qb, gnd, pd)))?;
    ckt.device(Box::new(FinFet::new("mpdr", qb, q, gnd, pd)))?;
    ckt.device(Box::new(FinFet::new("mpgl", bl, wl, q, pa)))?;
    ckt.device(Box::new(FinFet::new("mpgr", blb, wl, qb, pa)))?;

    // Bitline loads and drivers.
    ckt.capacitor("cbl", bl, gnd, design.c_bitline)?;
    ckt.capacitor("cblb", blb, gnd, design.c_bitline)?;
    ckt.resistor("rbl", bl_drv, bl, design.r_bitline_driver)?;
    ckt.resistor("rblb", blb_drv, blb, design.r_bitline_driver)?;

    let nv = match kind {
        CellKind::Volatile6T => None,
        CellKind::NvSram => {
            let sr = ckt.node("sr");
            let ctrl = ckt.node("ctrl");
            let ml = ckt.node("ml");
            let mr = ckt.node("mr");
            let mla = ckt.node("mla");
            let mra = ckt.node("mra");

            ckt.vsource(sources::VSR, sr, gnd, 0.0)?;
            ckt.vsource(sources::VCTRL, ctrl, gnd, c.v_ctrl_normal)?;

            // PS-FinFETs: drain = storage node, gate = SR, source = MTJ.
            let ps = design.nmos.with_fins(design.fins_ps);
            ckt.device(Box::new(FinFet::new("mpsl", q, sr, ml, ps)))?;
            ckt.device(Box::new(FinFet::new("mpsr", qb, sr, mr, ps)))?;

            // Ammeters (0 V sources) in series with the MTJs; positive
            // i(iamX) = cell → CTRL current.
            ckt.vsource(sources::IAM_L, ml, mla, 0.0)?;
            ckt.vsource(sources::IAM_R, mr, mra, 0.0)?;

            // Retention elements: pinned side toward the cell (mla/mra),
            // free side on the CTRL line. Terminal order is (free, pinned).
            let nvdev = design.retention_device();
            nvdev.attach(ckt, "xl", ctrl, mla, mtjs.left.into())?;
            nvdev.attach(ckt, "xr", ctrl, mra, mtjs.right.into())?;

            Some(NvNodes { sr, ctrl, ml, mr })
        }
    };

    Ok(CellNodes {
        vdd_rail,
        vvdd,
        q,
        qb,
        bl,
        blb,
        wl,
        pg,
        nv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpg_circuit::dc::{operating_point, DcOptions};

    fn hold_opts(n: &CellNodes, vdd: f64, data_q: bool) -> DcOptions {
        let (vq, vqb) = if data_q { (vdd, 0.0) } else { (0.0, vdd) };
        DcOptions::default()
            .with_nodeset(n.q, vq)
            .with_nodeset(n.qb, vqb)
            .with_nodeset(n.vvdd, vdd)
            .with_nodeset(n.bl, vdd)
            .with_nodeset(n.blb, vdd)
    }

    #[test]
    fn sixt_cell_holds_both_states() {
        for data in [true, false] {
            let mut ckt = Circuit::new();
            let d = CellDesign::table1();
            let n =
                build_cell(&mut ckt, &d, CellKind::Volatile6T, MtjConfig::stored(true)).unwrap();
            let op = operating_point(&mut ckt, &hold_opts(&n, 0.9, data)).unwrap();
            let (q, qb) = (op.voltage(n.q), op.voltage(n.qb));
            if data {
                assert!(q > 0.8 && qb < 0.1, "data=1: q={q}, qb={qb}");
            } else {
                assert!(q < 0.1 && qb > 0.8, "data=0: q={q}, qb={qb}");
            }
            // Virtual VDD barely droops through the on power switch.
            assert!(op.voltage(n.vvdd) > 0.88);
        }
    }

    #[test]
    fn nvsram_cell_holds_state_with_ps_off() {
        let mut ckt = Circuit::new();
        let d = CellDesign::table1();
        let n = build_cell(&mut ckt, &d, CellKind::NvSram, MtjConfig::stored(true)).unwrap();
        let op = operating_point(&mut ckt, &hold_opts(&n, 0.9, true)).unwrap();
        assert!(op.voltage(n.q) > 0.8, "q = {}", op.voltage(n.q));
        assert!(op.voltage(n.qb) < 0.1);
        // With SR = 0 the MTJ currents are leakage-level (≪ I_C).
        let il = op.source_current(sources::IAM_L).unwrap().abs();
        let ir = op.source_current(sources::IAM_R).unwrap().abs();
        assert!(il < 1e-6 && ir < 1e-6, "MTJ leakage: {il:e}, {ir:e}");
    }

    #[test]
    fn nv_cell_leaks_more_than_6t_but_same_order() {
        let d = CellDesign::table1();
        let mut c6 = Circuit::new();
        let n6 = build_cell(&mut c6, &d, CellKind::Volatile6T, MtjConfig::stored(true)).unwrap();
        let op6 = operating_point(&mut c6, &hold_opts(&n6, 0.9, true)).unwrap();
        let i6 = -op6.source_current(sources::VDD).unwrap();

        let mut cn = Circuit::new();
        let nn = build_cell(&mut cn, &d, CellKind::NvSram, MtjConfig::stored(true)).unwrap();
        let opn = operating_point(&mut cn, &hold_opts(&nn, 0.9, true)).unwrap();
        let inv = -opn.source_current(sources::VDD).unwrap();

        assert!(i6 > 0.0 && inv > 0.0);
        assert!(inv >= i6 * 0.9, "NV leakage {inv:e} vs 6T {i6:e}");
        assert!(inv < i6 * 20.0, "NV leakage should stay same order");
    }

    #[test]
    fn power_switch_off_collapses_vvdd() {
        let mut ckt = Circuit::new();
        let d = CellDesign::table1();
        let n = build_cell(&mut ckt, &d, CellKind::NvSram, MtjConfig::stored(true)).unwrap();
        ckt.set_source(sources::VPG, 0.9).unwrap(); // gate high: pFET off
        let op = operating_point(&mut ckt, &hold_opts(&n, 0.0, true)).unwrap();
        assert!(
            op.voltage(n.vvdd) < 0.25,
            "vvdd = {} with switch off",
            op.voltage(n.vvdd)
        );
    }

    #[test]
    fn mtj_config_patterns() {
        let one = MtjConfig::stored(true);
        assert_eq!(one.left, MtjState::AntiParallel);
        assert_eq!(one.right, MtjState::Parallel);
        let zero = MtjConfig::stored(false);
        assert_eq!(zero.left, MtjState::Parallel);
        assert_eq!(zero.right, MtjState::AntiParallel);
    }

    #[test]
    fn building_twice_reports_duplicate() {
        let mut ckt = Circuit::new();
        let d = CellDesign::table1();
        build_cell(&mut ckt, &d, CellKind::Volatile6T, MtjConfig::stored(true)).unwrap();
        let err = build_cell(&mut ckt, &d, CellKind::Volatile6T, MtjConfig::stored(true));
        assert!(matches!(err, Err(CircuitError::DuplicateName { .. })));
    }
}
