//! Whole-domain power-gated array: `R × C` cells behind **one shared
//! power switch**.
//!
//! [`crate::array::ArrayBench`] gates and sequences each row separately —
//! the right granularity for validating the per-cell composition. This
//! module models the other end of the paper's architecture space: a full
//! power domain whose cells all hang from a single virtual-V_DD rail fed
//! through one header switch sized `N_FSW × cells`, with the wordline, SR
//! and CTRL lines broadcast across the domain and the per-column bitlines
//! carrying their full `C_BL × rows` loading. Store, shutdown and restore
//! act on the *whole domain at once*, which is what the figures and the
//! `/simulate` service run when they compare NVPG against the OSR and NOF
//! baselines at array scale.
//!
//! A 64×64 NV domain is ~16 500 MNA unknowns — far beyond dense LU. The
//! analyses here inherit the [`SolverChoice`] passed at construction
//! (default `Auto`, which engages the sparse backend above
//! [`nvpg_circuit::SPARSE_THRESHOLD`] unknowns), so the same builder
//! serves both the dense-vs-sparse differential tests at small sizes and
//! the array-scale benchmarks.

use nvpg_circuit::batched::{batched_operating_point, BatchMode};
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, CircuitError, DcSolution, NodeId, SolverChoice, StepStats, Waveform};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::MtjState;
use nvpg_units::{Joules, Seconds};

use crate::array::ArrayPhase;
use crate::design::CellDesign;

/// Which architecture the domain implements.
///
/// `Nvpg` and `Nof` share the NV-SRAM netlist (PS-FinFETs + MTJs); they
/// differ only in *when* the caller stores — NVPG stores once per shutdown
/// longer than the break-even time, NOF stores every round. `Osr` is the
/// volatile 6T baseline: it never powers off, standby is the low-voltage
/// sleep mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// Nonvolatile power gating (NV-SRAM cells, store on long shutdowns).
    Nvpg,
    /// Ordinary volatile SRAM (6T cells, low-voltage sleep, never off).
    Osr,
    /// Normally-off (NV-SRAM cells, store every round).
    Nof,
}

impl DomainKind {
    /// Whether the cells carry MTJs (and hence support store/restore).
    pub fn is_nonvolatile(self) -> bool {
        !matches!(self, DomainKind::Osr)
    }
}

/// Storage-node handles of one domain cell.
#[derive(Debug, Clone, Copy)]
struct DomainCellNodes {
    q: NodeId,
    qb: NodeId,
}

/// A fully-built domain netlist whose operating point has **not** been
/// solved yet.
///
/// [`DomainArray::with_solver`] is `prepare(…).solve()`; splitting the
/// two steps lets batch-shaped drivers (Monte-Carlo variation, thermal
/// scans) build many same-topology domains — one per parameter point —
/// and hand them to [`DomainBuilder::solve_batch`], which solves them in
/// lock-step lanes of an [`nvpg_circuit::batched`] stack instead of one
/// Newton run per point.
#[derive(Debug)]
pub struct DomainBuilder {
    ckt: Circuit,
    opts: DcOptions,
    design: CellDesign,
    kind: DomainKind,
    rows: usize,
    cols: usize,
    solver: SolverChoice,
    cells: Vec<Vec<DomainCellNodes>>,
    source_names: Vec<String>,
    levels: Vec<f64>,
}

impl DomainBuilder {
    /// MNA unknown count of the prepared netlist.
    pub fn unknown_count(&self) -> usize {
        self.ckt.unknown_count()
    }

    /// The DC options (nodesets seeding the pattern) the solve will use.
    pub fn dc_options(&self) -> &DcOptions {
        &self.opts
    }

    /// Solves the operating point serially and finishes the array.
    ///
    /// # Errors
    ///
    /// Propagates DC non-convergence.
    pub fn solve(mut self) -> Result<DomainArray, CircuitError> {
        let state = operating_point(&mut self.ckt, &self.opts)?;
        Ok(self.finish(state))
    }

    fn finish(self, state: DcSolution) -> DomainArray {
        DomainArray {
            ckt: self.ckt,
            design: self.design,
            kind: self.kind,
            rows: self.rows,
            cols: self.cols,
            solver: self.solver,
            cells: self.cells,
            state,
            source_names: self.source_names,
            levels: self.levels,
            stats: StepStats::default(),
        }
    }

    /// Solves a batch of prepared domains, `batch.lanes()` lock-step
    /// lanes at a time, returning per-domain results in input order.
    ///
    /// All builders must share one topology *and one seed pattern* (the
    /// DC nodesets of the first builder in each chunk drive the whole
    /// chunk); only device parameter values may differ, which is exactly
    /// the Monte-Carlo/thermal-scan shape. A chunk whose unknown counts
    /// disagree falls back to per-point serial solving inside
    /// [`batched_operating_point`], so the call is always safe — just
    /// slower than it could be.
    pub fn solve_batch(
        builders: Vec<DomainBuilder>,
        batch: BatchMode,
    ) -> Vec<Result<DomainArray, CircuitError>> {
        let lanes = batch.lanes();
        let mut out = Vec::with_capacity(builders.len());
        let mut iter = builders.into_iter();
        loop {
            let chunk: Vec<DomainBuilder> = iter.by_ref().take(lanes).collect();
            if chunk.is_empty() {
                break;
            }
            let opts = chunk[0].opts.clone();
            let (mut circuits, seeds): (Vec<Circuit>, Vec<DomainBuilder>) = chunk
                .into_iter()
                .map(|mut b| (std::mem::replace(&mut b.ckt, Circuit::new()), b))
                .unzip();
            let results = batched_operating_point(&mut circuits, &opts);
            for ((ckt, mut seed), res) in circuits.into_iter().zip(seeds).zip(results) {
                seed.ckt = ckt;
                out.push(res.map(|(state, _stats)| seed.finish(state)));
            }
        }
        out
    }
}

/// An `R × C` power domain behind a single shared power switch.
#[derive(Debug)]
pub struct DomainArray {
    ckt: Circuit,
    design: CellDesign,
    kind: DomainKind,
    rows: usize,
    cols: usize,
    solver: SolverChoice,
    cells: Vec<Vec<DomainCellNodes>>,
    state: DcSolution,
    source_names: Vec<String>,
    /// Current DC level of every source (phase continuity).
    levels: Vec<f64>,
    /// Step/solver telemetry accumulated across every phase run so far.
    stats: StepStats,
}

impl DomainArray {
    /// Builds a domain holding `pattern(r, c)` with the default (`Auto`)
    /// solver choice. See [`DomainArray::with_solver`].
    ///
    /// # Errors
    ///
    /// Propagates netlist and DC-convergence errors.
    pub fn new(
        design: CellDesign,
        kind: DomainKind,
        rows: usize,
        cols: usize,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, CircuitError> {
        Self::with_solver(design, kind, rows, cols, SolverChoice::Auto, pattern)
    }

    /// Builds a domain holding `pattern(r, c)` in each cell. For
    /// nonvolatile kinds the MTJs are initialised to the **opposite**
    /// pattern, so a subsequent [`store`](DomainArray::store) genuinely
    /// switches every junction. Every analysis on the domain (including
    /// the initial operating point) uses `solver`.
    ///
    /// # Errors
    ///
    /// Propagates netlist and DC-convergence errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn with_solver(
        design: CellDesign,
        kind: DomainKind,
        rows: usize,
        cols: usize,
        solver: SolverChoice,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, CircuitError> {
        Self::prepare(design, kind, rows, cols, solver, pattern)?.solve()
    }

    /// Builds the domain netlist and its pattern-seeded DC options
    /// *without* solving the operating point. See [`DomainBuilder`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for degenerate specs —
    /// zero `rows`/`cols`, or a domain so large that the shared header's
    /// `N_FSW × cells` fin count no longer fits the FinFET width model —
    /// and otherwise propagates netlist errors.
    pub fn prepare(
        design: CellDesign,
        kind: DomainKind,
        rows: usize,
        cols: usize,
        solver: SolverChoice,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<DomainBuilder, CircuitError> {
        if rows == 0 || cols == 0 {
            return Err(CircuitError::InvalidValue {
                element: "domain".to_owned(),
                reason: format!("domain dimensions must be nonzero (got {rows}×{cols})"),
            });
        }
        // The shared header is one pFinFET with N_FSW fins per cell; past
        // this bound the u32 fin count would overflow and silently wrap
        // into a *weaker* switch than a single cell's.
        let cells = rows
            .checked_mul(cols)
            .filter(|&n| n <= (u32::MAX / design.fins_power_switch.max(1)) as usize);
        if cells.is_none() {
            return Err(CircuitError::InvalidValue {
                element: "msw".to_owned(),
                reason: format!(
                    "domain {rows}×{cols} needs more than u32::MAX header fins at N_FSW = {}",
                    design.fins_power_switch
                ),
            });
        }
        let c = design.conditions;
        let gnd = Circuit::GROUND;
        let mut ckt = Circuit::new();
        let mut source_names = Vec::new();
        let mut levels = Vec::new();
        let mut add_source =
            |ckt: &mut Circuit, name: &str, pos: NodeId, level: f64| -> Result<(), CircuitError> {
                ckt.vsource(name, pos, gnd, level)?;
                source_names.push(name.to_owned());
                levels.push(level);
                Ok(())
            };

        // Shared rails and broadcast lines.
        let vdd_rail = ckt.node("vdd_rail");
        let vvdd = ckt.node("vvdd");
        let pg = ckt.node("pg");
        let wl = ckt.node("wl");
        add_source(&mut ckt, "vdd", vdd_rail, c.vdd)?;
        add_source(&mut ckt, "vpg", pg, 0.0)?;
        add_source(&mut ckt, "vwl", wl, 0.0)?;
        let (sr, ctrl) = if kind.is_nonvolatile() {
            let sr = ckt.node("sr");
            let ctrl = ckt.node("ctrl");
            add_source(&mut ckt, "vsr", sr, 0.0)?;
            add_source(&mut ckt, "vctrl", ctrl, c.v_ctrl_normal)?;
            (Some(sr), Some(ctrl))
        } else {
            (None, None)
        };

        // ONE header switch for the whole domain, N_FSW fins per cell.
        let cell_count = (rows * cols) as u32;
        let mut sw = design.pmos.with_fins(design.fins_power_switch * cell_count);
        sw.vth0 += design.power_switch_vth_boost;
        ckt.device(Box::new(FinFet::new("msw", vvdd, pg, vdd_rail, sw)))?;

        // Per-column bitlines: one driver source pair feeds every column
        // through its driver impedance, and each bitline carries the full
        // column loading C_BL × rows.
        let bl_drv = ckt.node("bl_drv");
        let blb_drv = ckt.node("blb_drv");
        add_source(&mut ckt, "vbl", bl_drv, c.vdd)?;
        add_source(&mut ckt, "vblb", blb_drv, c.vdd)?;
        let mut bl = Vec::new();
        let mut blb = Vec::new();
        for col in 0..cols {
            let b = ckt.node(&format!("bl{col}"));
            let bb = ckt.node(&format!("blb{col}"));
            ckt.resistor(&format!("rbl{col}"), bl_drv, b, design.r_bitline_driver)?;
            ckt.resistor(&format!("rblb{col}"), blb_drv, bb, design.r_bitline_driver)?;
            let c_col = design.c_bitline * rows as f64;
            ckt.capacitor(&format!("cbl{col}"), b, gnd, c_col)?;
            ckt.capacitor(&format!("cblb{col}"), bb, gnd, c_col)?;
            bl.push(b);
            blb.push(bb);
        }

        // Cells.
        let pu = design.pmos.with_fins(design.fins_load);
        let pd = design.nmos.with_fins(design.fins_driver);
        let pa = design.nmos.with_fins(design.fins_access);
        let ps = design.nmos.with_fins(design.fins_ps);
        let mut cells: Vec<Vec<DomainCellNodes>> = Vec::new();
        for row in 0..rows {
            let mut row_cells = Vec::new();
            for col in 0..cols {
                let tag = format!("r{row}c{col}");
                let q = ckt.node(&format!("q_{tag}"));
                let qb = ckt.node(&format!("qb_{tag}"));
                ckt.device(Box::new(FinFet::new(
                    format!("mpul_{tag}"),
                    q,
                    qb,
                    vvdd,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpur_{tag}"),
                    qb,
                    q,
                    vvdd,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(format!("mpdl_{tag}"), q, qb, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(format!("mpdr_{tag}"), qb, q, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpgl_{tag}"),
                    bl[col],
                    wl,
                    q,
                    pa,
                )))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpgr_{tag}"),
                    blb[col],
                    wl,
                    qb,
                    pa,
                )))?;
                if let (Some(sr), Some(ctrl)) = (sr, ctrl) {
                    let ml = ckt.node(&format!("ml_{tag}"));
                    let mr = ckt.node(&format!("mr_{tag}"));
                    ckt.device(Box::new(FinFet::new(format!("mpsl_{tag}"), q, sr, ml, ps)))?;
                    ckt.device(Box::new(FinFet::new(format!("mpsr_{tag}"), qb, sr, mr, ps)))?;
                    // Retention elements start in the OPPOSITE pattern;
                    // pinned side toward the cell, free side on CTRL. No
                    // per-cell ammeters at domain scale: they would add a
                    // branch unknown per junction for a current the
                    // domain-level energy accounting does not need.
                    let (l0, r0) = if pattern(row, col) {
                        (MtjState::Parallel, MtjState::AntiParallel)
                    } else {
                        (MtjState::AntiParallel, MtjState::Parallel)
                    };
                    let nvdev = design.retention_device();
                    nvdev.attach(&mut ckt, &format!("xl_{tag}"), ctrl, ml, l0.into())?;
                    nvdev.attach(&mut ckt, &format!("xr_{tag}"), ctrl, mr, r0.into())?;
                }
                row_cells.push(DomainCellNodes { q, qb });
            }
            cells.push(row_cells);
        }

        // Operating point with every cell seeded to its pattern.
        let mut opts = DcOptions {
            solver,
            ..DcOptions::default()
        };
        for (row, row_cells) in cells.iter().enumerate() {
            for (col, cell) in row_cells.iter().enumerate() {
                let (vq, vqb) = if pattern(row, col) {
                    (c.vdd, 0.0)
                } else {
                    (0.0, c.vdd)
                };
                opts = opts.with_nodeset(cell.q, vq).with_nodeset(cell.qb, vqb);
            }
        }
        opts = opts.with_nodeset(vvdd, c.vdd);
        for (&b, &bb) in bl.iter().zip(&blb) {
            opts = opts.with_nodeset(b, c.vdd).with_nodeset(bb, c.vdd);
        }
        Ok(DomainBuilder {
            ckt,
            opts,
            design,
            kind,
            rows,
            cols,
            solver,
            cells,
            source_names,
            levels,
        })
    }

    /// Domain dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The architecture kind the domain was built as.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// MNA unknown count of the domain netlist.
    pub fn unknown_count(&self) -> usize {
        self.ckt.unknown_count()
    }

    /// The current DC state of the domain.
    pub fn state(&self) -> &DcSolution {
        &self.state
    }

    /// Total static power delivered by every source in the current DC
    /// state (W) — the domain's leakage in whatever mode it sits in.
    pub fn static_power(&self) -> f64 {
        self.source_names
            .iter()
            .zip(&self.levels)
            .map(|(n, &v)| self.state.source_power(n, v).unwrap_or(0.0))
            .sum()
    }

    /// Smallest `|V(Q) − V(QB)|` over all cells (V): the worst per-cell
    /// storage margin in the current state.
    pub fn min_storage_margin(&self) -> f64 {
        self.cells
            .iter()
            .flatten()
            .map(|cell| (self.state.voltage(cell.q) - self.state.voltage(cell.qb)).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Step/solver telemetry accumulated over every phase run so far
    /// (store, shutdown, sleep, wake, hold, restore). Benchmarks read
    /// this after a sequence; [`reset_step_stats`](Self::reset_step_stats)
    /// starts a fresh window.
    pub fn step_stats(&self) -> &StepStats {
        &self.stats
    }

    /// Clears the accumulated step telemetry.
    pub fn reset_step_stats(&mut self) {
        self.stats = StepStats::default();
    }

    /// The latched data of cell `(row, col)` in the current state.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn data(&self, row: usize, col: usize) -> bool {
        let cell = &self.cells[row][col];
        self.state.voltage(cell.q) > self.state.voltage(cell.qb)
    }

    /// The whole data pattern.
    pub fn pattern(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.data(r, c)).collect())
            .collect()
    }

    /// Retention-element states of cell `(row, col)` as `(Q side, QB
    /// side)`, decoded through the shared `"state"` signal convention
    /// (high-resistance ⇒ `AntiParallel`), so the same decode works for
    /// every [`RetentionKind`](crate::design::RetentionKind); `None` for
    /// volatile (OSR) domains.
    pub fn mtj_states(&self, row: usize, col: usize) -> Option<(MtjState, MtjState)> {
        let decode = |name: String| -> Option<MtjState> {
            let st = self.ckt.device_state(&name)?;
            let v = st.iter().find(|(l, _)| l == "state")?.1;
            Some(if v > 0.5 {
                MtjState::AntiParallel
            } else {
                MtjState::Parallel
            })
        };
        Some((
            decode(format!("xl_r{row}c{col}"))?,
            decode(format!("xr_r{row}c{col}"))?,
        ))
    }

    fn level_of(&self, name: &str) -> f64 {
        let idx = self
            .source_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown source {name}"));
        self.levels[idx]
    }

    fn ramp(&self, name: &str, to: f64) -> (String, Waveform) {
        let from = self.level_of(name);
        let e = self.design.conditions.edge_time;
        (name.to_owned(), Waveform::Pwl(vec![(0.0, from), (e, to)]))
    }

    /// Runs a phase of `duration` with waveform overrides, continuing
    /// from the current state; returns the total energy.
    fn phase(
        &mut self,
        duration: f64,
        waves: &[(String, Waveform)],
    ) -> Result<ArrayPhase, CircuitError> {
        for (src, wave) in waves {
            self.ckt.set_source(src, wave.clone())?;
        }
        let opts = TransientOptions {
            t_stop: duration,
            dt_max: (duration / 100.0).clamp(1e-12, 200e-12),
            dt_init: 1e-12,
            // Array-scale performance levers: keep the LU across quiescent
            // steps and skip re-evaluating devices whose terminals barely
            // moved — most of the domain is idle in any given phase.
            device_bypass_tol: 1e-6,
            solver: self.solver,
            ..TransientOptions::default()
        };
        let result = transient(&mut self.ckt, &opts, &self.state)?;
        self.stats += result.steps;
        self.state = result.final_state;
        for (src, wave) in waves {
            let end = wave.value(duration);
            self.ckt.set_source(src, end)?;
            let idx = self
                .source_names
                .iter()
                .position(|n| n == src)
                .expect("known source");
            self.levels[idx] = end;
        }
        let mut energy = 0.0;
        for name in &self.source_names {
            energy += result
                .trace
                .integral(&format!("p({name})"))
                .expect("power signal recorded");
        }
        Ok(ArrayPhase {
            energy: Joules(energy),
            duration: Seconds(duration),
        })
    }

    /// Two-step store of the **whole domain at once**: SR up with CTRL
    /// low (H-store), then CTRL at its store level (L-store), then both
    /// lines back to their normal-mode bias.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR domain (no MTJs to store).
    pub fn store(&mut self) -> Result<ArrayPhase, CircuitError> {
        assert!(
            self.kind.is_nonvolatile(),
            "OSR domains have no MTJs to store"
        );
        let c = self.design.conditions;
        let t = c.store_duration;
        let p1 = self.phase(t, &[self.ramp("vsr", c.v_sr), self.ramp("vctrl", 0.0)])?;
        let p2 = self.phase(t, &[self.ramp("vctrl", c.v_ctrl_store)])?;
        let p3 = self.phase(1e-9, &[self.ramp("vsr", 0.0), self.ramp("vctrl", 0.0)])?;
        Ok(ArrayPhase {
            energy: p1.energy + p2.energy + p3.energy,
            duration: p1.duration + p2.duration + p3.duration,
        })
    }

    /// Powers the domain off through the shared switch (super cutoff when
    /// `super_cutoff`) and discharges the bitlines.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR domain: per the paper's architecture semantics
    /// the volatile baseline never powers off — use
    /// [`sleep`](DomainArray::sleep).
    pub fn shutdown(&mut self, super_cutoff: bool) -> Result<ArrayPhase, CircuitError> {
        assert!(
            self.kind.is_nonvolatile(),
            "OSR domains sleep, they never power off"
        );
        let c = self.design.conditions;
        let v_pg = if super_cutoff {
            c.v_pg_super
        } else {
            c.v_pg_off
        };
        let p1 = self.phase(2e-9, &[self.ramp("vpg", v_pg)])?;
        let p2 = self.phase(2e-9, &[self.ramp("vbl", 0.0), self.ramp("vblb", 0.0)])?;
        Ok(ArrayPhase {
            energy: p1.energy + p2.energy,
            duration: p1.duration + p2.duration,
        })
    }

    /// Enters the low-voltage retention mode: the rail drops to
    /// `vdd_sleep` (and CTRL to its sleep bias on NV domains). Data is
    /// retained — this is the OSR standby state.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn sleep(&mut self) -> Result<ArrayPhase, CircuitError> {
        let c = self.design.conditions;
        let mut waves = vec![self.ramp("vdd", c.vdd_sleep)];
        if self.kind.is_nonvolatile() {
            waves.push(self.ramp("vctrl", c.v_ctrl_sleep));
        }
        self.phase(2e-9, &waves)
    }

    /// Returns from sleep to the normal operating mode.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn wake(&mut self) -> Result<ArrayPhase, CircuitError> {
        let c = self.design.conditions;
        let mut waves = vec![self.ramp("vdd", c.vdd)];
        if self.kind.is_nonvolatile() {
            waves.push(self.ramp("vctrl", c.v_ctrl_normal));
        }
        self.phase(2e-9, &waves)
    }

    /// Lets the domain sit for `duration` in its current mode.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn hold(&mut self, duration: f64) -> Result<ArrayPhase, CircuitError> {
        self.phase(duration, &[])
    }

    /// Whole-domain restore: bitlines precharge, then SR on, slow
    /// power-switch turn-on, SR off, CTRL back to normal — every cell
    /// recovers its data from the MTJ resistance imbalance simultaneously.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR domain.
    pub fn restore(&mut self) -> Result<ArrayPhase, CircuitError> {
        assert!(
            self.kind.is_nonvolatile(),
            "OSR domains have no MTJs to restore from"
        );
        let c = self.design.conditions;
        let mut total = self.phase(2e-9, &[self.ramp("vbl", c.vdd), self.ramp("vblb", c.vdd)])?;
        let dur = c.restore_duration;
        let e = c.edge_time;
        let sr = Waveform::Pwl(vec![
            (0.0, self.level_of("vsr")),
            (e, c.v_sr),
            (0.7 * dur, c.v_sr),
            (0.7 * dur + e, 0.0),
        ]);
        let pg = Waveform::Pwl(vec![
            (0.0, self.level_of("vpg")),
            (0.05 * dur, self.level_of("vpg")),
            (0.45 * dur, 0.0),
        ]);
        let ctrl = Waveform::Pwl(vec![
            (0.0, self.level_of("vctrl")),
            (0.7 * dur, self.level_of("vctrl")),
            (0.7 * dur + e, c.v_ctrl_normal),
        ]);
        let p = self.phase(
            dur,
            &[
                ("vsr".to_owned(), sr),
                ("vpg".to_owned(), pg),
                ("vctrl".to_owned(), ctrl),
            ],
        )?;
        total.energy += p.energy;
        total.duration += p.duration;
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(r: usize, c: usize) -> bool {
        (r + c).is_multiple_of(2)
    }

    #[test]
    fn nv_domain_builds_and_holds_pattern() {
        let d =
            DomainArray::new(CellDesign::table1(), DomainKind::Nvpg, 2, 2, checkerboard).unwrap();
        assert_eq!(d.dims(), (2, 2));
        assert_eq!(d.cell_count(), 4);
        assert!(d.kind().is_nonvolatile());
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(d.data(r, c), checkerboard(r, c), "cell ({r},{c})");
            }
        }
        // One shared switch, no per-cell ammeters: 4 unknowns per cell
        // plus the shared lines and a handful of source branches.
        assert!(d.unknown_count() < 40, "unknowns = {}", d.unknown_count());
    }

    #[test]
    fn degenerate_specs_surface_typed_errors() {
        for (rows, cols) in [(0, 4), (4, 0), (0, 0)] {
            let err = DomainArray::new(
                CellDesign::table1(),
                DomainKind::Nvpg,
                rows,
                cols,
                checkerboard,
            )
            .unwrap_err();
            match err {
                CircuitError::InvalidValue { element, reason } => {
                    assert_eq!(element, "domain");
                    assert!(reason.contains("nonzero"), "{reason}");
                }
                other => panic!("expected InvalidValue, got {other:?}"),
            }
        }
        // A domain whose header fin count would overflow the u32 width
        // model must error out rather than silently wrap into a weak
        // switch (7 fins/cell × 2^31 cells > u32::MAX).
        let err = DomainArray::prepare(
            CellDesign::table1(),
            DomainKind::Nvpg,
            1 << 16,
            1 << 15,
            SolverChoice::Auto,
            checkerboard,
        )
        .unwrap_err();
        match err {
            CircuitError::InvalidValue { element, reason } => {
                assert_eq!(element, "msw");
                assert!(reason.contains("header fins"), "{reason}");
            }
            other => panic!("expected InvalidValue, got {other:?}"),
        }
    }

    #[test]
    fn osr_domain_has_no_mtj_nodes() {
        let d =
            DomainArray::new(CellDesign::table1(), DomainKind::Osr, 2, 2, checkerboard).unwrap();
        assert!(d.mtj_states(0, 0).is_none());
        assert!(!d.kind().is_nonvolatile());
    }

    #[test]
    fn whole_domain_store_flips_every_mtj() {
        let mut d =
            DomainArray::new(CellDesign::table1(), DomainKind::Nvpg, 2, 2, checkerboard).unwrap();
        d.store().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                let expect = if checkerboard(r, c) {
                    (MtjState::AntiParallel, MtjState::Parallel)
                } else {
                    (MtjState::Parallel, MtjState::AntiParallel)
                };
                assert_eq!(d.mtj_states(r, c), Some(expect), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn checkerboard_survives_domain_power_cycle() {
        let mut d =
            DomainArray::new(CellDesign::table1(), DomainKind::Nvpg, 2, 2, checkerboard).unwrap();
        let store = d.store().unwrap();
        assert!(store.energy.0 > 0.0);
        d.shutdown(true).unwrap();
        d.hold(100e-9).unwrap();
        d.restore().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    d.data(r, c),
                    checkerboard(r, c),
                    "cell ({r},{c}) after power cycle"
                );
            }
        }
    }

    #[test]
    fn osr_domain_retains_data_through_sleep() {
        let mut d =
            DomainArray::new(CellDesign::table1(), DomainKind::Osr, 2, 2, checkerboard).unwrap();
        d.sleep().unwrap();
        d.hold(50e-9).unwrap();
        d.wake().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    d.data(r, c),
                    checkerboard(r, c),
                    "cell ({r},{c}) after sleep"
                );
            }
        }
    }

    #[test]
    fn sparse_solver_reaches_the_same_pattern() {
        let dense = DomainArray::with_solver(
            CellDesign::table1(),
            DomainKind::Nvpg,
            2,
            2,
            SolverChoice::Dense,
            checkerboard,
        )
        .unwrap();
        let sparse = DomainArray::with_solver(
            CellDesign::table1(),
            DomainKind::Nvpg,
            2,
            2,
            SolverChoice::Sparse,
            checkerboard,
        )
        .unwrap();
        assert_eq!(dense.pattern(), sparse.pattern());
    }

    #[test]
    fn batched_domain_solve_matches_serial_bitwise() {
        // Four varied designs, one topology: the dense batched lanes must
        // land on exactly the serial operating points (shared kernels).
        let designs: Vec<CellDesign> = [0.0, 5e-3, -5e-3, 10e-3]
            .iter()
            .map(|&dv| {
                let mut d = CellDesign::table1();
                d.nmos.vth0 += dv;
                d
            })
            .collect();
        let prepare = |d: &CellDesign| {
            DomainArray::prepare(
                *d,
                DomainKind::Nvpg,
                2,
                2,
                SolverChoice::Dense,
                checkerboard,
            )
            .unwrap()
        };
        let builders: Vec<DomainBuilder> = designs.iter().map(prepare).collect();
        let batched = DomainBuilder::solve_batch(builders, BatchMode::Fixed(4));
        assert_eq!(batched.len(), 4);
        for (d, res) in designs.iter().zip(batched) {
            let b = res.unwrap();
            let s = prepare(d).solve().unwrap();
            assert_eq!(b.pattern(), s.pattern());
            for (x, y) in b.state().as_slice().iter().zip(s.state().as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(b.static_power(), s.static_power());
            assert!(b.min_storage_margin() > 0.5, "storage margin collapsed");
        }
    }

    #[test]
    #[should_panic(expected = "no MTJs to store")]
    fn store_on_osr_panics() {
        let mut d =
            DomainArray::new(CellDesign::table1(), DomainKind::Osr, 2, 2, checkerboard).unwrap();
        let _ = d.store();
    }
}
