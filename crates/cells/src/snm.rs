//! Static noise margin (SNM) analysis.
//!
//! The paper's §II notes that the aggressive `(N_FL, N_FD) = (1,1)` design
//! lowers cell stability and that the PS-FinFET separation keeps the
//! NV-SRAM's noise margins equal to the 6T cell's during normal operation.
//! This module quantifies both claims with the classic butterfly-curve
//! construction:
//!
//! 1. the cell's inverter voltage-transfer characteristic (VTC) is traced
//!    with the feedback loop broken (DC sweep of the input), under hold
//!    (`WL = 0`) or read (`WL = V_DD`, bitlines precharged) conditions;
//! 2. the SNM is the side of the largest square inscribed in a butterfly
//!    lobe. We use the 45°-diagonal formulation: for each offset `c`, the
//!    square whose diagonal lies on `y = x + c` has side `|x_A(c) −
//!    x_B(c)|`, where `x_A` solves `f(x) = x + c` (curve 1) and `x_B`
//!    solves `f(x + c) = x` (mirrored curve 2); the SNM is the maximum
//!    over `c`.

use nvpg_circuit::dc::{sweep, DcOptions};
use nvpg_circuit::{Circuit, CircuitError};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::{Mtj, MtjState};
use nvpg_units::linspace;

use crate::cell::CellKind;
use crate::design::CellDesign;

/// Bias condition for the butterfly trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnmCondition {
    /// Wordline low: storage nodes isolated from the bitlines.
    Hold,
    /// Wordline high with bitlines precharged to V_DD (read disturb).
    Read,
}

/// Traces the cell inverter VTC `v_out = f(v_in)` at `n_points` input
/// values, under the given condition.
///
/// For [`CellKind::NvSram`] the output node additionally carries the
/// (switched-off) PS-FinFET + MTJ stack at the normal-mode CTRL bias, so
/// the comparison NV vs 6T quantifies the claim that the separation keeps
/// margins intact.
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn inverter_vtc(
    design: &CellDesign,
    kind: CellKind,
    condition: SnmCondition,
    n_points: usize,
) -> Result<Vec<(f64, f64)>, CircuitError> {
    let c = design.conditions;
    let gnd = Circuit::GROUND;
    let mut ckt = Circuit::new();
    let vin = ckt.node("vin");
    let out = ckt.node("out");
    let vdd = ckt.node("vdd");
    let wl = ckt.node("wl");
    let bl = ckt.node("bl");

    ckt.vsource("vvin", vin, gnd, 0.0)?;
    ckt.vsource("vvdd", vdd, gnd, c.vdd)?;
    let wl_level = match condition {
        SnmCondition::Hold => 0.0,
        SnmCondition::Read => c.vdd - c.wl_underdrive,
    };
    ckt.vsource("vwl", wl, gnd, wl_level)?;
    ckt.vsource("vbl", bl, gnd, c.vdd)?;

    let pu = design.pmos.with_fins(design.fins_load);
    let pd = design.nmos.with_fins(design.fins_driver);
    let pa = design.nmos.with_fins(design.fins_access);
    ckt.device(Box::new(FinFet::new("mpu", out, vin, vdd, pu)))?;
    ckt.device(Box::new(FinFet::new("mpd", out, vin, gnd, pd)))?;
    ckt.device(Box::new(FinFet::new("mpa", bl, wl, out, pa)))?;

    if matches!(kind, CellKind::NvSram) {
        let sr = ckt.node("sr");
        let ctrl = ckt.node("ctrl");
        let m = ckt.node("m");
        ckt.vsource("vsr", sr, gnd, 0.0)?;
        ckt.vsource("vctrl", ctrl, gnd, c.v_ctrl_normal)?;
        let ps = design.nmos.with_fins(design.fins_ps);
        ckt.device(Box::new(FinFet::new("mps", out, sr, m, ps)))?;
        ckt.device(Box::new(Mtj::new(
            "x1",
            ctrl,
            m,
            design.mtj,
            MtjState::Parallel,
        )))?;
    }

    let inputs = linspace(0.0, c.vdd, n_points);
    let opts = DcOptions::default().with_nodeset(out, c.vdd);
    let sols = sweep(&mut ckt, "vvin", &inputs, &opts)?;
    Ok(inputs
        .into_iter()
        .zip(sols.iter().map(|s| s.voltage(out)))
        .collect())
}

/// Linear interpolation helper over a sampled, monotone-x curve.
fn eval(curve: &[(f64, f64)], x: f64) -> f64 {
    if x <= curve[0].0 {
        return curve[0].1;
    }
    if x >= curve[curve.len() - 1].0 {
        return curve[curve.len() - 1].1;
    }
    let idx = curve.partition_point(|&(cx, _)| cx <= x) - 1;
    let (x0, y0) = curve[idx];
    let (x1, y1) = curve[idx + 1];
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// First root of `g(x) = 0` on `[0, hi]`, found by scanning `n` samples
/// for a sign change and bisecting the bracketing interval.
fn first_root(g: impl Fn(f64) -> f64, hi: f64, n: usize) -> Option<f64> {
    let xs = linspace(0.0, hi, n);
    let mut prev = g(xs[0]);
    for w in xs.windows(2) {
        let cur = g(w[1]);
        if prev == 0.0 {
            return Some(w[0]);
        }
        if prev.signum() != cur.signum() {
            // Bisect the bracket.
            let (mut a, mut b) = (w[0], w[1]);
            for _ in 0..60 {
                let m = 0.5 * (a + b);
                if g(m).signum() == prev.signum() {
                    a = m;
                } else {
                    b = m;
                }
            }
            return Some(0.5 * (a + b));
        }
        prev = cur;
    }
    None
}

/// Computes the SNM from a sampled VTC via the maximal-inscribed-square
/// construction (both butterfly lobes; identical inverters make them
/// symmetric, but both are evaluated and the smaller is returned).
///
/// # Panics
///
/// Panics if the curve has fewer than two samples.
pub fn snm_from_vtc(curve: &[(f64, f64)], vdd: f64) -> f64 {
    assert!(curve.len() >= 2, "VTC needs at least two samples");
    let f = |x: f64| eval(curve, x);
    // Upper-left lobe: squares on diagonals y = x + c with c > 0.
    let lobe = |sign: f64| {
        let mut best = 0.0_f64;
        for c in linspace(0.0, vdd, 201) {
            let xa = first_root(|x| f(x) - (x + sign * c), vdd, 400);
            let xb = first_root(|x| f(x + sign * c) - x, vdd, 400);
            if let (Some(xa), Some(xb)) = (xa, xb) {
                best = best.max(sign * (xa - xb));
            }
        }
        best
    };
    let upper = lobe(1.0);
    let lower = lobe(-1.0);
    upper.min(lower)
}

/// Convenience: traces the VTC and returns the SNM for a design, cell
/// kind, and bias condition.
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn static_noise_margin(
    design: &CellDesign,
    kind: CellKind,
    condition: SnmCondition,
) -> Result<f64, CircuitError> {
    let vtc = inverter_vtc(design, kind, condition, 161)?;
    Ok(snm_from_vtc(&vtc, design.conditions.vdd))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtc_is_a_falling_curve() {
        let d = CellDesign::table1();
        let vtc = inverter_vtc(&d, CellKind::Volatile6T, SnmCondition::Hold, 81).unwrap();
        assert_eq!(vtc.len(), 81);
        assert!(vtc[0].1 > 0.85, "output high at low input: {:?}", vtc[0]);
        assert!(vtc.last().unwrap().1 < 0.1, "output low at high input");
        // Monotone non-increasing.
        for w in vtc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
    }

    #[test]
    fn read_condition_degrades_low_level() {
        let d = CellDesign::table1();
        let hold = inverter_vtc(&d, CellKind::Volatile6T, SnmCondition::Hold, 41).unwrap();
        let read = inverter_vtc(&d, CellKind::Volatile6T, SnmCondition::Read, 41).unwrap();
        // At full input the output should sit higher under read (voltage
        // divider with the access transistor).
        assert!(read.last().unwrap().1 > hold.last().unwrap().1 + 0.02);
    }

    #[test]
    fn snm_of_ideal_inverter_is_analytic() {
        // Step-like ideal inverter with VDD = 1: SNM = 0.5 (square of side
        // 1/2 fits in each lobe).
        let curve: Vec<(f64, f64)> = (0..=1000)
            .map(|i| {
                let x = i as f64 / 1000.0;
                (x, if x < 0.5 { 1.0 } else { 0.0 })
            })
            .collect();
        let snm = snm_from_vtc(&curve, 1.0);
        assert!((snm - 0.5).abs() < 0.02, "ideal SNM = {snm}");
    }

    #[test]
    fn hold_snm_in_plausible_range_and_read_is_lower() {
        let d = CellDesign::table1();
        let hold = static_noise_margin(&d, CellKind::Volatile6T, SnmCondition::Hold).unwrap();
        let read = static_noise_margin(&d, CellKind::Volatile6T, SnmCondition::Read).unwrap();
        assert!(
            (0.1..0.45).contains(&hold),
            "hold SNM = {hold} out of plausible range"
        );
        assert!(read < hold, "read SNM {read} should be below hold {hold}");
        assert!(read > 0.01, "cell must remain read-stable: {read}");
    }

    #[test]
    fn wordline_underdrive_improves_read_snm() {
        // The bias-assist knob of §II: 100 mV of WL underdrive must raise
        // the read SNM of the aggressive (1,1) design.
        let base = CellDesign::table1();
        let mut assisted = base;
        assisted.conditions.wl_underdrive = 0.1;
        let snm_base =
            static_noise_margin(&base, CellKind::Volatile6T, SnmCondition::Read).unwrap();
        let snm_assist =
            static_noise_margin(&assisted, CellKind::Volatile6T, SnmCondition::Read).unwrap();
        assert!(
            snm_assist > snm_base + 0.005,
            "underdrive should help: {snm_base} -> {snm_assist}"
        );
        // Hold SNM is unaffected (wordline is low anyway).
        let hold_base =
            static_noise_margin(&base, CellKind::Volatile6T, SnmCondition::Hold).unwrap();
        let hold_assist =
            static_noise_margin(&assisted, CellKind::Volatile6T, SnmCondition::Hold).unwrap();
        assert!((hold_base - hold_assist).abs() < 1e-6);
    }

    #[test]
    fn nv_cell_margins_match_6t_in_normal_mode() {
        // The PS-FinFET separation claim: SNM difference within a few mV.
        let d = CellDesign::table1();
        let s6 = static_noise_margin(&d, CellKind::Volatile6T, SnmCondition::Hold).unwrap();
        let snv = static_noise_margin(&d, CellKind::NvSram, SnmCondition::Hold).unwrap();
        assert!(
            (s6 - snv).abs() < 0.01,
            "6T SNM {s6} vs NV SNM {snv} should match"
        );
    }
}
