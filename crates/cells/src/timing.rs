//! Cell timing characterisation.
//!
//! The paper's performance claim is temporal, not just energetic: "the
//! NV-SRAM cell with the NVPG architecture can have the same read/write
//! speed as the 6T-SRAM cell" (§IV). This module measures the relevant
//! delays from the transient waveforms:
//!
//! * **write time** — wordline edge to storage-node crossover;
//! * **read development time** — wordline edge until the differential
//!   bitline-driver current exceeds a sense threshold;
//! * **restore time** — power-switch turn-on until the storage nodes
//!   separate to 80 % of V_DD (NV cell only).

use nvpg_circuit::CircuitError;

use crate::bench::CellBench;
use crate::cell::{CellKind, MtjConfig};
use crate::design::CellDesign;

/// Measured cell delays (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Wordline edge → storage-node crossover during a write.
    pub t_write: f64,
    /// Wordline edge → differential bitline current above the sense
    /// threshold during a read.
    pub t_read_develop: f64,
    /// Power-up → storage nodes separated to 80 % V_DD during a restore
    /// (`None` for the volatile cell).
    pub t_restore: Option<f64>,
}

/// Sense-amplifier current threshold used for the read-development time.
const SENSE_CURRENT: f64 = 10e-6;

/// Measures the timing report for a cell kind at the given design point.
///
/// # Errors
///
/// Propagates simulation errors; returns
/// [`CircuitError::DcNonConvergence`] (with detail) if an expected
/// waveform crossing never happens — that means the cell failed the
/// operation, which callers should treat as a design failure.
pub fn timing(design: &CellDesign, kind: CellKind) -> Result<TimingReport, CircuitError> {
    let c = design.conditions;
    let t_cycle = c.cycle_time();
    let wl_edge = 0.1 * t_cycle; // the bench raises WL at 0.1·T

    let missing = |what: &str| CircuitError::DcNonConvergence {
        detail: format!("timing: {what} crossing not found"),
    };

    // Write time: start at Q = 1, write 0, watch the crossover.
    let mut bench = CellBench::new(*design, kind, true, MtjConfig::stored(true))?;
    let write = bench.write(false)?;
    let t_flip = {
        let q = write.trace.signal("v(q)").expect("recorded");
        let qb = write.trace.signal("v(qb)").expect("recorded");
        let time = write.trace.time();
        let mut found = None;
        for k in 1..time.len() {
            if time[k] < wl_edge {
                continue;
            }
            if qb[k] >= q[k] && qb[k - 1] < q[k - 1] {
                found = Some(time[k]);
                break;
            }
        }
        found.ok_or_else(|| missing("write crossover"))?
    };
    let t_write = t_flip - wl_edge;

    // Read development: fresh cell, Q = 1, read; watch |i(vbl) − i(vblb)|.
    let mut bench = CellBench::new(*design, kind, true, MtjConfig::stored(true))?;
    let read = bench.read()?;
    let t_dev = {
        let ibl = read.trace.signal("i(vbl)").expect("recorded");
        let iblb = read.trace.signal("i(vblb)").expect("recorded");
        let time = read.trace.time();
        let mut found = None;
        for k in 0..time.len() {
            if time[k] < wl_edge {
                continue;
            }
            if (ibl[k] - iblb[k]).abs() > SENSE_CURRENT {
                found = Some(time[k]);
                break;
            }
        }
        found.ok_or_else(|| missing("read development"))?
    };
    let t_read_develop = t_dev - wl_edge;

    // Restore time (NV only): full power cycle, watch node separation.
    let t_restore = if matches!(kind, CellKind::NvSram) {
        let mut bench = CellBench::new(*design, kind, true, MtjConfig::stored(false))?;
        bench.store()?;
        bench.shutdown_enter(true, 3e-9)?;
        bench.idle(400e-9)?;
        let restore = bench.restore()?;
        let q = restore.trace.signal("v(q)").expect("recorded");
        let qb = restore.trace.signal("v(qb)").expect("recorded");
        let time = restore.trace.time();
        let target = 0.8 * c.vdd;
        let t_on = 0.05 * c.restore_duration; // switch gate starts falling
        let mut found = None;
        for k in 0..time.len() {
            if time[k] >= t_on && (q[k] - qb[k]).abs() > target {
                found = Some(time[k] - t_on);
                break;
            }
        }
        Some(found.ok_or_else(|| missing("restore separation"))?)
    } else {
        None
    };

    Ok(TimingReport {
        t_write,
        t_read_develop,
        t_restore,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_sub_cycle() {
        let d = CellDesign::table1();
        let t = timing(&d, CellKind::Volatile6T).unwrap();
        let cycle = d.conditions.cycle_time();
        assert!(t.t_write > 0.0 && t.t_write < 0.6 * cycle, "{t:?}");
        assert!(
            t.t_read_develop > 0.0 && t.t_read_develop < 0.6 * cycle,
            "{t:?}"
        );
        assert_eq!(t.t_restore, None);
    }

    #[test]
    fn nv_cell_matches_6t_speed() {
        // The headline separation claim, in the time domain: NV read and
        // write delays within 10 % of the 6T cell's.
        let d = CellDesign::table1();
        let t6 = timing(&d, CellKind::Volatile6T).unwrap();
        let tn = timing(&d, CellKind::NvSram).unwrap();
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        assert!(
            rel(tn.t_write, t6.t_write) < 0.10,
            "write: NV {} vs 6T {}",
            tn.t_write,
            t6.t_write
        );
        assert!(
            rel(tn.t_read_develop, t6.t_read_develop) < 0.10,
            "read: NV {} vs 6T {}",
            tn.t_read_develop,
            t6.t_read_develop
        );
    }

    #[test]
    fn restore_completes_within_its_budget() {
        let d = CellDesign::table1();
        let t = timing(&d, CellKind::NvSram).unwrap();
        let restore = t.t_restore.expect("NV cell restores");
        assert!(
            restore > 0.0 && restore < d.conditions.restore_duration,
            "restore separation at {restore:e}"
        );
    }
}
