//! Cell design point: fin counts, rail voltages, timing (paper Table I).

use nvpg_devices::finfet::FinFetParams;
use nvpg_devices::mtj::MtjParams;
use nvpg_devices::retention::{
    FefetParams, FefetRetention, MtjRetention, NandSpinParams, NandSpinRetention, RetentionDevice,
};

/// Rail voltages and timing of the operating modes (Table I plus §III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingConditions {
    /// Nominal supply (V): 0.9.
    pub vdd: f64,
    /// Low-voltage retention (sleep) supply (V): 0.7.
    pub vdd_sleep: f64,
    /// SR-line voltage activating the PS-FinFETs (V): 0.65.
    pub v_sr: f64,
    /// CTRL-line bias in the normal SRAM mode (V): 0.07 — the leakage
    /// minimisation knob of Fig. 3(a).
    pub v_ctrl_normal: f64,
    /// CTRL-line bias in the sleep mode (V): 0.04.
    pub v_ctrl_sleep: f64,
    /// CTRL-line voltage during the L-store step (V): 0.5.
    pub v_ctrl_store: f64,
    /// Power-switch gate voltage for ordinary cutoff (V): V_DD.
    pub v_pg_off: f64,
    /// Power-switch gate voltage for super cutoff \[20\] (V): 1.0.
    pub v_pg_super: f64,
    /// Read/write frequency (Hz): 300 MHz (1 GHz for Fig. 9(b)).
    pub rw_freq: f64,
    /// Store pulse duration per step (s): 10 ns.
    pub store_duration: f64,
    /// Restore settle time (s).
    pub restore_duration: f64,
    /// Source edge (rise/fall) time (s).
    pub edge_time: f64,
    /// Wordline underdrive (V below V_DD during reads) — the bias-assist
    /// technique §II mentions for the aggressive `(N_FL, N_FD) = (1,1)`
    /// design. 0 disables the assist.
    pub wl_underdrive: f64,
}

impl OperatingConditions {
    /// Table I values.
    pub fn table1() -> Self {
        OperatingConditions {
            vdd: 0.9,
            vdd_sleep: 0.7,
            v_sr: 0.65,
            v_ctrl_normal: 0.07,
            v_ctrl_sleep: 0.04,
            v_ctrl_store: 0.5,
            v_pg_off: 0.9,
            v_pg_super: 1.0,
            rw_freq: 300e6,
            store_duration: 10e-9,
            restore_duration: 10e-9,
            edge_time: 50e-12,
            wl_underdrive: 0.0,
        }
    }

    /// Read/write cycle period `1/f`.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.rw_freq
    }
}

/// Which nonvolatile retention technology the cell's NV elements use.
///
/// `Mtj` and `NandSpin` reuse the design's [`CellDesign::mtj`] junction
/// card (NAND-SPIN is that junction with an SOT write assist); `Fefet`
/// carries its own parameter set since the element is not a junction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetentionKind {
    /// The paper's STT-MTJ (the default).
    Mtj,
    /// FeFET retention cell (arXiv:2603.26439).
    Fefet(FefetParams),
    /// NAND-SPIN element (arXiv:1912.06986): the design's junction with
    /// the given SOT write-assist factor.
    NandSpin {
        /// Effective critical-current / τ_D reduction factor (> 1).
        assist: f64,
    },
}

impl RetentionKind {
    /// Stable lowercase label (`"mtj"`, `"fefet"`, `"nand_spin"`) —
    /// matches [`RetentionDevice::technology`] and the serving layer's
    /// `technology` request field.
    pub fn label(&self) -> &'static str {
        match self {
            RetentionKind::Mtj => "mtj",
            RetentionKind::Fefet(_) => "fefet",
            RetentionKind::NandSpin { .. } => "nand_spin",
        }
    }

    /// All supported technology labels, in presentation order.
    pub const LABELS: [&'static str; 3] = ["mtj", "fefet", "nand_spin"];
}

/// Complete cell design point: fin numbers `(N_FL, N_FD, N_FP, N_FPS)`,
/// the power-switch fin count `N_FSW`, device model cards, and operating
/// conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellDesign {
    /// Load (pull-up) pFinFET fins, `N_FL`.
    pub fins_load: u32,
    /// Driver (pull-down) nFinFET fins, `N_FD`.
    pub fins_driver: u32,
    /// Access (pass) nFinFET fins, `N_FP`.
    pub fins_access: u32,
    /// PS-FinFET fins, `N_FPS`.
    pub fins_ps: u32,
    /// Header power-switch pFinFET fins per cell, `N_FSW` (7 in the paper
    /// so that `VV_DD ≥ 97 % · V_DD` during store).
    pub fins_power_switch: u32,
    /// Extra threshold voltage of the header switch (V). Power gating uses
    /// high-V_th switches (the "multi-threshold" in MTCMOS \[1\]) so that
    /// ordinary cutoff already beats the sleep mode's retention leakage.
    pub power_switch_vth_boost: f64,
    /// NMOS model card.
    pub nmos: FinFetParams,
    /// PMOS model card.
    pub pmos: FinFetParams,
    /// MTJ macromodel card (also the junction the NAND-SPIN element
    /// derives its effective write parameters from).
    pub mtj: MtjParams,
    /// Which retention technology the NV elements instantiate.
    pub retention: RetentionKind,
    /// Per-cell share of bitline capacitance (F).
    pub c_bitline: f64,
    /// Bitline driver output impedance (Ω).
    pub r_bitline_driver: f64,
    /// Operating conditions.
    pub conditions: OperatingConditions,
}

impl CellDesign {
    /// The paper's design point: `(N_FL, N_FD, N_FP, N_FPS) = (1,1,1,1)`,
    /// `N_FSW = 7`, Table I device cards, 300 MHz.
    pub fn table1() -> Self {
        CellDesign {
            fins_load: 1,
            fins_driver: 1,
            fins_access: 1,
            fins_ps: 1,
            fins_power_switch: 7,
            power_switch_vth_boost: 0.15,
            nmos: FinFetParams::nmos_20nm(),
            pmos: FinFetParams::pmos_20nm(),
            mtj: MtjParams::table1(),
            retention: RetentionKind::Mtj,
            c_bitline: 4e-15,
            r_bitline_driver: 500.0,
            conditions: OperatingConditions::table1(),
        }
    }

    /// The Fig. 9(b) technology point: 1 GHz read/write and
    /// `J_C = 1×10⁶ A/cm²`. The store drive is re-designed for the
    /// smaller critical current — `V_SR = 0.40 V` and `V_CTRL(store) =
    /// 0.13 V` deliver ≈ 1.5×I_C through the low-J_C junctions, which is
    /// where the figure's "much shorter BET" comes from (the store
    /// energy scales with the write current).
    pub fn fig9b() -> Self {
        let mut d = CellDesign::table1();
        d.conditions.rw_freq = 1e9;
        d.conditions.v_sr = 0.40;
        d.conditions.v_ctrl_store = 0.13;
        d.mtj = MtjParams::table1_low_jc();
        d
    }

    /// Returns a copy with a different power-switch fin count.
    ///
    /// # Panics
    ///
    /// Panics if `fins == 0`.
    #[must_use]
    pub fn with_power_switch_fins(mut self, fins: u32) -> Self {
        assert!(fins >= 1, "power switch needs at least one fin");
        self.fins_power_switch = fins;
        self
    }

    /// Returns a copy using a different retention technology.
    #[must_use]
    pub fn with_retention(mut self, retention: RetentionKind) -> Self {
        self.retention = retention;
        self
    }

    /// The Table-I design point re-targeted at a retention technology by
    /// its lowercase label (`"mtj"`, `"fefet"`, `"nand_spin"`), or `None`
    /// for an unknown label.
    ///
    /// Each technology keeps the paper's cell and rails; only what the
    /// technology genuinely changes moves. The NAND-SPIN point shortens
    /// the store pulse to 2 ns — the SOT assist switches the junction
    /// well inside that window, which is where its store-energy advantage
    /// comes from.
    pub fn for_technology(label: &str) -> Option<Self> {
        let base = CellDesign::table1();
        match label {
            "mtj" => Some(base),
            "fefet" => Some(base.with_retention(RetentionKind::Fefet(FefetParams::demo()))),
            "nand_spin" => {
                let mut d = base.with_retention(RetentionKind::NandSpin { assist: 4.0 });
                d.conditions.store_duration = 2e-9;
                Some(d)
            }
            _ => None,
        }
    }

    /// Builds the boxed [`RetentionDevice`] this design's NV elements
    /// instantiate.
    pub fn retention_device(&self) -> Box<dyn RetentionDevice> {
        match self.retention {
            RetentionKind::Mtj => Box::new(MtjRetention::new(self.mtj)),
            RetentionKind::Fefet(p) => Box::new(FefetRetention::new(p)),
            RetentionKind::NandSpin { assist } => {
                Box::new(NandSpinRetention::new(NandSpinParams {
                    mtj: self.mtj,
                    assist,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let d = CellDesign::table1();
        assert_eq!(
            (d.fins_load, d.fins_driver, d.fins_access, d.fins_ps),
            (1, 1, 1, 1)
        );
        assert_eq!(d.fins_power_switch, 7);
        let c = d.conditions;
        assert_eq!(c.vdd, 0.9);
        assert_eq!(c.v_sr, 0.65);
        assert_eq!(c.v_ctrl_normal, 0.07);
        assert_eq!(c.v_ctrl_sleep, 0.04);
        assert_eq!(c.v_ctrl_store, 0.5);
        assert_eq!(c.v_pg_super, 1.0);
        assert_eq!(c.rw_freq, 300e6);
        assert_eq!(c.store_duration, 10e-9);
        assert!((c.cycle_time() - 3.333e-9).abs() < 1e-11);
    }

    #[test]
    fn fig9b_point() {
        let d = CellDesign::fig9b();
        assert_eq!(d.conditions.rw_freq, 1e9);
        assert!((d.mtj.i_critical() - 3.14e-6).abs() < 0.05e-6);
    }

    #[test]
    fn power_switch_fins_builder() {
        let d = CellDesign::table1().with_power_switch_fins(3);
        assert_eq!(d.fins_power_switch, 3);
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn zero_power_switch_fins_rejected() {
        let _ = CellDesign::table1().with_power_switch_fins(0);
    }

    #[test]
    fn technology_lookup_covers_all_labels() {
        for label in RetentionKind::LABELS {
            let d = CellDesign::for_technology(label).unwrap();
            assert_eq!(d.retention.label(), label);
            assert_eq!(d.retention_device().technology(), label);
        }
        assert!(CellDesign::for_technology("sot-mram").is_none());
        assert_eq!(CellDesign::table1().retention, RetentionKind::Mtj);
    }

    #[test]
    fn nand_spin_derives_from_the_design_junction() {
        let mut d = CellDesign::for_technology("nand_spin").unwrap();
        d.mtj = MtjParams::table1_low_jc();
        let dev = d.retention_device();
        // The effective write threshold tracks the design's junction card.
        let expect = MtjParams {
            jc: d.mtj.jc / 4.0,
            ..d.mtj
        }
        .i_critical();
        assert!((dev.disturb_retention_time(0.0) > 0.0) && expect > 0.0);
        assert!(d.conditions.store_duration < 10e-9);
    }
}
