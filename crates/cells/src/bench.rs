//! The cell test bench: a built cell plus phase-sequenced simulation.
//!
//! [`CellBench`] owns one cell netlist and chains transient phases through
//! it, mirroring how the paper drives a cell through the Fig. 5 benchmark
//! sequences. Each phase reprograms the drive waveforms (always starting
//! from the previous DC level, so nothing jumps), runs a transient
//! continuing from the previous final state, and reports the energy all
//! sources delivered during the phase.

use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, CircuitError, DcSolution, StepStats, Trace, Waveform};
use nvpg_devices::mtj::MtjState;
use nvpg_units::{Joules, Seconds};

use crate::cell::{build_cell, sources, CellKind, CellNodes, MtjConfig};
use crate::design::CellDesign;

/// Result of one simulated phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase label (e.g. `"read"`, `"store-H"`).
    pub name: String,
    /// Phase duration.
    pub duration: Seconds,
    /// Total energy delivered by all sources during the phase.
    pub energy: Joules,
    /// Recorded waveforms (phase-local time axis starting at 0).
    pub trace: Trace,
    /// Step-control and solver-reuse telemetry for the phase transient.
    pub steps: StepStats,
}

/// Operating modes used for static (DC) characterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Normal SRAM operation: full V_DD, switch on, SR off,
    /// CTRL = 0.07 V.
    Normal,
    /// Low-voltage retention: V_DD lowered to 0.7 V, CTRL = 0.04 V.
    Sleep,
    /// Power switch off.
    Shutdown {
        /// Drive the header gate above V_DD (super cutoff \[20\]).
        super_cutoff: bool,
    },
}

/// The per-source DC levels currently applied (used as waveform start
/// points so phases never make sources jump).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Levels {
    vdd: f64,
    vpg: f64,
    vwl: f64,
    vbl: f64,
    vblb: f64,
    vsr: f64,
    vctrl: f64,
}

/// A built cell plus the simulation state to run operations against it.
#[derive(Debug)]
pub struct CellBench {
    ckt: Circuit,
    nodes: CellNodes,
    design: CellDesign,
    kind: CellKind,
    state: DcSolution,
    levels: Levels,
}

impl CellBench {
    /// Builds a cell of the given kind, initialises the MTJs to `mtjs`,
    /// and settles the normal-mode operating point with `Q = data_q`.
    ///
    /// # Errors
    ///
    /// Propagates netlist or DC-convergence errors.
    pub fn new(
        design: CellDesign,
        kind: CellKind,
        data_q: bool,
        mtjs: MtjConfig,
    ) -> Result<Self, CircuitError> {
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, &design, kind, mtjs)?;
        let c = design.conditions;
        let levels = Levels {
            vdd: c.vdd,
            vpg: 0.0,
            vwl: 0.0,
            vbl: c.vdd,
            vblb: c.vdd,
            vsr: 0.0,
            vctrl: c.v_ctrl_normal,
        };
        let (vq, vqb) = if data_q { (c.vdd, 0.0) } else { (0.0, c.vdd) };
        let opts = DcOptions::default()
            .with_nodeset(nodes.q, vq)
            .with_nodeset(nodes.qb, vqb)
            .with_nodeset(nodes.vvdd, c.vdd)
            .with_nodeset(nodes.bl, c.vdd)
            .with_nodeset(nodes.blb, c.vdd);
        let state = operating_point(&mut ckt, &opts)?;
        Ok(CellBench {
            ckt,
            nodes,
            design,
            kind,
            state,
            levels,
        })
    }

    /// The cell's node handles.
    pub fn nodes(&self) -> &CellNodes {
        &self.nodes
    }

    /// The design point.
    pub fn design(&self) -> &CellDesign {
        &self.design
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Storage-node voltages `(v(Q), v(QB))` in the current state.
    pub fn storage_voltages(&self) -> (f64, f64) {
        (
            self.state.voltage(self.nodes.q),
            self.state.voltage(self.nodes.qb),
        )
    }

    /// The currently latched data, judged by `v(Q) > v(QB)`.
    pub fn data(&self) -> bool {
        let (q, qb) = self.storage_voltages();
        q > qb
    }

    /// Current MTJ states `(Q side, QB side)` (NV cells only).
    pub fn mtj_states(&self) -> Option<(MtjState, MtjState)> {
        let decode = |name: &str| -> Option<MtjState> {
            let st = self.ckt.device_state(name)?;
            let v = st.iter().find(|(l, _)| l == "state")?.1;
            Some(if v > 0.5 {
                MtjState::AntiParallel
            } else {
                MtjState::Parallel
            })
        };
        Some((decode("xl")?, decode("xr")?))
    }

    fn level_of(&self, source: &str) -> f64 {
        match source {
            sources::VDD => self.levels.vdd,
            sources::VPG => self.levels.vpg,
            sources::VWL => self.levels.vwl,
            sources::VBL => self.levels.vbl,
            sources::VBLB => self.levels.vblb,
            sources::VSR => self.levels.vsr,
            sources::VCTRL => self.levels.vctrl,
            _ => 0.0,
        }
    }

    fn store_level(&mut self, source: &str, value: f64) {
        match source {
            sources::VDD => self.levels.vdd = value,
            sources::VPG => self.levels.vpg = value,
            sources::VWL => self.levels.vwl = value,
            sources::VBL => self.levels.vbl = value,
            sources::VBLB => self.levels.vblb = value,
            sources::VSR => self.levels.vsr = value,
            sources::VCTRL => self.levels.vctrl = value,
            _ => {}
        }
    }

    /// A PWL ramp from the source's current level to `to`, starting at
    /// `t0` and taking the design edge time.
    fn ramp_from(&self, source: &str, t0: f64, to: f64) -> Waveform {
        let from = self.level_of(source);
        let edge = self.design.conditions.edge_time;
        Waveform::Pwl(vec![
            (0.0, from),
            (t0.max(0.0), from),
            (t0.max(0.0) + edge, to),
        ])
    }

    /// Runs one transient phase of `duration`, applying the given waveform
    /// overrides (all other sources hold their current level).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn phase(
        &mut self,
        name: &str,
        duration: f64,
        waves: &[(&str, Waveform)],
    ) -> Result<PhaseResult, CircuitError> {
        let _span = nvpg_obs::span_labeled("phase", name);
        for (src, wave) in waves {
            self.ckt.set_source(src, wave.clone())?;
        }
        let opts = TransientOptions {
            t_stop: duration,
            // The LTE controller owns accuracy, so the hard cap only needs
            // to bound the trace sampling interval: ≥ 50 samples per phase,
            // at most 2 ns per step. (The pre-LTE cap of duration/400
            // clamped to 100 ps forced long sleep/shutdown phases to
            // thousands of steps regardless of how quiescent they were.)
            dt_max: (duration / 50.0).clamp(1e-12, 2e-9),
            dt_init: 1e-12,
            // 3 mV per 0.9 V swing: far inside the few-percent agreement
            // the paper figures are compared at, and ~√3 fewer steps than
            // the 1 mV default through the switching edges.
            lte_reltol: 3e-3,
            lte_abstol: 3e-6,
            record_device_state: matches!(self.kind, CellKind::NvSram),
            // FinFET/MTJ stamps are reused while no terminal moved more
            // than 1 µV; the induced current error is bounded by g·1 µV,
            // orders below the femtojoule energies the figures resolve.
            device_bypass_tol: 1e-6,
            ..TransientOptions::default()
        };
        let result = transient(&mut self.ckt, &opts, &self.state)?;
        self.state = result.final_state;

        // Freeze every overridden source at its end-of-phase value so the
        // next phase starts from there.
        for (src, wave) in waves {
            let end = wave.value(duration);
            self.ckt.set_source(src, end)?;
            self.store_level(src, end);
        }

        let mut energy = 0.0;
        for src in [
            sources::VDD,
            sources::VPG,
            sources::VWL,
            sources::VBL,
            sources::VBLB,
            sources::VSR,
            sources::VCTRL,
        ] {
            let sig = format!("p({src})");
            if result.trace.signal(&sig).is_ok() {
                energy += result.trace.integral(&sig).expect("signal exists");
            }
        }
        Ok(PhaseResult {
            name: name.to_owned(),
            duration: Seconds(duration),
            energy: Joules(energy),
            trace: result.trace,
            steps: result.steps,
        })
    }

    /// Holds the present bias point for `duration` (idle phase).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn idle(&mut self, duration: f64) -> Result<PhaseResult, CircuitError> {
        self.phase("idle", duration, &[])
    }

    /// One read cycle at the design frequency: wordline pulse with both
    /// bitlines precharged/held at V_DD.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn read(&mut self) -> Result<PhaseResult, CircuitError> {
        let c = self.design.conditions;
        let t = c.cycle_time();
        let e = c.edge_time;
        // Wordline underdrive (read assist): a weaker access transistor
        // disturbs the cell less during reads.
        let v_wl = c.vdd - c.wl_underdrive;
        let wl = Waveform::Pwl(vec![
            (0.0, 0.0),
            (0.1 * t, 0.0),
            (0.1 * t + e, v_wl),
            (0.7 * t, v_wl),
            (0.7 * t + e, 0.0),
        ]);
        let bl = self.ramp_from(sources::VBL, 0.0, c.vdd);
        let blb = self.ramp_from(sources::VBLB, 0.0, c.vdd);
        self.phase(
            "read",
            t,
            &[(sources::VWL, wl), (sources::VBL, bl), (sources::VBLB, blb)],
        )
    }

    /// One write cycle at the design frequency: bitlines driven to the
    /// data value under a wordline pulse, then returned to the precharge
    /// level.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn write(&mut self, data_q: bool) -> Result<PhaseResult, CircuitError> {
        let c = self.design.conditions;
        let t = c.cycle_time();
        let e = c.edge_time;
        let (bl_target, blb_target) = if data_q { (c.vdd, 0.0) } else { (0.0, c.vdd) };
        let drive = |from: f64, target: f64| {
            Waveform::Pwl(vec![
                (0.0, from),
                (0.05 * t, from),
                (0.05 * t + e, target),
                (0.8 * t, target),
                (0.8 * t + e, c.vdd),
            ])
        };
        let wl = Waveform::Pwl(vec![
            (0.0, 0.0),
            (0.1 * t, 0.0),
            (0.1 * t + e, c.vdd),
            (0.7 * t, c.vdd),
            (0.7 * t + e, 0.0),
        ]);
        let bl = drive(self.level_of(sources::VBL), bl_target);
        let blb = drive(self.level_of(sources::VBLB), blb_target);
        self.phase(
            "write",
            t,
            &[(sources::VWL, wl), (sources::VBL, bl), (sources::VBLB, blb)],
        )
    }

    /// Enters the sleep (low-voltage retention) mode and holds it for
    /// `duration`: supply ramps to 0.7 V, CTRL drops to its sleep bias.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn sleep(&mut self, duration: f64) -> Result<PhaseResult, CircuitError> {
        let c = self.design.conditions;
        let mut waves = vec![(sources::VDD, self.ramp_from(sources::VDD, 0.0, c.vdd_sleep))];
        if matches!(self.kind, CellKind::NvSram) {
            waves.push((
                sources::VCTRL,
                self.ramp_from(sources::VCTRL, 0.0, c.v_ctrl_sleep),
            ));
        }
        self.phase("sleep", duration, &waves)
    }

    /// Returns from sleep (or from a restore) to the normal operation
    /// point: full V_DD, switch on, SR off, CTRL at its normal bias.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn wake_normal(&mut self) -> Result<PhaseResult, CircuitError> {
        let c = self.design.conditions;
        let mut waves = vec![
            (sources::VDD, self.ramp_from(sources::VDD, 0.0, c.vdd)),
            (sources::VPG, self.ramp_from(sources::VPG, 0.0, 0.0)),
        ];
        if matches!(self.kind, CellKind::NvSram) {
            waves.push((sources::VSR, self.ramp_from(sources::VSR, 0.0, 0.0)));
            waves.push((
                sources::VCTRL,
                self.ramp_from(sources::VCTRL, 0.0, c.v_ctrl_normal),
            ));
        }
        self.phase("wake", 2e-9, &waves)
    }

    /// The two-step store operation (§III): H-store (SR on, CTRL low)
    /// then L-store (CTRL raised to its store level), each for the design
    /// store duration, then SR/CTRL return to zero.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence; returns the three phases
    /// `store-H`, `store-L`, `store-end`.
    ///
    /// # Panics
    ///
    /// Panics if called on a volatile 6T cell.
    #[allow(clippy::vec_init_then_push)] // the three phases must run in order
    pub fn store(&mut self) -> Result<Vec<PhaseResult>, CircuitError> {
        assert!(
            matches!(self.kind, CellKind::NvSram),
            "store requires an NV-SRAM cell"
        );
        let c = self.design.conditions;
        let mut phases = Vec::new();
        // Step 1: H-store. SR up, CTRL to 0.
        phases.push(self.phase(
            "store-H",
            c.store_duration,
            &[
                (sources::VSR, self.ramp_from(sources::VSR, 0.0, c.v_sr)),
                (sources::VCTRL, self.ramp_from(sources::VCTRL, 0.0, 0.0)),
            ],
        )?);
        // Step 2: L-store. CTRL raised with SR held.
        phases.push(self.phase(
            "store-L",
            c.store_duration,
            &[(
                sources::VCTRL,
                self.ramp_from(sources::VCTRL, 0.0, c.v_ctrl_store),
            )],
        )?);
        // Wind-down: SR and CTRL to zero (ready for shutdown).
        phases.push(self.phase(
            "store-end",
            1e-9,
            &[
                (sources::VSR, self.ramp_from(sources::VSR, 0.0, 0.0)),
                (sources::VCTRL, self.ramp_from(sources::VCTRL, 0.0, 0.0)),
            ],
        )?);
        Ok(phases)
    }

    /// Turns the power switch off (optionally with super cutoff) and lets
    /// the virtual rail collapse for `settle` seconds.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn shutdown_enter(
        &mut self,
        super_cutoff: bool,
        settle: f64,
    ) -> Result<PhaseResult, CircuitError> {
        let c = self.design.conditions;
        let vg = if super_cutoff {
            c.v_pg_super
        } else {
            c.v_pg_off
        };
        self.phase(
            "shutdown",
            settle,
            &[(sources::VPG, self.ramp_from(sources::VPG, 0.0, vg))],
        )
    }

    /// The restore operation: SR on first, then the power switch turns
    /// back on and the bistable resolves from the MTJ imbalance; finally
    /// SR returns to zero and CTRL to its normal bias.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics if called on a volatile 6T cell.
    pub fn restore(&mut self) -> Result<PhaseResult, CircuitError> {
        assert!(
            matches!(self.kind, CellKind::NvSram),
            "restore requires an NV-SRAM cell"
        );
        let c = self.design.conditions;
        let dur = c.restore_duration;
        let e = c.edge_time;
        // SR rises immediately. The switch gate then falls SLOWLY (a
        // staged turn-on, as real power gating uses to limit rush
        // current): the virtual rail sweeps through the regenerative
        // region over nanoseconds, giving the MTJ-imbalance race time to
        // resolve before the bistable latches. SR drops at 70 % of the
        // phase; the tail lets the latched state harden.
        let sr = Waveform::Pwl(vec![
            (0.0, self.level_of(sources::VSR)),
            (e, c.v_sr),
            (0.7 * dur, c.v_sr),
            (0.7 * dur + e, 0.0),
        ]);
        let pg = Waveform::Pwl(vec![
            (0.0, self.level_of(sources::VPG)),
            (0.05 * dur, self.level_of(sources::VPG)),
            (0.45 * dur, 0.0),
        ]);
        let ctrl = Waveform::Pwl(vec![
            (0.0, self.level_of(sources::VCTRL)),
            (0.7 * dur, self.level_of(sources::VCTRL)),
            (0.7 * dur + e, c.v_ctrl_normal),
        ]);
        self.phase(
            "restore",
            dur,
            &[
                (sources::VSR, sr),
                (sources::VPG, pg),
                (sources::VCTRL, ctrl),
            ],
        )
    }

    /// Re-settles a DC operating point in the given mode and returns the
    /// total static power drawn from all sources.
    ///
    /// The bench's state and levels are updated to the new mode.
    ///
    /// # Errors
    ///
    /// Propagates DC non-convergence.
    pub fn static_power(&mut self, mode: Mode) -> Result<f64, CircuitError> {
        let c = self.design.conditions;
        // In shutdown the whole power domain is off: the bitlines are
        // discharged as well, so the only leakage path left is the header
        // switch itself (this is what super cutoff then suppresses).
        let (vdd, vpg, vctrl, vbl) = match mode {
            Mode::Normal => (c.vdd, 0.0, c.v_ctrl_normal, c.vdd),
            Mode::Sleep => (c.vdd_sleep, 0.0, c.v_ctrl_sleep, c.vdd),
            Mode::Shutdown { super_cutoff } => (
                c.vdd,
                if super_cutoff {
                    c.v_pg_super
                } else {
                    c.v_pg_off
                },
                0.0,
                0.0,
            ),
        };
        self.ckt.set_source(sources::VDD, vdd)?;
        self.ckt.set_source(sources::VPG, vpg)?;
        self.ckt.set_source(sources::VBL, vbl)?;
        self.ckt.set_source(sources::VBLB, vbl)?;
        self.store_level(sources::VDD, vdd);
        self.store_level(sources::VPG, vpg);
        self.store_level(sources::VBL, vbl);
        self.store_level(sources::VBLB, vbl);
        if matches!(self.kind, CellKind::NvSram) {
            self.ckt.set_source(sources::VCTRL, vctrl)?;
            self.store_level(sources::VCTRL, vctrl);
        }
        // Warm-start from the present state.
        let x0 = self.state.as_slice().to_vec();
        let op = nvpg_circuit::dc::operating_point_from(&mut self.ckt, &DcOptions::default(), &x0)?;
        let mut p = 0.0;
        for (src, v) in [
            (sources::VDD, self.levels.vdd),
            (sources::VPG, self.levels.vpg),
            (sources::VWL, self.levels.vwl),
            (sources::VBL, self.levels.vbl),
            (sources::VBLB, self.levels.vblb),
            (sources::VSR, self.levels.vsr),
            (sources::VCTRL, self.levels.vctrl),
        ] {
            if let Some(pw) = op.source_power(src, v) {
                p += pw;
            }
        }
        self.state = op;
        Ok(p)
    }

    /// Direct access to the underlying circuit (e.g. to reprogram a
    /// source for a custom experiment).
    pub fn circuit_mut(&mut self) -> &mut Circuit {
        &mut self.ckt
    }

    /// The current DC/transient-final state.
    pub fn state(&self) -> &DcSolution {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nv_bench(data: bool) -> CellBench {
        CellBench::new(
            CellDesign::table1(),
            CellKind::NvSram,
            data,
            MtjConfig::stored(data),
        )
        .expect("cell builds")
    }

    #[test]
    fn initial_state_latches_requested_data() {
        for data in [true, false] {
            let b = nv_bench(data);
            assert_eq!(b.data(), data);
            let (q, qb) = b.storage_voltages();
            if data {
                assert!(q > 0.8 && qb < 0.1, "q={q}, qb={qb}");
            } else {
                assert!(q < 0.1 && qb > 0.8);
            }
        }
    }

    #[test]
    fn read_does_not_disturb_the_cell() {
        // The (1,1,1,1) design must be read-stable at nominal conditions.
        for data in [true, false] {
            let mut b = nv_bench(data);
            for _ in 0..3 {
                b.read().expect("read");
                assert_eq!(b.data(), data, "read disturb with data = {data}");
            }
        }
    }

    #[test]
    fn write_flips_and_rewrites() {
        let mut b = nv_bench(true);
        b.write(false).expect("write 0");
        assert!(!b.data());
        b.write(true).expect("write 1");
        assert!(b.data());
        // Writing the already-held value is a no-op on the state.
        b.write(true).expect("write 1 again");
        assert!(b.data());
    }

    #[test]
    fn sleep_and_wake_retain_data() {
        for data in [true, false] {
            let mut b = nv_bench(data);
            b.sleep(100e-9).expect("sleep");
            // Retention voltage: cell still holds (possibly at 0.7 V).
            assert_eq!(b.data(), data, "during sleep");
            b.wake_normal().expect("wake");
            assert_eq!(b.data(), data, "after wake");
            let (q, qb) = b.storage_voltages();
            assert!((q.max(qb) - 0.9).abs() < 0.02, "full rail after wake");
        }
    }

    #[test]
    fn volatile_cell_reports_no_mtj_states() {
        let b = CellBench::new(
            CellDesign::table1(),
            CellKind::Volatile6T,
            true,
            MtjConfig::stored(true),
        )
        .unwrap();
        assert_eq!(b.mtj_states(), None);
        assert_eq!(b.kind(), CellKind::Volatile6T);
        assert_eq!(b.design().fins_power_switch, 7);
    }

    #[test]
    fn phase_energy_is_positive_and_duration_exact() {
        let mut b = nv_bench(true);
        let idle = b.idle(10e-9).expect("idle");
        assert_eq!(idle.duration.0, 10e-9);
        assert!(idle.energy.0 > 0.0, "leakage during idle");
        assert_eq!(idle.name, "idle");
        // Idle energy ≈ static power × duration.
        let approx = 7.5e-9 * 10e-9;
        assert!(
            (idle.energy.0 - approx).abs() < approx,
            "idle energy {:e}",
            idle.energy.0
        );
    }

    #[test]
    fn mode_cycle_via_static_power_keeps_layout() {
        let mut b = nv_bench(true);
        let p_norm = b.static_power(Mode::Normal).unwrap();
        let p_sleep = b.static_power(Mode::Sleep).unwrap();
        let p_sd = b
            .static_power(Mode::Shutdown { super_cutoff: true })
            .unwrap();
        assert!(p_norm > p_sleep && p_sleep > p_sd);
        // The bench still produces valid transients afterwards.
        b.idle(1e-9).expect("idle after mode cycling");
    }
}
