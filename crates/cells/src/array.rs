//! Multi-cell NV-SRAM array (a real power domain, not a composition).
//!
//! The architecture analysis in `nvpg-core` composes per-cell energies
//! analytically over an `N × M` domain. This module builds the *actual*
//! array netlist — cells sharing bitlines down each column and wordline /
//! SR / CTRL / power-switch lines across each row (§III: "the supply
//! voltage for the M-bit cells connected to a common word line is
//! simultaneously managed through the power switches") — and executes the
//! row-serialised store/restore on it. It exists to validate the
//! composition (tests cross-check per-cell store energy) and to
//! demonstrate whole-pattern data survival through a power cycle.
//!
//! Array sizes are kept small (≤ ~8×8): a cell is ~6 unknowns, and this
//! bench's row-serialised sequencing multiplies transient count by rows.
//! That is all the validation needs — the scaling *law* is the
//! composition's job, and *simulated* array scale (whole-domain gating at
//! 64×64 and beyond, via the sparse solver backend) is
//! [`crate::domain::DomainArray`]'s.

use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, CircuitError, DcSolution, NodeId, Waveform};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::{Mtj, MtjState};
use nvpg_units::{Joules, Seconds};

use crate::design::CellDesign;

/// Storage-node handles of one array cell.
#[derive(Debug, Clone, Copy)]
struct ArrayCellNodes {
    q: NodeId,
    qb: NodeId,
}

/// A result of one array-level phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayPhase {
    /// Total energy delivered by all sources during the phase.
    pub energy: Joules,
    /// Phase duration.
    pub duration: Seconds,
}

/// An `rows × cols` NV-SRAM array bench.
#[derive(Debug)]
pub struct ArrayBench {
    ckt: Circuit,
    design: CellDesign,
    rows: usize,
    cols: usize,
    cells: Vec<Vec<ArrayCellNodes>>,
    state: DcSolution,
    source_names: Vec<String>,
    /// Current DC level of every source (phase continuity).
    levels: Vec<f64>,
}

impl ArrayBench {
    /// Builds an array holding `pattern(r, c)` in each cell, with the
    /// MTJs initialised to the **opposite** pattern (so a subsequent
    /// store genuinely switches every junction).
    ///
    /// # Errors
    ///
    /// Propagates netlist and DC-convergence errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(
        design: CellDesign,
        rows: usize,
        cols: usize,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, CircuitError> {
        assert!(rows >= 1 && cols >= 1, "array dimensions must be nonzero");
        let c = design.conditions;
        let gnd = Circuit::GROUND;
        let mut ckt = Circuit::new();
        let mut source_names = Vec::new();
        let mut levels = Vec::new();
        let add_source = |ckt: &mut Circuit,
                          name: String,
                          pos: NodeId,
                          level: f64,
                          source_names: &mut Vec<String>,
                          levels: &mut Vec<f64>|
         -> Result<(), CircuitError> {
            ckt.vsource(&name, pos, gnd, level)?;
            source_names.push(name);
            levels.push(level);
            Ok(())
        };

        // Global rail.
        let vdd_rail = ckt.node("vdd_rail");
        add_source(
            &mut ckt,
            "vdd".into(),
            vdd_rail,
            c.vdd,
            &mut source_names,
            &mut levels,
        )?;

        // Column lines (bitlines driven directly; the per-cell bench
        // models driver impedance — here the focus is store/restore).
        let mut bl = Vec::new();
        let mut blb = Vec::new();
        for col in 0..cols {
            let b = ckt.node(&format!("bl{col}"));
            let bb = ckt.node(&format!("blb{col}"));
            add_source(
                &mut ckt,
                format!("vbl{col}"),
                b,
                c.vdd,
                &mut source_names,
                &mut levels,
            )?;
            add_source(
                &mut ckt,
                format!("vblb{col}"),
                bb,
                c.vdd,
                &mut source_names,
                &mut levels,
            )?;
            bl.push(b);
            blb.push(bb);
        }

        // Rows: wordline, SR, CTRL, power-switch gate, virtual rail.
        let mut cells: Vec<Vec<ArrayCellNodes>> = Vec::new();
        for row in 0..rows {
            let wl = ckt.node(&format!("wl{row}"));
            let sr = ckt.node(&format!("sr{row}"));
            let ctrl = ckt.node(&format!("ctrl{row}"));
            let pg = ckt.node(&format!("pg{row}"));
            let vvdd = ckt.node(&format!("vvdd{row}"));
            add_source(
                &mut ckt,
                format!("vwl{row}"),
                wl,
                0.0,
                &mut source_names,
                &mut levels,
            )?;
            add_source(
                &mut ckt,
                format!("vsr{row}"),
                sr,
                0.0,
                &mut source_names,
                &mut levels,
            )?;
            add_source(
                &mut ckt,
                format!("vctrl{row}"),
                ctrl,
                c.v_ctrl_normal,
                &mut source_names,
                &mut levels,
            )?;
            add_source(
                &mut ckt,
                format!("vpg{row}"),
                pg,
                0.0,
                &mut source_names,
                &mut levels,
            )?;

            // One header switch per row serving the M cells.
            let mut sw = design
                .pmos
                .with_fins(design.fins_power_switch * cols as u32);
            sw.vth0 += design.power_switch_vth_boost;
            ckt.device(Box::new(FinFet::new(
                format!("msw{row}"),
                vvdd,
                pg,
                vdd_rail,
                sw,
            )))?;

            let mut row_cells = Vec::new();
            for col in 0..cols {
                let tag = format!("r{row}c{col}");
                let q = ckt.node(&format!("q_{tag}"));
                let qb = ckt.node(&format!("qb_{tag}"));
                let ml = ckt.node(&format!("ml_{tag}"));
                let mr = ckt.node(&format!("mr_{tag}"));
                let pu = design.pmos.with_fins(design.fins_load);
                let pd = design.nmos.with_fins(design.fins_driver);
                let pa = design.nmos.with_fins(design.fins_access);
                let ps = design.nmos.with_fins(design.fins_ps);
                ckt.device(Box::new(FinFet::new(
                    format!("mpul_{tag}"),
                    q,
                    qb,
                    vvdd,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpur_{tag}"),
                    qb,
                    q,
                    vvdd,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(format!("mpdl_{tag}"), q, qb, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(format!("mpdr_{tag}"), qb, q, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpgl_{tag}"),
                    bl[col],
                    wl,
                    q,
                    pa,
                )))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpgr_{tag}"),
                    blb[col],
                    wl,
                    qb,
                    pa,
                )))?;
                ckt.device(Box::new(FinFet::new(format!("mpsl_{tag}"), q, sr, ml, ps)))?;
                ckt.device(Box::new(FinFet::new(format!("mpsr_{tag}"), qb, sr, mr, ps)))?;
                // MTJs start in the OPPOSITE pattern.
                let (l0, r0) = if pattern(row, col) {
                    (MtjState::Parallel, MtjState::AntiParallel)
                } else {
                    (MtjState::AntiParallel, MtjState::Parallel)
                };
                ckt.device(Box::new(Mtj::new(
                    format!("xl_{tag}"),
                    ctrl,
                    ml,
                    design.mtj,
                    l0,
                )))?;
                ckt.device(Box::new(Mtj::new(
                    format!("xr_{tag}"),
                    ctrl,
                    mr,
                    design.mtj,
                    r0,
                )))?;
                row_cells.push(ArrayCellNodes { q, qb });
            }
            cells.push(row_cells);
        }

        // DC operating point with every cell seeded to its pattern.
        let mut opts = DcOptions::default();
        for (row, row_cells) in cells.iter().enumerate() {
            for (col, cell) in row_cells.iter().enumerate() {
                let (vq, vqb) = if pattern(row, col) {
                    (c.vdd, 0.0)
                } else {
                    (0.0, c.vdd)
                };
                opts = opts.with_nodeset(cell.q, vq).with_nodeset(cell.qb, vqb);
            }
        }
        for row in 0..rows {
            let vvdd = ckt.find_node(&format!("vvdd{row}")).expect("row rail");
            opts = opts.with_nodeset(vvdd, c.vdd);
        }
        let state = operating_point(&mut ckt, &opts)?;
        Ok(ArrayBench {
            ckt,
            design,
            rows,
            cols,
            cells,
            state,
            source_names,
            levels,
        })
    }

    /// Array dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The latched data of cell `(row, col)` in the current state.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn data(&self, row: usize, col: usize) -> bool {
        let cell = &self.cells[row][col];
        self.state.voltage(cell.q) > self.state.voltage(cell.qb)
    }

    /// The whole data pattern.
    pub fn pattern(&self) -> Vec<Vec<bool>> {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.data(r, c)).collect())
            .collect()
    }

    /// MTJ states of cell `(row, col)` as `(Q side, QB side)`.
    pub fn mtj_states(&self, row: usize, col: usize) -> Option<(MtjState, MtjState)> {
        let decode = |name: String| -> Option<MtjState> {
            let st = self.ckt.device_state(&name)?;
            let v = st.iter().find(|(l, _)| l == "state")?.1;
            Some(if v > 0.5 {
                MtjState::AntiParallel
            } else {
                MtjState::Parallel
            })
        };
        Some((
            decode(format!("xl_r{row}c{col}"))?,
            decode(format!("xr_r{row}c{col}"))?,
        ))
    }

    fn level_of(&self, name: &str) -> f64 {
        let idx = self
            .source_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown source {name}"));
        self.levels[idx]
    }

    /// Runs a phase of `duration` with waveform overrides, continuing
    /// from the current state; returns the total energy.
    fn phase(
        &mut self,
        duration: f64,
        waves: &[(String, Waveform)],
    ) -> Result<ArrayPhase, CircuitError> {
        for (src, wave) in waves {
            self.ckt.set_source(src, wave.clone())?;
        }
        let opts = TransientOptions {
            t_stop: duration,
            dt_max: (duration / 200.0).clamp(1e-12, 100e-12),
            dt_init: 1e-12,
            ..TransientOptions::default()
        };
        let result = transient(&mut self.ckt, &opts, &self.state)?;
        self.state = result.final_state;
        for (src, wave) in waves {
            let end = wave.value(duration);
            self.ckt.set_source(src, end)?;
            let idx = self
                .source_names
                .iter()
                .position(|n| n == src)
                .expect("known source");
            self.levels[idx] = end;
        }
        let mut energy = 0.0;
        for name in &self.source_names {
            energy += result
                .trace
                .integral(&format!("p({name})"))
                .expect("power signal recorded");
        }
        Ok(ArrayPhase {
            energy: Joules(energy),
            duration: Seconds(duration),
        })
    }

    fn ramp(&self, name: &str, to: f64) -> (String, Waveform) {
        let from = self.level_of(name);
        let e = self.design.conditions.edge_time;
        (name.to_owned(), Waveform::Pwl(vec![(0.0, from), (e, to)]))
    }

    /// Two-step store of one row (SR up + CTRL low, then CTRL at its
    /// store level, then both back to zero).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn store_row(&mut self, row: usize) -> Result<ArrayPhase, CircuitError> {
        assert!(row < self.rows, "row out of range");
        let c = self.design.conditions;
        let t = c.store_duration;
        let sr = format!("vsr{row}");
        let ctrl = format!("vctrl{row}");
        let p1 = self.phase(t, &[self.ramp(&sr, c.v_sr), self.ramp(&ctrl, 0.0)])?;
        let p2 = self.phase(t, &[self.ramp(&ctrl, c.v_ctrl_store)])?;
        let p3 = self.phase(1e-9, &[self.ramp(&sr, 0.0), self.ramp(&ctrl, 0.0)])?;
        Ok(ArrayPhase {
            energy: p1.energy + p2.energy + p3.energy,
            duration: p1.duration + p2.duration + p3.duration,
        })
    }

    /// Row-serialised store of the whole domain: each row stores and is
    /// immediately powered off (super cutoff), as the composition model
    /// assumes.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn store_all_and_shutdown(&mut self) -> Result<ArrayPhase, CircuitError> {
        let c = self.design.conditions;
        let mut total = ArrayPhase {
            energy: Joules(0.0),
            duration: Seconds(0.0),
        };
        for row in 0..self.rows {
            let p = self.store_row(row)?;
            let off = self.phase(2e-9, &[self.ramp(&format!("vpg{row}"), c.v_pg_super)])?;
            total.energy += p.energy + off.energy;
            total.duration += p.duration + off.duration;
        }
        // Bitlines discharge with the domain off.
        let mut waves = Vec::new();
        for col in 0..self.cols {
            waves.push(self.ramp(&format!("vbl{col}"), 0.0));
            waves.push(self.ramp(&format!("vblb{col}"), 0.0));
        }
        let p = self.phase(2e-9, &waves)?;
        total.energy += p.energy;
        total.duration += p.duration;
        Ok(total)
    }

    /// Lets the powered-off domain sit for `duration` (rail collapse).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn hold(&mut self, duration: f64) -> Result<ArrayPhase, CircuitError> {
        self.phase(duration, &[])
    }

    /// Row-serialised restore: per row, SR on, slow power-switch turn-on,
    /// SR off; bitlines precharge first.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn restore_all(&mut self) -> Result<ArrayPhase, CircuitError> {
        let c = self.design.conditions;
        let mut waves = Vec::new();
        for col in 0..self.cols {
            waves.push(self.ramp(&format!("vbl{col}"), c.vdd));
            waves.push(self.ramp(&format!("vblb{col}"), c.vdd));
        }
        let mut total = self.phase(2e-9, &waves)?;
        for row in 0..self.rows {
            let dur = c.restore_duration;
            let e = c.edge_time;
            let sr_name = format!("vsr{row}");
            let pg_name = format!("vpg{row}");
            let ctrl_name = format!("vctrl{row}");
            let sr = Waveform::Pwl(vec![
                (0.0, self.level_of(&sr_name)),
                (e, c.v_sr),
                (0.7 * dur, c.v_sr),
                (0.7 * dur + e, 0.0),
            ]);
            let pg = Waveform::Pwl(vec![
                (0.0, self.level_of(&pg_name)),
                (0.05 * dur, self.level_of(&pg_name)),
                (0.45 * dur, 0.0),
            ]);
            let ctrl = Waveform::Pwl(vec![
                (0.0, self.level_of(&ctrl_name)),
                (0.7 * dur, self.level_of(&ctrl_name)),
                (0.7 * dur + e, c.v_ctrl_normal),
            ]);
            let p = self.phase(dur, &[(sr_name, sr), (pg_name, pg), (ctrl_name, ctrl)])?;
            total.energy += p.energy;
            total.duration += p.duration;
        }
        Ok(total)
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(r: usize, c: usize) -> bool {
        (r + c).is_multiple_of(2)
    }

    #[test]
    fn array_builds_and_holds_pattern() {
        let array = ArrayBench::new(CellDesign::table1(), 2, 2, checkerboard).unwrap();
        assert_eq!(array.dims(), (2, 2));
        assert_eq!(array.cell_count(), 4);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(array.data(r, c), checkerboard(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn store_row_only_flips_that_row() {
        let mut array = ArrayBench::new(CellDesign::table1(), 2, 2, checkerboard).unwrap();
        array.store_row(0).unwrap();
        // Row 0 junctions now match the data pattern...
        for c in 0..2 {
            let expect = if checkerboard(0, c) {
                (MtjState::AntiParallel, MtjState::Parallel)
            } else {
                (MtjState::Parallel, MtjState::AntiParallel)
            };
            assert_eq!(array.mtj_states(0, c), Some(expect), "row 0 col {c}");
        }
        // ...while row 1 still holds the opposite (pre-store) pattern.
        for c in 0..2 {
            let expect = if checkerboard(1, c) {
                (MtjState::Parallel, MtjState::AntiParallel)
            } else {
                (MtjState::AntiParallel, MtjState::Parallel)
            };
            assert_eq!(array.mtj_states(1, c), Some(expect), "row 1 col {c}");
        }
        // And the volatile data everywhere is untouched.
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(array.data(r, c), checkerboard(r, c));
            }
        }
    }

    #[test]
    fn checkerboard_survives_full_power_cycle() {
        let mut array = ArrayBench::new(CellDesign::table1(), 2, 2, checkerboard).unwrap();
        let store = array.store_all_and_shutdown().unwrap();
        assert!(store.energy.0 > 0.0);
        array.hold(400e-9).unwrap();
        array.restore_all().unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(
                    array.data(r, c),
                    checkerboard(r, c),
                    "cell ({r},{c}) after power cycle"
                );
            }
        }
    }

    #[test]
    fn per_cell_store_energy_consistent_with_single_cell() {
        // The array's per-cell store energy should be in the same decade
        // as the characterised single-cell store (it includes the other
        // rows' static power while they wait, which is small here).
        let design = CellDesign::table1();
        let ch = crate::characterize::characterize(&design).unwrap();
        let mut array = ArrayBench::new(design, 2, 2, |_, _| true).unwrap();
        let store = array.store_all_and_shutdown().unwrap();
        let per_cell = store.energy.0 / array.cell_count() as f64;
        let ratio = per_cell / ch.e_store;
        assert!(
            (0.3..3.0).contains(&ratio),
            "array per-cell store {per_cell:e} vs single-cell {:e} (ratio {ratio:.2})",
            ch.e_store
        );
    }

    #[test]
    #[should_panic(expected = "row out of range")]
    fn store_row_bounds_checked() {
        let mut array = ArrayBench::new(CellDesign::table1(), 2, 2, checkerboard).unwrap();
        let _ = array.store_row(5);
    }
}
