//! SRAM cell netlists, operations, and characterisation for the DATE 2015
//! NV-SRAM power-gating study.
//!
//! This crate builds the two cells the paper compares — the volatile
//! 6T-SRAM baseline and the PS-FinFET NV-SRAM of Fig. 2 — on top of the
//! `nvpg-circuit` simulator and the `nvpg-devices` compact models, and
//! packages the simulation flows that extract every electrical quantity
//! the architecture-level analysis needs:
//!
//! * [`design`] — the Table I design point (`CellDesign::table1()`);
//! * [`cell`] — netlist builders;
//! * [`mod@bench`] — phase-sequenced cell operation (read, write, sleep,
//!   two-step store, shutdown, restore) with per-phase energy accounting;
//! * [`mod@characterize`] — figure-level extraction (leakage vs `V_CTRL`,
//!   store currents, `VV_DD` vs `N_FSW`, static power per mode, and the
//!   full [`characterize::CellCharacterization`]);
//! * [`snm`] — butterfly-curve static-noise-margin analysis.
//!
//! # Example: verify nonvolatile data survival end-to-end
//!
//! ```no_run
//! use nvpg_cells::bench::CellBench;
//! use nvpg_cells::cell::{CellKind, MtjConfig};
//! use nvpg_cells::design::CellDesign;
//!
//! let design = CellDesign::table1();
//! let mut bench = CellBench::new(design, CellKind::NvSram, true, MtjConfig::stored(false))?;
//! bench.store()?;                      // write Q = 1 into the MTJs
//! bench.shutdown_enter(true, 3e-9)?;   // power off (super cutoff)
//! bench.restore()?;                    // wake up
//! assert!(bench.data(), "Q = 1 must survive the power cycle");
//! # Ok::<(), nvpg_circuit::CircuitError>(())
//! ```

pub mod array;
pub mod bench;
pub mod cell;
pub mod characterize;
pub mod design;
pub mod domain;
pub mod nvff;
pub mod snm;
pub mod timing;

pub use array::{ArrayBench, ArrayPhase};
pub use bench::{CellBench, Mode, PhaseResult};
pub use cell::{build_cell, CellKind, CellNodes, MtjConfig, NvNodes};
pub use characterize::{characterize, CellCharacterization, StaticPowerTable};
pub use design::{CellDesign, OperatingConditions, RetentionKind};
pub use domain::{DomainArray, DomainBuilder, DomainKind};
pub use nvff::{FlopPhase, NvFlipFlop};
pub use snm::{static_noise_margin, SnmCondition};
pub use timing::{timing, TimingReport};
