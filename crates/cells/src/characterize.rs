//! Cell characterisation: the electrical quantities behind every figure.
//!
//! Each function builds fresh cells (a cell is ~20 MNA unknowns, so
//! rebuilding is cheap) and extracts one figure's data:
//!
//! * [`leakage_vs_vctrl`] — Fig. 3(a);
//! * [`store_current_vs_vsr`] — Fig. 3(b);
//! * [`store_current_vs_vctrl`] — Fig. 3(c);
//! * [`vvdd_vs_nfsw`] — Fig. 4;
//! * [`static_power_by_mode`] — Fig. 6(c);
//! * [`characterize`] — the full [`CellCharacterization`] that the
//!   architecture-level energy composition in `nvpg-core` consumes
//!   (per-mode static powers, per-op energies, store/restore energy and
//!   durations).

use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::{Circuit, CircuitError};
use nvpg_devices::mtj::MtjState;

use crate::bench::{CellBench, Mode};
use crate::cell::{build_cell, sources, CellKind, MtjConfig};
use crate::design::CellDesign;

/// One sample of the Fig. 3(a) leakage characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakagePoint {
    /// CTRL-line bias (V).
    pub v_ctrl: f64,
    /// NV-SRAM cell supply current (A).
    pub i_nv: f64,
    /// Equivalent 6T cell supply current (A) — V_CTRL-independent.
    pub i_6t: f64,
    /// NV-SRAM total static power including the CTRL source (W).
    pub p_total_nv: f64,
}

fn normal_mode_op(
    ckt: &mut Circuit,
    nodes: &crate::cell::CellNodes,
    vdd: f64,
    data_q: bool,
) -> Result<nvpg_circuit::DcSolution, CircuitError> {
    let (vq, vqb) = if data_q { (vdd, 0.0) } else { (0.0, vdd) };
    let opts = DcOptions::default()
        .with_nodeset(nodes.q, vq)
        .with_nodeset(nodes.qb, vqb)
        .with_nodeset(nodes.vvdd, vdd)
        .with_nodeset(nodes.bl, vdd)
        .with_nodeset(nodes.blb, vdd);
    operating_point(ckt, &opts)
}

/// Sweeps the CTRL bias in the normal SRAM mode and reports the supply
/// leakage of the NV cell against the 6T baseline (Fig. 3(a)).
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn leakage_vs_vctrl(
    design: &CellDesign,
    v_ctrl_points: &[f64],
) -> Result<Vec<LeakagePoint>, CircuitError> {
    // 6T baseline (one DC op; independent of V_CTRL).
    let mut c6 = Circuit::new();
    let n6 = build_cell(
        &mut c6,
        design,
        CellKind::Volatile6T,
        MtjConfig::stored(true),
    )?;
    let op6 = normal_mode_op(&mut c6, &n6, design.conditions.vdd, true)?;
    let i_6t = -op6.source_current(sources::VDD).expect("vdd exists");

    // Each sweep point solves an independent DC problem from the same
    // nodesets, so the points fan out over the worker pool — a fresh
    // cell per point (a cell is ~20 unknowns; building one is far
    // cheaper than its Newton solve).
    nvpg_exec::par_try_map(0, v_ctrl_points, |_, &v| {
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, design, CellKind::NvSram, MtjConfig::stored(true))?;
        ckt.set_source(sources::VCTRL, v)?;
        let op = normal_mode_op(&mut ckt, &nodes, design.conditions.vdd, true)?;
        let i_nv = -op.source_current(sources::VDD).expect("vdd exists");
        let p_vdd = i_nv * design.conditions.vdd;
        let p_ctrl = op.source_power(sources::VCTRL, v).expect("vctrl exists");
        Ok(LeakagePoint {
            v_ctrl: v,
            i_nv,
            i_6t,
            p_total_nv: p_vdd + p_ctrl,
        })
    })
}

/// One sample of a store-current characteristic (Fig. 3(b)/(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreCurrentPoint {
    /// The swept voltage (V_SR for Fig. 3(b), V_CTRL for Fig. 3(c)).
    pub bias: f64,
    /// MTJ current magnitude (A).
    pub i_mtj: f64,
    /// Ratio to the CIMS critical current.
    pub overdrive: f64,
}

/// H-store current `I_MTJ^{P→AP}` through the H-side (parallel-state) MTJ
/// as a function of `V_SR`, with CTRL at 0 (Fig. 3(b)).
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn store_current_vs_vsr(
    design: &CellDesign,
    v_sr_points: &[f64],
) -> Result<Vec<StoreCurrentPoint>, CircuitError> {
    let ic = design.mtj.i_critical();
    // Q = 1 with the Q-side MTJ still parallel (pre-store pattern).
    let mtjs = MtjConfig {
        left: MtjState::Parallel,
        right: MtjState::Parallel,
    };
    nvpg_exec::par_try_map(0, v_sr_points, |_, &v| {
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, design, CellKind::NvSram, mtjs)?;
        ckt.set_source(sources::VCTRL, 0.0)?;
        ckt.set_source(sources::VSR, v)?;
        let op = normal_mode_op(&mut ckt, &nodes, design.conditions.vdd, true)?;
        // Positive ammeter current = cell → CTRL (the H-store direction).
        let i = op.source_current(sources::IAM_L).expect("ammeter exists");
        Ok(StoreCurrentPoint {
            bias: v,
            i_mtj: i,
            overdrive: i / ic,
        })
    })
}

/// L-store current `I_MTJ^{AP→P}` through the L-side (antiparallel-state)
/// MTJ as a function of `V_CTRL`, with `V_SR` at its design value
/// (Fig. 3(c)).
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn store_current_vs_vctrl(
    design: &CellDesign,
    v_ctrl_points: &[f64],
) -> Result<Vec<StoreCurrentPoint>, CircuitError> {
    let ic = design.mtj.i_critical();
    // Q = 1; the QB-side MTJ is antiparallel (needs the L-store flip).
    let mtjs = MtjConfig {
        left: MtjState::AntiParallel,
        right: MtjState::AntiParallel,
    };
    nvpg_exec::par_try_map(0, v_ctrl_points, |_, &v| {
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, design, CellKind::NvSram, mtjs)?;
        ckt.set_source(sources::VSR, design.conditions.v_sr)?;
        ckt.set_source(sources::VCTRL, v)?;
        let op = normal_mode_op(&mut ckt, &nodes, design.conditions.vdd, true)?;
        // L-store current flows CTRL → cell: negative on the ammeter.
        let i = -op.source_current(sources::IAM_R).expect("ammeter exists");
        Ok(StoreCurrentPoint {
            bias: v,
            i_mtj: i,
            overdrive: i / ic,
        })
    })
}

/// One sample of the Fig. 4 virtual-V_DD characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VvddPoint {
    /// Power-switch fin count `N_FSW`.
    pub n_fsw: u32,
    /// `VV_DD` in the normal SRAM mode (V).
    pub vvdd_normal: f64,
    /// `VV_DD` during the H-store step (V).
    pub vvdd_store: f64,
}

/// Virtual-V_DD droop vs power-switch fin count in the normal and store
/// modes (Fig. 4).
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn vvdd_vs_nfsw(
    design: &CellDesign,
    fin_counts: &[u32],
) -> Result<Vec<VvddPoint>, CircuitError> {
    nvpg_exec::par_try_map(0, fin_counts, |_, &n_fsw| {
        let d = design.with_power_switch_fins(n_fsw);
        let mtjs = MtjConfig {
            left: MtjState::Parallel,
            right: MtjState::Parallel,
        };
        let mut ckt = Circuit::new();
        let nodes = build_cell(&mut ckt, &d, CellKind::NvSram, mtjs)?;
        let op = normal_mode_op(&mut ckt, &nodes, d.conditions.vdd, true)?;
        let vvdd_normal = op.voltage(nodes.vvdd);
        // H-store configuration loads the rail with the MTJ write current.
        ckt.set_source(sources::VSR, d.conditions.v_sr)?;
        ckt.set_source(sources::VCTRL, 0.0)?;
        let op = normal_mode_op(&mut ckt, &nodes, d.conditions.vdd, true)?;
        let vvdd_store = op.voltage(nodes.vvdd);
        Ok(VvddPoint {
            n_fsw,
            vvdd_normal,
            vvdd_store,
        })
    })
}

/// Static power of both cells in every mode (Fig. 6(c)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPowerTable {
    /// 6T cell, normal mode (W).
    pub p_6t_normal: f64,
    /// 6T cell, sleep mode (W).
    pub p_6t_sleep: f64,
    /// NV cell, normal mode (W).
    pub p_nv_normal: f64,
    /// NV cell, sleep mode (W).
    pub p_nv_sleep: f64,
    /// NV cell, shutdown with ordinary cutoff (W).
    pub p_nv_shutdown: f64,
    /// NV cell, shutdown with super cutoff (W).
    pub p_nv_shutdown_super: f64,
}

/// Measures the Fig. 6(c) static-power table.
///
/// # Errors
///
/// Propagates DC non-convergence.
pub fn static_power_by_mode(design: &CellDesign) -> Result<StaticPowerTable, CircuitError> {
    let mut b6 = CellBench::new(*design, CellKind::Volatile6T, true, MtjConfig::stored(true))?;
    let p_6t_normal = b6.static_power(Mode::Normal)?;
    let p_6t_sleep = b6.static_power(Mode::Sleep)?;

    let mut bn = CellBench::new(*design, CellKind::NvSram, true, MtjConfig::stored(true))?;
    let p_nv_normal = bn.static_power(Mode::Normal)?;
    let p_nv_sleep = bn.static_power(Mode::Sleep)?;
    let p_nv_shutdown = bn.static_power(Mode::Shutdown {
        super_cutoff: false,
    })?;
    let p_nv_shutdown_super = bn.static_power(Mode::Shutdown { super_cutoff: true })?;
    Ok(StaticPowerTable {
        p_6t_normal,
        p_6t_sleep,
        p_nv_normal,
        p_nv_sleep,
        p_nv_shutdown,
        p_nv_shutdown_super,
    })
}

/// Everything the architecture-level energy composition needs, extracted
/// from transient and DC simulation of single cells.
///
/// All energies are **gross**: they include the static dissipation over
/// the phase's duration (the composition accounts durations explicitly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCharacterization {
    /// Static power table (Fig. 6(c)).
    pub static_power: StaticPowerTable,
    /// Read/write cycle time (s).
    pub t_cycle: f64,
    /// 6T read energy per cycle (J).
    pub e_read_6t: f64,
    /// 6T write energy per cycle (J).
    pub e_write_6t: f64,
    /// NV read energy per cycle (J).
    pub e_read_nv: f64,
    /// NV write energy per cycle (J).
    pub e_write_nv: f64,
    /// Full two-step store energy (J).
    pub e_store: f64,
    /// Store duration (s).
    pub t_store: f64,
    /// Restore (wake-up) energy (J).
    pub e_restore: f64,
    /// Restore duration (s).
    pub t_restore: f64,
    /// Whether the store flipped the MTJs to the correct pattern.
    pub store_ok: bool,
    /// Whether the restore recovered the stored data.
    pub restore_ok: bool,
}

/// Runs the full characterisation flow on a design point: static powers,
/// read/write transients on both cells, and a store → shutdown → restore
/// sequence on the NV cell (verifying data survival end-to-end).
///
/// # Errors
///
/// Propagates simulation errors from any stage.
pub fn characterize(design: &CellDesign) -> Result<CellCharacterization, CircuitError> {
    let static_power = static_power_by_mode(design)?;
    let t_cycle = design.conditions.cycle_time();

    // 6T read/write energies.
    let mut b6 = CellBench::new(*design, CellKind::Volatile6T, true, MtjConfig::stored(true))?;
    let e_read_6t = b6.read()?.energy.0;
    let e_write_6t = b6.write(false)?.energy.0;

    // NV read/write energies.
    let mut bn = CellBench::new(*design, CellKind::NvSram, true, MtjConfig::stored(true))?;
    let e_read_nv = bn.read()?.energy.0;
    let e_write_nv = bn.write(false)?.energy.0;

    // Store → shutdown → restore on a fresh cell holding Q = 1 with the
    // *opposite* pattern in the MTJs, so both junctions must switch
    // (worst-case store energy).
    let mut bench = CellBench::new(*design, CellKind::NvSram, true, MtjConfig::stored(false))?;
    let store_phases = bench.store()?;
    let e_store: f64 = store_phases.iter().map(|p| p.energy.0).sum();
    let t_store: f64 = store_phases.iter().map(|p| p.duration.0).sum();
    let store_ok = bench.mtj_states() == Some((MtjState::AntiParallel, MtjState::Parallel));

    // Let the virtual rail genuinely collapse (leakage time constant is
    // tens of ns) so the restore energy includes recharging the domain.
    // The hold energy itself is *not* part of e_restore: the composition
    // accounts shutdown time explicitly via the shutdown static power.
    bench.shutdown_enter(true, 3e-9)?;
    bench.idle(500e-9)?;
    let restore = bench.restore()?;
    let e_restore = restore.energy.0;
    let t_restore = restore.duration.0;
    let restore_ok = bench.data();

    Ok(CellCharacterization {
        static_power,
        t_cycle,
        e_read_6t,
        e_write_6t,
        e_read_nv,
        e_write_nv,
        e_store,
        t_store,
        e_restore,
        t_restore,
        store_ok,
        restore_ok,
    })
}

/// Memoised [`characterize`]: experiments sharing one [`CellDesign`]
/// reuse a single [`CellCharacterization`] instead of re-running the
/// cell-level simulations.
///
/// The cache key is the design's `Debug` rendering — Rust prints `f64`s
/// with round-trip precision, so distinct designs get distinct keys.
/// Errors are not cached (a failing design re-runs on the next call).
///
/// # Errors
///
/// Propagates simulation errors from any stage.
pub fn characterize_cached(design: &CellDesign) -> Result<CellCharacterization, CircuitError> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<String, CellCharacterization>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = format!("{design:?}");
    if let Some(ch) = cache.lock().expect("characterization cache").get(&key) {
        return Ok(*ch);
    }
    let ch = characterize(design)?;
    cache
        .lock()
        .expect("characterization cache")
        .insert(key, ch);
    Ok(ch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpg_units::linspace;

    fn design() -> CellDesign {
        CellDesign::table1()
    }

    #[test]
    fn cached_characterization_matches_fresh() {
        let d = design();
        let fresh = characterize(&d).unwrap();
        let cached = characterize_cached(&d).unwrap();
        assert_eq!(fresh, cached);
        // Second hit returns the identical value from the memo.
        assert_eq!(characterize_cached(&d).unwrap(), cached);
    }

    #[test]
    fn leakage_curve_shape() {
        let pts = leakage_vs_vctrl(&design(), &linspace(0.0, 0.2, 9)).unwrap();
        assert_eq!(pts.len(), 9);
        // NV leakage at V_CTRL = 0 exceeds the 6T baseline…
        assert!(pts[0].i_nv > pts[0].i_6t, "{:?}", pts[0]);
        // …and the V_CTRL bias recovers most of the gap.
        let at_design = pts
            .iter()
            .find(|p| (p.v_ctrl - 0.075).abs() < 0.03)
            .unwrap();
        let excess0 = pts[0].i_nv - pts[0].i_6t;
        let excess_design = at_design.i_nv - at_design.i_6t;
        assert!(
            excess_design < 0.5 * excess0,
            "V_CTRL bias should cut the excess leakage: {excess0:e} -> {excess_design:e}"
        );
        // All leakages are positive and nA-scale.
        for p in &pts {
            assert!(p.i_nv > 0.0 && p.i_nv < 1e-6, "{p:?}");
        }
    }

    #[test]
    fn store_current_rises_with_vsr_and_crosses_margin() {
        let pts = store_current_vs_vsr(&design(), &linspace(0.3, 0.9, 13)).unwrap();
        // Monotone increasing.
        for w in pts.windows(2) {
            assert!(w[1].i_mtj >= w[0].i_mtj - 1e-9, "{w:?}");
        }
        // At the design V_SR = 0.65 the overdrive reaches the 1.5× margin
        // region (the paper picks V_SR for exactly this).
        let at = pts.iter().find(|p| (p.bias - 0.65).abs() < 0.03).unwrap();
        assert!(
            at.overdrive > 1.1,
            "H-store overdrive at V_SR = 0.65: {}",
            at.overdrive
        );
    }

    #[test]
    fn l_store_current_rises_with_vctrl() {
        let pts = store_current_vs_vctrl(&design(), &linspace(0.1, 0.6, 11)).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].i_mtj >= w[0].i_mtj - 1e-9);
        }
        let at = pts.iter().find(|p| (p.bias - 0.5).abs() < 0.03).unwrap();
        assert!(
            at.overdrive > 1.1,
            "L-store overdrive at V_CTRL = 0.5: {}",
            at.overdrive
        );
    }

    #[test]
    fn vvdd_degrades_with_small_power_switch() {
        let pts = vvdd_vs_nfsw(&design(), &[1, 2, 4, 7, 10]).unwrap();
        // Normal mode barely droops even at 1 fin.
        assert!(pts[0].vvdd_normal > 0.85);
        // Store mode droops more at small N_FSW, monotone recovery.
        for w in pts.windows(2) {
            assert!(w[1].vvdd_store >= w[0].vvdd_store - 1e-6);
        }
        assert!(pts[0].vvdd_store < pts.last().unwrap().vvdd_store);
        // Paper: N_FSW = 7 retains ≥ 97 % of V_DD during store.
        let at7 = pts.iter().find(|p| p.n_fsw == 7).unwrap();
        assert!(
            at7.vvdd_store > 0.97 * 0.9,
            "VVDD at N_FSW = 7: {}",
            at7.vvdd_store
        );
    }

    #[test]
    fn static_power_ordering() {
        let t = static_power_by_mode(&design()).unwrap();
        // Sleep saves vs normal; shutdown saves vs sleep; super cutoff is
        // the lowest of all.
        assert!(t.p_6t_sleep < t.p_6t_normal);
        assert!(t.p_nv_sleep < t.p_nv_normal);
        assert!(t.p_nv_shutdown < t.p_nv_sleep);
        assert!(t.p_nv_shutdown_super < t.p_nv_shutdown);
        // NV normal-mode static power is comparable to 6T (V_CTRL trick).
        assert!(t.p_nv_normal < 5.0 * t.p_6t_normal);
        // Everything positive and sub-µW.
        for p in [
            t.p_6t_normal,
            t.p_6t_sleep,
            t.p_nv_normal,
            t.p_nv_sleep,
            t.p_nv_shutdown,
            t.p_nv_shutdown_super,
        ] {
            assert!(p > 0.0 && p < 1e-6, "{p:e}");
        }
    }
}

/// Floating-bitline read study (closer to a real sensed read than the
/// driven-bitline read the bench uses for energy accounting).
///
/// The bitlines are precharged to V_DD through switches, released, and
/// the wordline pulsed: the accessed cell discharges one bitline while
/// the other floats. Reported are the differential bitline swing at the
/// end of the sense window and the energy drawn during the access — the
/// quantity a sense-amplifier design would work from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensedRead {
    /// Differential bitline voltage at the end of the wordline pulse (V).
    pub delta_v: f64,
    /// Energy drawn from all sources during the access window (J).
    pub energy: f64,
    /// Whether the cell kept its data through the read.
    pub stable: bool,
}

/// Measures a floating-bitline read on a fresh cell holding `Q = 1`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sensed_read(design: &CellDesign, kind: CellKind) -> Result<SensedRead, CircuitError> {
    use nvpg_circuit::transient::{transient, TransientOptions};
    use nvpg_circuit::{Circuit, Waveform};

    let c = design.conditions;
    // Disconnect the bench's always-on bitline drivers (1 GΩ series
    // impedance): the bitlines are driven only through the precharge
    // switches below, and genuinely float once those open.
    let mut floated = *design;
    floated.r_bitline_driver = 1e9;
    let mut ckt = Circuit::new();
    let nodes = build_cell(&mut ckt, &floated, kind, MtjConfig::stored(true))?;
    let pre = ckt.node("pre");
    ckt.vsource("vpre", pre, Circuit::GROUND, c.vdd)?;
    let vddp = ckt.node("vddp");
    ckt.vsource("vddp_src", vddp, Circuit::GROUND, c.vdd)?;
    ckt.switch(
        "spre_bl",
        vddp,
        nodes.bl,
        pre,
        Circuit::GROUND,
        0.45,
        200.0,
        1e12,
    )?;
    ckt.switch(
        "spre_blb",
        vddp,
        nodes.blb,
        pre,
        Circuit::GROUND,
        0.45,
        200.0,
        1e12,
    )?;

    let opts = nvpg_circuit::dc::DcOptions::default()
        .with_nodeset(nodes.q, c.vdd)
        .with_nodeset(nodes.qb, 0.0)
        .with_nodeset(nodes.vvdd, c.vdd)
        .with_nodeset(nodes.bl, c.vdd)
        .with_nodeset(nodes.blb, c.vdd);
    let op = operating_point(&mut ckt, &opts)?;

    // Sequence: release precharge at 0.5 ns, wordline pulse 0.7–2.2 ns.
    let e = c.edge_time;
    ckt.set_source(
        "vpre",
        Waveform::Pwl(vec![(0.0, c.vdd), (0.5e-9, c.vdd), (0.5e-9 + e, 0.0)]),
    )?;
    ckt.set_source(
        sources::VWL,
        Waveform::Pwl(vec![
            (0.0, 0.0),
            (0.7e-9, 0.0),
            (0.7e-9 + e, c.vdd - c.wl_underdrive),
            (2.2e-9, c.vdd - c.wl_underdrive),
            (2.2e-9 + e, 0.0),
        ]),
    )?;
    let topts = TransientOptions {
        t_stop: 2.5e-9,
        dt_max: 5e-12,
        dt_init: 1e-12,
        ..TransientOptions::default()
    };
    let result = transient(&mut ckt, &topts, &op)?;
    let tr = &result.trace;
    let t_sense = 2.2e-9;
    let vbl = tr.value_at("v(bl)", t_sense).expect("bl recorded");
    let vblb = tr.value_at("v(blb)", t_sense).expect("blb recorded");
    let mut energy = 0.0;
    for src in ["vdd", "vpre", "vddp_src", "vwl", "vbl", "vblb"] {
        if let Ok(v) = tr.integral(&format!("p({src})")) {
            energy += v;
        }
    }
    let q = result.final_state.voltage(nodes.q);
    let qb = result.final_state.voltage(nodes.qb);
    Ok(SensedRead {
        delta_v: vbl - vblb,
        energy,
        stable: q > qb,
    })
}

#[cfg(test)]
mod sensed_read_tests {
    use super::*;

    #[test]
    fn sensed_read_develops_differential_and_keeps_data() {
        let d = CellDesign::table1();
        let r = sensed_read(&d, CellKind::Volatile6T).unwrap();
        // Q = 1: BLB is discharged, BL stays high ⇒ positive differential.
        assert!(
            r.delta_v > 0.05,
            "sense differential too small: {} V",
            r.delta_v
        );
        assert!(r.stable, "read-disturb flip");
        // A sensed read costs far less than the driven-bitline read used
        // for (pessimistic) energy accounting.
        let ch_read_energy = 142e-15;
        assert!(
            r.energy < 0.8 * ch_read_energy,
            "sensed read energy {:e}",
            r.energy
        );
        assert!(r.energy > 0.0);
    }

    #[test]
    fn nv_cell_sensed_read_matches_6t() {
        let d = CellDesign::table1();
        let r6 = sensed_read(&d, CellKind::Volatile6T).unwrap();
        let rn = sensed_read(&d, CellKind::NvSram).unwrap();
        assert!(rn.stable);
        let rel = (rn.delta_v - r6.delta_v).abs() / r6.delta_v;
        assert!(
            rel < 0.1,
            "sense differential: 6T {} vs NV {}",
            r6.delta_v,
            rn.delta_v
        );
    }
}
