//! Registry decks for the macro subsystem.
//!
//! The golden/differential harness enumerates netlists as
//! [`DeckSpec`]s; macros contain FinFET and retention-device models the
//! SPICE parser has no cards for, so these decks use the programmatic
//! [`DeckSpec::built`] constructor. `nvpg-core`'s `all_decks()` merges
//! them with the parser registry so `validate --check` covers the macro
//! generator the same way it covers every hand-written deck.
//!
//! The decks are DC-only (`t_stop == 0`): the harness solves them with
//! default options (no nodesets), which lands bistable arrays on their
//! metastable point — a perfectly good differential/golden fixture, but
//! one a transient would walk away from at a backend-rounding-dependent
//! instant.

use nvpg_cells::domain::DomainKind;
use nvpg_circuit::registry::DeckSpec;
use nvpg_circuit::{Circuit, SolverChoice};

use crate::build::MacroBuilder;
use crate::spec::{Granularity, MacroSpec};

fn checkerboard(r: usize, c: usize) -> bool {
    (r + c).is_multiple_of(2)
}

fn build(spec: MacroSpec) -> Circuit {
    MacroBuilder::prepare(spec, SolverChoice::Auto, checkerboard)
        .expect("registered macro deck spec is valid")
        .into_circuit()
}

fn macro_4x4_per_row_mtj() -> Circuit {
    build(MacroSpec::new(4, 4, 2).with_granularity(Granularity::PerRow))
}

fn macro_4x4_per_domain_mtj() -> Circuit {
    build(MacroSpec::new(4, 4, 2))
}

fn macro_4x4_per_domain_fefet() -> Circuit {
    build(
        MacroSpec::new(4, 4, 2)
            .with_technology("fefet")
            .expect("known technology"),
    )
}

fn macro_4x4_osr_per_bank() -> Circuit {
    build(
        MacroSpec::new(4, 4, 2)
            .with_kind(DomainKind::Osr)
            .with_granularity(Granularity::PerBank(2)),
    )
}

/// The macro decks the validation harness registers alongside the
/// parser corpus: both gating extremes, a second retention technology,
/// and the volatile reference architecture.
pub fn macro_decks() -> Vec<DeckSpec> {
    vec![
        DeckSpec::built("macro_4x4_per_row_mtj", macro_4x4_per_row_mtj, 0.0),
        DeckSpec::built("macro_4x4_per_domain_mtj", macro_4x4_per_domain_mtj, 0.0),
        DeckSpec::built(
            "macro_4x4_per_domain_fefet",
            macro_4x4_per_domain_fefet,
            0.0,
        ),
        DeckSpec::built("macro_4x4_osr_per_bank", macro_4x4_osr_per_bank, 0.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_decks_build_and_are_dc_only() {
        let decks = macro_decks();
        assert_eq!(decks.len(), 4);
        let mut ids = std::collections::HashSet::new();
        for deck in &decks {
            assert!(ids.insert(deck.id), "duplicate deck id {}", deck.id);
            assert_eq!(deck.t_stop, 0.0, "{} must be DC-only", deck.id);
            assert!(deck.builder.is_some());
            let ckt = deck.circuit();
            assert!(ckt.unknown_count() > 100, "{} too small", deck.id);
        }
    }
}
