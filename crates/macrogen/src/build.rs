//! Macro netlist construction and phase sequencing.
//!
//! [`MacroBuilder::prepare`] emits the full macro netlist — cell array
//! plus periphery — and [`MacroBuilder::solve`] settles the normal-mode
//! operating point, yielding an [`NvMacro`] whose phase methods mirror
//! the `DomainArray` sequencing but act on individual gating groups.
//!
//! ## Netlist topology
//!
//! * **Cell array** — the `DomainArray` cell composition (6T core,
//!   PS-FinFETs, retention elements via the design's
//!   [`RetentionKind`](nvpg_cells::design::RetentionKind)), except that
//!   each cell hangs from its gating group's virtual rail, its wordline
//!   tap and its bitline row tap.
//! * **Headers** — one high-V_th pFinFET per gating group, sized
//!   `N_FSW × cells-in-group`, gated by a per-group `vpg{g}` source. NV
//!   groups get their own `vsr{g}`/`vctrl{g}` broadcast pair so banks
//!   store and restore independently.
//! * **Row path** — per row, a 3-inverter decoder/driver chain (input
//!   high = deselected, wordline low) feeding a distributed wordline RC
//!   ladder with one tap per column.
//! * **Column path** — per column, a distributed bitline RC ladder (one
//!   tap per row, `C_BL` per cell), precharge + equalise pFinFETs, and
//!   column-mux pass nFinFETs onto the shared sense lines.
//! * **Sense/write** — per mux group, a latch-type sense amp
//!   (cross-coupled pair behind sense-enable header/footer switches) and
//!   nFinFET write pulldowns on the sense lines.
//! * **Replica column** — a cell-less bitline ladder with its own
//!   precharge and a replica-enable pulldown, for sense-timing studies.

use nvpg_circuit::batched::{batched_operating_point, BatchMode};
use nvpg_circuit::dc::{operating_point, DcOptions};
use nvpg_circuit::transient::{transient, TransientOptions};
use nvpg_circuit::{Circuit, CircuitError, DcSolution, NodeId, SolverChoice, StepStats, Waveform};
use nvpg_devices::finfet::FinFet;
use nvpg_devices::mtj::MtjState;
use nvpg_units::{Joules, Seconds};

use crate::spec::MacroSpec;

/// Wordline segment resistance per cell pitch (Ω).
const R_WL_SEGMENT: f64 = 50.0;
/// Wordline segment capacitance per cell pitch (F).
const C_WL_SEGMENT: f64 = 0.2e-15;
/// Bitline segment resistance per cell pitch (Ω).
const R_BL_SEGMENT: f64 = 20.0;
/// Wordline driver (third decoder stage) fin count.
const WL_DRIVER_FINS: u32 = 2;

/// Energy/duration result of one macro phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroPhase {
    /// Total energy delivered by every source during the phase.
    pub energy: Joules,
    /// Phase duration.
    pub duration: Seconds,
}

impl MacroPhase {
    fn zero() -> Self {
        MacroPhase {
            energy: Joules(0.0),
            duration: Seconds(0.0),
        }
    }

    fn add(&mut self, other: MacroPhase) {
        self.energy += other.energy;
        self.duration += other.duration;
    }
}

#[derive(Debug, Clone, Copy)]
struct MacroCellNodes {
    q: NodeId,
    qb: NodeId,
}

/// A fully-built macro netlist whose operating point has not been solved
/// yet (same split as `DomainBuilder`, for batch-shaped drivers).
#[derive(Debug)]
pub struct MacroBuilder {
    ckt: Circuit,
    opts: DcOptions,
    spec: MacroSpec,
    solver: SolverChoice,
    cells: Vec<Vec<MacroCellNodes>>,
    source_names: Vec<String>,
    levels: Vec<f64>,
}

impl MacroBuilder {
    /// Builds the macro netlist and pattern-seeded DC options without
    /// solving.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidValue`] for degenerate specs (see
    /// [`MacroSpec::validate`]) and otherwise propagates netlist errors.
    pub fn prepare(
        spec: MacroSpec,
        solver: SolverChoice,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<MacroBuilder, CircuitError> {
        spec.validate()?;
        let design = spec.design;
        let c = design.conditions;
        let gnd = Circuit::GROUND;
        let nv = spec.kind.is_nonvolatile();
        let groups = spec.groups();
        let mut ckt = Circuit::new();
        let mut source_names = Vec::new();
        let mut levels = Vec::new();
        let mut add_source = |ckt: &mut Circuit,
                              name: String,
                              pos: NodeId,
                              level: f64|
         -> Result<(), CircuitError> {
            ckt.vsource(&name, pos, gnd, level)?;
            source_names.push(name);
            levels.push(level);
            Ok(())
        };

        // Always-on rail powering the periphery and feeding the headers.
        let vdd_rail = ckt.node("vdd_rail");
        add_source(&mut ckt, "vdd".into(), vdd_rail, c.vdd)?;

        // Per-group headers and (NV) store/restore broadcast lines.
        let mut vvdd = Vec::with_capacity(groups);
        let mut sr = Vec::new();
        let mut ctrl = Vec::new();
        for g in 0..groups {
            let pg = ckt.node(&format!("pg{g}"));
            let rail = ckt.node(&format!("vvdd{g}"));
            add_source(&mut ckt, format!("vpg{g}"), pg, 0.0)?;
            let group_cells = spec.group_rows(g).len() * spec.cols;
            let mut sw = design
                .pmos
                .with_fins(design.fins_power_switch * group_cells as u32);
            sw.vth0 += design.power_switch_vth_boost;
            ckt.device(Box::new(FinFet::new(
                format!("msw{g}"),
                rail,
                pg,
                vdd_rail,
                sw,
            )))?;
            vvdd.push(rail);
            if nv {
                let s = ckt.node(&format!("sr{g}"));
                let ct = ckt.node(&format!("ctrl{g}"));
                add_source(&mut ckt, format!("vsr{g}"), s, 0.0)?;
                add_source(&mut ckt, format!("vctrl{g}"), ct, c.v_ctrl_normal)?;
                sr.push(s);
                ctrl.push(ct);
            }
        }

        // Row-select inputs: the active row (row 0) has its own source,
        // every other row shares the deselect line. Inputs are active-low
        // through the 3-stage chain (input high ⇒ wordline low).
        let rowsel = ckt.node("rowsel");
        let rowoff = ckt.node("rowoff");
        add_source(&mut ckt, "vrowsel".into(), rowsel, c.vdd)?;
        add_source(&mut ckt, "vrowoff".into(), rowoff, c.vdd)?;

        // Shared periphery control lines.
        let pre = ckt.node("pre");
        add_source(&mut ckt, "vpre".into(), pre, 0.0)?; // active low: on
        let mut ysel = Vec::with_capacity(spec.mux);
        for j in 0..spec.mux {
            let y = ckt.node(&format!("y{j}"));
            // Column 0 of each mux group starts selected.
            add_source(
                &mut ckt,
                format!("vy{j}"),
                y,
                if j == 0 { c.vdd } else { 0.0 },
            )?;
            ysel.push(y);
        }
        let saeb = ckt.node("saeb");
        let sae = ckt.node("sae");
        add_source(&mut ckt, "vsaeb".into(), saeb, c.vdd)?; // SA disabled
        add_source(&mut ckt, "vsae".into(), sae, 0.0)?;
        let wd = ckt.node("wd");
        let wdb = ckt.node("wdb");
        add_source(&mut ckt, "vwd".into(), wd, 0.0)?;
        add_source(&mut ckt, "vwdb".into(), wdb, 0.0)?;
        let rble = ckt.node("rble");
        add_source(&mut ckt, "vrble".into(), rble, 0.0)?;

        let inv_p = design.pmos.with_fins(1);
        let inv_n = design.nmos.with_fins(1);
        let drv_p = design.pmos.with_fins(WL_DRIVER_FINS);
        let drv_n = design.nmos.with_fins(WL_DRIVER_FINS);
        let inverter = |ckt: &mut Circuit,
                        tag: &str,
                        input: NodeId,
                        out: NodeId,
                        p: nvpg_devices::finfet::FinFetParams,
                        n: nvpg_devices::finfet::FinFetParams|
         -> Result<(), CircuitError> {
            ckt.device(Box::new(FinFet::new(
                format!("mp_{tag}"),
                out,
                input,
                vdd_rail,
                p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mn_{tag}"),
                out,
                input,
                gnd,
                n,
            )))?;
            Ok(())
        };

        // Row decoder/driver chains and wordline ladders.
        let mut wl_taps: Vec<Vec<NodeId>> = Vec::with_capacity(spec.rows);
        for r in 0..spec.rows {
            let input = if r == 0 { rowsel } else { rowoff };
            let d1 = ckt.node(&format!("dec1_r{r}"));
            let d2 = ckt.node(&format!("dec2_r{r}"));
            let head = ckt.node(&format!("wlh_r{r}"));
            inverter(&mut ckt, &format!("dec1_r{r}"), input, d1, inv_p, inv_n)?;
            inverter(&mut ckt, &format!("dec2_r{r}"), d1, d2, inv_p, inv_n)?;
            inverter(&mut ckt, &format!("wld_r{r}"), d2, head, drv_p, drv_n)?;
            let mut taps = Vec::with_capacity(spec.cols);
            let mut prev = head;
            for col in 0..spec.cols {
                let tap = ckt.node(&format!("wl_r{r}c{col}"));
                ckt.resistor(&format!("rwl_r{r}c{col}"), prev, tap, R_WL_SEGMENT)?;
                ckt.capacitor(&format!("cwl_r{r}c{col}"), tap, gnd, C_WL_SEGMENT)?;
                taps.push(tap);
                prev = tap;
            }
            wl_taps.push(taps);
        }

        // Column bitline ladders, precharge/equalise and column mux.
        let mut bl_taps: Vec<Vec<NodeId>> = Vec::with_capacity(spec.cols);
        let mut blb_taps: Vec<Vec<NodeId>> = Vec::with_capacity(spec.cols);
        let mut sa_lines = Vec::with_capacity(spec.cols / spec.mux);
        for gm in 0..spec.cols / spec.mux {
            let sa = ckt.node(&format!("sa{gm}"));
            let sab = ckt.node(&format!("sab{gm}"));
            sa_lines.push((sa, sab));
        }
        let pre_p = design.pmos.with_fins(2);
        let mux_n = design.nmos.with_fins(2);
        for col in 0..spec.cols {
            let top = ckt.node(&format!("bl_c{col}t"));
            let topb = ckt.node(&format!("blb_c{col}t"));
            ckt.device(Box::new(FinFet::new(
                format!("mpc_c{col}"),
                top,
                pre,
                vdd_rail,
                pre_p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mpcb_c{col}"),
                topb,
                pre,
                vdd_rail,
                pre_p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mpeq_c{col}"),
                top,
                pre,
                topb,
                pre_p,
            )))?;
            let (sa, sab) = sa_lines[col / spec.mux];
            let y = ysel[col % spec.mux];
            ckt.device(Box::new(FinFet::new(
                format!("mmux_c{col}"),
                top,
                y,
                sa,
                mux_n,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mmuxb_c{col}"),
                topb,
                y,
                sab,
                mux_n,
            )))?;
            let mut taps = Vec::with_capacity(spec.rows);
            let mut tapsb = Vec::with_capacity(spec.rows);
            let (mut prev, mut prevb) = (top, topb);
            for r in 0..spec.rows {
                let t = ckt.node(&format!("bl_c{col}r{r}"));
                let tb = ckt.node(&format!("blb_c{col}r{r}"));
                ckt.resistor(&format!("rbl_c{col}r{r}"), prev, t, R_BL_SEGMENT)?;
                ckt.resistor(&format!("rblb_c{col}r{r}"), prevb, tb, R_BL_SEGMENT)?;
                ckt.capacitor(&format!("cbl_c{col}r{r}"), t, gnd, design.c_bitline)?;
                ckt.capacitor(&format!("cblb_c{col}r{r}"), tb, gnd, design.c_bitline)?;
                taps.push(t);
                tapsb.push(tb);
                prev = t;
                prevb = tb;
            }
            bl_taps.push(taps);
            blb_taps.push(tapsb);
        }

        // Sense amps and write drivers, one per mux group.
        for (gm, &(sa, sab)) in sa_lines.iter().enumerate() {
            let sap = ckt.node(&format!("sap{gm}"));
            let san = ckt.node(&format!("san{gm}"));
            ckt.device(Box::new(FinFet::new(
                format!("msah_{gm}"),
                sap,
                saeb,
                vdd_rail,
                pre_p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("msaf_{gm}"),
                san,
                sae,
                gnd,
                mux_n,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("msapl_{gm}"),
                sa,
                sab,
                sap,
                inv_p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("msapr_{gm}"),
                sab,
                sa,
                sap,
                inv_p,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("msanl_{gm}"),
                sa,
                sab,
                san,
                inv_n,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("msanr_{gm}"),
                sab,
                sa,
                san,
                inv_n,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mwd_{gm}"),
                sa,
                wd,
                gnd,
                mux_n,
            )))?;
            ckt.device(Box::new(FinFet::new(
                format!("mwdb_{gm}"),
                sab,
                wdb,
                gnd,
                mux_n,
            )))?;
        }

        // Replica-timing bitline: a cell-less ladder with full column
        // loading, its own precharge, and a replica-enable pulldown at the
        // far end.
        let rbl_top = ckt.node("rbl_t");
        ckt.device(Box::new(FinFet::new(
            "mpc_rbl", rbl_top, pre, vdd_rail, pre_p,
        )))?;
        let mut prev = rbl_top;
        for r in 0..spec.rows {
            let t = ckt.node(&format!("rbl_r{r}"));
            ckt.resistor(&format!("rrbl_r{r}"), prev, t, R_BL_SEGMENT)?;
            ckt.capacitor(&format!("crbl_r{r}"), t, gnd, design.c_bitline)?;
            prev = t;
        }
        ckt.device(Box::new(FinFet::new("mrble", prev, rble, gnd, mux_n)))?;

        // The cell array.
        let pu = design.pmos.with_fins(design.fins_load);
        let pd = design.nmos.with_fins(design.fins_driver);
        let pa = design.nmos.with_fins(design.fins_access);
        let ps = design.nmos.with_fins(design.fins_ps);
        let mut cells = Vec::with_capacity(spec.rows);
        for row in 0..spec.rows {
            let g = spec.group_of_row(row);
            let rail = vvdd[g];
            let mut row_cells = Vec::with_capacity(spec.cols);
            for col in 0..spec.cols {
                let tag = format!("r{row}c{col}");
                let q = ckt.node(&format!("q_{tag}"));
                let qb = ckt.node(&format!("qb_{tag}"));
                let wl = wl_taps[row][col];
                let bl = bl_taps[col][row];
                let blb = blb_taps[col][row];
                ckt.device(Box::new(FinFet::new(
                    format!("mpul_{tag}"),
                    q,
                    qb,
                    rail,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpur_{tag}"),
                    qb,
                    q,
                    rail,
                    pu,
                )))?;
                ckt.device(Box::new(FinFet::new(format!("mpdl_{tag}"), q, qb, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(format!("mpdr_{tag}"), qb, q, gnd, pd)))?;
                ckt.device(Box::new(FinFet::new(format!("mpgl_{tag}"), bl, wl, q, pa)))?;
                ckt.device(Box::new(FinFet::new(
                    format!("mpgr_{tag}"),
                    blb,
                    wl,
                    qb,
                    pa,
                )))?;
                if nv {
                    let ml = ckt.node(&format!("ml_{tag}"));
                    let mr = ckt.node(&format!("mr_{tag}"));
                    ckt.device(Box::new(FinFet::new(
                        format!("mpsl_{tag}"),
                        q,
                        sr[g],
                        ml,
                        ps,
                    )))?;
                    ckt.device(Box::new(FinFet::new(
                        format!("mpsr_{tag}"),
                        qb,
                        sr[g],
                        mr,
                        ps,
                    )))?;
                    // Elements start in the OPPOSITE pattern so a store
                    // genuinely switches them (DomainArray convention).
                    let (l0, r0) = if pattern(row, col) {
                        (MtjState::Parallel, MtjState::AntiParallel)
                    } else {
                        (MtjState::AntiParallel, MtjState::Parallel)
                    };
                    let nvdev = design.retention_device();
                    nvdev.attach(&mut ckt, &format!("xl_{tag}"), ctrl[g], ml, l0.into())?;
                    nvdev.attach(&mut ckt, &format!("xr_{tag}"), ctrl[g], mr, r0.into())?;
                }
                row_cells.push(MacroCellNodes { q, qb });
            }
            cells.push(row_cells);
        }

        // Operating-point seeding: pattern in the cells, rails up,
        // bitlines and sense lines precharged, wordlines low.
        let mut opts = DcOptions {
            solver,
            ..DcOptions::default()
        };
        for (row, row_cells) in cells.iter().enumerate() {
            for (col, cell) in row_cells.iter().enumerate() {
                let (vq, vqb) = if pattern(row, col) {
                    (c.vdd, 0.0)
                } else {
                    (0.0, c.vdd)
                };
                opts = opts.with_nodeset(cell.q, vq).with_nodeset(cell.qb, vqb);
            }
        }
        for &rail in &vvdd {
            opts = opts.with_nodeset(rail, c.vdd);
        }
        for col in 0..spec.cols {
            for r in 0..spec.rows {
                opts = opts
                    .with_nodeset(bl_taps[col][r], c.vdd)
                    .with_nodeset(blb_taps[col][r], c.vdd);
            }
        }
        for &(sa, sab) in &sa_lines {
            opts = opts.with_nodeset(sa, c.vdd).with_nodeset(sab, c.vdd);
        }
        Ok(MacroBuilder {
            ckt,
            opts,
            spec,
            solver,
            cells,
            source_names,
            levels,
        })
    }

    /// MNA unknown count of the prepared netlist.
    pub fn unknown_count(&self) -> usize {
        self.ckt.unknown_count()
    }

    /// The DC options (pattern nodesets) the solve will use.
    pub fn dc_options(&self) -> &DcOptions {
        &self.opts
    }

    /// Consumes the builder, returning the bare netlist (registry decks).
    pub fn into_circuit(self) -> Circuit {
        self.ckt
    }

    /// Solves the operating point serially and finishes the macro.
    ///
    /// # Errors
    ///
    /// Propagates DC non-convergence.
    pub fn solve(mut self) -> Result<NvMacro, CircuitError> {
        let state = operating_point(&mut self.ckt, &self.opts)?;
        Ok(self.finish(state))
    }

    fn finish(self, state: DcSolution) -> NvMacro {
        NvMacro {
            ckt: self.ckt,
            spec: self.spec,
            solver: self.solver,
            cells: self.cells,
            state,
            source_names: self.source_names,
            levels: self.levels,
            stats: StepStats::default(),
        }
    }

    /// Solves a batch of prepared macros in lock-step lanes (same
    /// contract as `DomainBuilder::solve_batch`: one topology and seed
    /// pattern per chunk, parameter values may differ).
    pub fn solve_batch(
        builders: Vec<MacroBuilder>,
        batch: BatchMode,
    ) -> Vec<Result<NvMacro, CircuitError>> {
        let lanes = batch.lanes();
        let mut out = Vec::with_capacity(builders.len());
        let mut iter = builders.into_iter();
        loop {
            let chunk: Vec<MacroBuilder> = iter.by_ref().take(lanes).collect();
            if chunk.is_empty() {
                break;
            }
            let opts = chunk[0].opts.clone();
            let (mut circuits, seeds): (Vec<Circuit>, Vec<MacroBuilder>) = chunk
                .into_iter()
                .map(|mut b| (std::mem::replace(&mut b.ckt, Circuit::new()), b))
                .unzip();
            let results = batched_operating_point(&mut circuits, &opts);
            for ((ckt, mut seed), res) in circuits.into_iter().zip(seeds).zip(results) {
                seed.ckt = ckt;
                out.push(res.map(|(state, _stats)| seed.finish(state)));
            }
        }
        out
    }
}

/// A solved macro: cell array + periphery with per-group phase control.
#[derive(Debug)]
pub struct NvMacro {
    ckt: Circuit,
    spec: MacroSpec,
    solver: SolverChoice,
    cells: Vec<Vec<MacroCellNodes>>,
    state: DcSolution,
    source_names: Vec<String>,
    levels: Vec<f64>,
    stats: StepStats,
}

impl NvMacro {
    /// Builds and solves a macro holding `pattern(r, c)` with the default
    /// (`Auto`) solver choice.
    ///
    /// # Errors
    ///
    /// Propagates spec-validation, netlist and DC-convergence errors.
    pub fn new(
        spec: MacroSpec,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, CircuitError> {
        MacroBuilder::prepare(spec, SolverChoice::Auto, pattern)?.solve()
    }

    /// Builds and solves with an explicit solver choice.
    ///
    /// # Errors
    ///
    /// Propagates spec-validation, netlist and DC-convergence errors.
    pub fn with_solver(
        spec: MacroSpec,
        solver: SolverChoice,
        pattern: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, CircuitError> {
        MacroBuilder::prepare(spec, solver, pattern)?.solve()
    }

    /// The macro specification.
    pub fn spec(&self) -> &MacroSpec {
        &self.spec
    }

    /// MNA unknown count.
    pub fn unknown_count(&self) -> usize {
        self.ckt.unknown_count()
    }

    /// The current DC state.
    pub fn state(&self) -> &DcSolution {
        &self.state
    }

    /// Total static power delivered by every source in the current state
    /// (W).
    pub fn static_power(&self) -> f64 {
        self.source_names
            .iter()
            .zip(&self.levels)
            .map(|(n, &v)| self.state.source_power(n, v).unwrap_or(0.0))
            .sum()
    }

    /// Step/solver telemetry accumulated over every phase run so far.
    pub fn step_stats(&self) -> &StepStats {
        &self.stats
    }

    /// The latched data of cell `(row, col)` in the current state.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn data(&self, row: usize, col: usize) -> bool {
        let cell = &self.cells[row][col];
        self.state.voltage(cell.q) > self.state.voltage(cell.qb)
    }

    /// The whole data pattern.
    pub fn pattern(&self) -> Vec<Vec<bool>> {
        (0..self.spec.rows)
            .map(|r| (0..self.spec.cols).map(|c| self.data(r, c)).collect())
            .collect()
    }

    /// Smallest `|V(Q) − V(QB)|` over all cells (V).
    pub fn min_storage_margin(&self) -> f64 {
        self.cells
            .iter()
            .flatten()
            .map(|cell| (self.state.voltage(cell.q) - self.state.voltage(cell.qb)).abs())
            .fold(f64::INFINITY, f64::min)
    }

    /// Retention-element states of cell `(row, col)` (`None` for OSR).
    pub fn mtj_states(&self, row: usize, col: usize) -> Option<(MtjState, MtjState)> {
        let decode = |name: String| -> Option<MtjState> {
            let st = self.ckt.device_state(&name)?;
            let v = st.iter().find(|(l, _)| l == "state")?.1;
            Some(if v > 0.5 {
                MtjState::AntiParallel
            } else {
                MtjState::Parallel
            })
        };
        Some((
            decode(format!("xl_r{row}c{col}"))?,
            decode(format!("xr_r{row}c{col}"))?,
        ))
    }

    /// Terminal bias (V) across cell `(row, col)`'s Q-side retention
    /// element in the current state, `v(ctrl) − v(ml)` — the disturb
    /// drive the technology's retention model takes.
    pub fn element_bias(&self, row: usize, col: usize) -> Option<f64> {
        if !self.spec.kind.is_nonvolatile() {
            return None;
        }
        let g = self.spec.group_of_row(row);
        let ctrl = self.ckt.find_node(&format!("ctrl{g}"))?;
        let ml = self.ckt.find_node(&format!("ml_r{row}c{col}"))?;
        Some(self.state.voltage(ctrl) - self.state.voltage(ml))
    }

    fn level_of(&self, name: &str) -> f64 {
        let idx = self
            .source_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("unknown source {name}"));
        self.levels[idx]
    }

    fn ramp(&self, name: &str, to: f64) -> (String, Waveform) {
        let from = self.level_of(name);
        let e = self.spec.design.conditions.edge_time;
        (name.to_owned(), Waveform::Pwl(vec![(0.0, from), (e, to)]))
    }

    /// Runs a phase of `duration` with waveform overrides (the
    /// `DomainArray` phase contract: sources freeze at their end values,
    /// energy integrates over every source).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn phase(
        &mut self,
        duration: f64,
        waves: &[(String, Waveform)],
    ) -> Result<MacroPhase, CircuitError> {
        for (src, wave) in waves {
            self.ckt.set_source(src, wave.clone())?;
        }
        let opts = TransientOptions {
            t_stop: duration,
            dt_max: (duration / 100.0).clamp(1e-12, 200e-12),
            dt_init: 1e-12,
            device_bypass_tol: 1e-6,
            solver: self.solver,
            ..TransientOptions::default()
        };
        let result = transient(&mut self.ckt, &opts, &self.state)?;
        self.stats += result.steps;
        self.state = result.final_state;
        for (src, wave) in waves {
            let end = wave.value(duration);
            self.ckt.set_source(src, end)?;
            let idx = self
                .source_names
                .iter()
                .position(|n| n == src)
                .expect("known source");
            self.levels[idx] = end;
        }
        let mut energy = 0.0;
        for name in &self.source_names {
            energy += result
                .trace
                .integral(&format!("p({name})"))
                .expect("power signal recorded");
        }
        Ok(MacroPhase {
            energy: Joules(energy),
            duration: Seconds(duration),
        })
    }

    fn assert_nv(&self, what: &str) {
        assert!(
            self.spec.kind.is_nonvolatile(),
            "OSR macros have no retention elements to {what}"
        );
    }

    fn assert_groups(&self, groups: &[usize]) {
        let n = self.spec.groups();
        for &g in groups {
            assert!(g < n, "gating group {g} out of range (macro has {n})");
        }
    }

    /// Two-step store of the listed gating groups (H-store, L-store,
    /// lines back down) — same waveform shape as `DomainArray::store`,
    /// applied only to those groups' SR/CTRL pairs.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR macro or an out-of-range group index.
    pub fn store(&mut self, groups: &[usize]) -> Result<MacroPhase, CircuitError> {
        self.assert_nv("store");
        self.assert_groups(groups);
        let c = self.spec.design.conditions;
        let t = c.store_duration;
        // Each phase's ramps must read the *current* source levels, so
        // the waveform lists are built just before each phase runs.
        let mut total = MacroPhase::zero();
        let w1: Vec<_> = groups
            .iter()
            .flat_map(|&g| {
                [
                    self.ramp(&format!("vsr{g}"), c.v_sr),
                    self.ramp(&format!("vctrl{g}"), 0.0),
                ]
            })
            .collect();
        total.add(self.phase(t, &w1)?);
        let w2: Vec<_> = groups
            .iter()
            .map(|&g| self.ramp(&format!("vctrl{g}"), c.v_ctrl_store))
            .collect();
        total.add(self.phase(t, &w2)?);
        let w3: Vec<_> = groups
            .iter()
            .flat_map(|&g| {
                [
                    self.ramp(&format!("vsr{g}"), 0.0),
                    self.ramp(&format!("vctrl{g}"), 0.0),
                ]
            })
            .collect();
        total.add(self.phase(1e-9, &w3)?);
        Ok(total)
    }

    /// Powers the listed gating groups off (super cutoff when
    /// `super_cutoff`). Bitlines stay precharged — awake banks keep using
    /// them.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR macro or an out-of-range group index.
    pub fn shutdown(
        &mut self,
        groups: &[usize],
        super_cutoff: bool,
    ) -> Result<MacroPhase, CircuitError> {
        self.assert_nv("power off");
        self.assert_groups(groups);
        let c = self.spec.design.conditions;
        let v_pg = if super_cutoff {
            c.v_pg_super
        } else {
            c.v_pg_off
        };
        let waves: Vec<_> = groups
            .iter()
            .map(|&g| self.ramp(&format!("vpg{g}"), v_pg))
            .collect();
        self.phase(2e-9, &waves)
    }

    /// Lets the macro sit for `duration` in its current mode.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn hold(&mut self, duration: f64) -> Result<MacroPhase, CircuitError> {
        self.phase(duration, &[])
    }

    /// Enters the low-voltage retention (sleep) mode macro-wide.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn sleep(&mut self) -> Result<MacroPhase, CircuitError> {
        let c = self.spec.design.conditions;
        let mut waves = vec![self.ramp("vdd", c.vdd_sleep)];
        if self.spec.kind.is_nonvolatile() {
            for g in 0..self.spec.groups() {
                waves.push(self.ramp(&format!("vctrl{g}"), c.v_ctrl_sleep));
            }
        }
        self.phase(2e-9, &waves)
    }

    /// Returns from sleep to normal mode macro-wide.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn wake(&mut self) -> Result<MacroPhase, CircuitError> {
        let c = self.spec.design.conditions;
        let mut waves = vec![self.ramp("vdd", c.vdd)];
        if self.spec.kind.is_nonvolatile() {
            for g in 0..self.spec.groups() {
                waves.push(self.ramp(&format!("vctrl{g}"), c.v_ctrl_normal));
            }
        }
        self.phase(2e-9, &waves)
    }

    /// Restores the listed gating groups: SR on, slow header turn-on, SR
    /// off, CTRL back to normal (the `DomainArray::restore` recipe, per
    /// group).
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    ///
    /// # Panics
    ///
    /// Panics on an OSR macro or an out-of-range group index.
    pub fn restore(&mut self, groups: &[usize]) -> Result<MacroPhase, CircuitError> {
        self.assert_nv("restore");
        self.assert_groups(groups);
        let c = self.spec.design.conditions;
        let dur = c.restore_duration;
        let e = c.edge_time;
        let mut waves = Vec::new();
        for &g in groups {
            let sr = Waveform::Pwl(vec![
                (0.0, self.level_of(&format!("vsr{g}"))),
                (e, c.v_sr),
                (0.7 * dur, c.v_sr),
                (0.7 * dur + e, 0.0),
            ]);
            let pg = Waveform::Pwl(vec![
                (0.0, self.level_of(&format!("vpg{g}"))),
                (0.05 * dur, self.level_of(&format!("vpg{g}"))),
                (0.45 * dur, 0.0),
            ]);
            let ctrl = Waveform::Pwl(vec![
                (0.0, self.level_of(&format!("vctrl{g}"))),
                (0.7 * dur, self.level_of(&format!("vctrl{g}"))),
                (0.7 * dur + e, c.v_ctrl_normal),
            ]);
            waves.push((format!("vsr{g}"), sr));
            waves.push((format!("vpg{g}"), pg));
            waves.push((format!("vctrl{g}"), ctrl));
        }
        self.phase(dur, &waves)
    }

    /// Pulses the selected row's wordline (a read access): row select
    /// drops, sense amps fire, then everything returns to normal-mode
    /// levels. Returns the access energy — the wake-on-access cost input
    /// for partial-shutdown policies.
    ///
    /// # Errors
    ///
    /// Propagates transient non-convergence.
    pub fn access_read(&mut self) -> Result<MacroPhase, CircuitError> {
        let c = self.spec.design.conditions;
        let t = c.cycle_time();
        let e = c.edge_time;
        // Row select is active-low into the 3-stage chain.
        let sel = Waveform::Pwl(vec![
            (0.0, c.vdd),
            (e, 0.0),
            (0.6 * t, 0.0),
            (0.6 * t + e, c.vdd),
        ]);
        // Precharge releases while the wordline is up, sense amp fires in
        // the second half of the cycle.
        let pre = Waveform::Pwl(vec![
            (0.0, 0.0),
            (e, c.vdd),
            (0.7 * t, c.vdd),
            (0.7 * t + e, 0.0),
        ]);
        let sae = Waveform::Pwl(vec![
            (0.4 * t, 0.0),
            (0.4 * t + e, c.vdd),
            (0.7 * t, c.vdd),
            (0.7 * t + e, 0.0),
        ]);
        let saeb = Waveform::Pwl(vec![
            (0.4 * t, c.vdd),
            (0.4 * t + e, 0.0),
            (0.7 * t, 0.0),
            (0.7 * t + e, c.vdd),
        ]);
        let rble = Waveform::Pwl(vec![
            (0.0, 0.0),
            (e, c.vdd),
            (0.7 * t, c.vdd),
            (0.7 * t + e, 0.0),
        ]);
        self.phase(
            t,
            &[
                ("vrowsel".to_owned(), sel),
                ("vpre".to_owned(), pre),
                ("vsae".to_owned(), sae),
                ("vsaeb".to_owned(), saeb),
                ("vrble".to_owned(), rble),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Granularity;

    fn checkerboard(r: usize, c: usize) -> bool {
        (r + c).is_multiple_of(2)
    }

    #[test]
    fn small_macro_builds_and_holds_pattern() {
        let spec = MacroSpec::new(4, 4, 2).with_granularity(Granularity::PerRow);
        let m = NvMacro::new(spec, checkerboard).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.data(r, c), checkerboard(r, c), "cell ({r},{c})");
            }
        }
        assert!(m.min_storage_margin() > 0.5);
        assert!(m.static_power() > 0.0);
        // Cells + periphery: comfortably more unknowns than the bare
        // 4×4 DomainArray (~70).
        assert!(m.unknown_count() > 150, "unknowns = {}", m.unknown_count());
    }

    #[test]
    fn degenerate_specs_error_out() {
        let err = NvMacro::new(MacroSpec::new(0, 4, 2), checkerboard).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidValue { .. }));
    }

    #[test]
    fn partial_bank_power_cycle_preserves_both_halves() {
        // 4×4, two banks: gate bank 0 only; bank 1 stays up. After
        // restore, both banks hold the original pattern.
        let spec = MacroSpec::new(4, 4, 2).with_granularity(Granularity::PerBank(2));
        let mut m = NvMacro::new(spec, checkerboard).unwrap();
        m.store(&[0]).unwrap();
        m.shutdown(&[0], true).unwrap();
        m.hold(20e-9).unwrap();
        // The awake bank keeps its data while bank 0 is dark.
        for r in 2..4 {
            for c in 0..4 {
                assert_eq!(m.data(r, c), checkerboard(r, c), "awake cell ({r},{c})");
            }
        }
        m.restore(&[0]).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.data(r, c), checkerboard(r, c), "cell ({r},{c})");
            }
        }
    }

    #[test]
    fn access_read_runs_and_costs_energy() {
        let spec = MacroSpec::new(4, 4, 2);
        let mut m = NvMacro::new(spec, checkerboard).unwrap();
        let p = m.access_read().unwrap();
        assert!(p.energy.value() > 0.0);
        // The access must not corrupt any cell.
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m.data(r, c), checkerboard(r, c), "cell ({r},{c})");
            }
        }
    }
}
