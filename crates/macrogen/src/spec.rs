//! Macro parameterisation: dimensions, column-mux ratio, power-gating
//! granularity, architecture and retention technology.

use nvpg_cells::design::CellDesign;
use nvpg_cells::domain::DomainKind;
use nvpg_circuit::CircuitError;

/// How finely the cell array's header switches are split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// One header (and one SR/CTRL pair) per row — the finest gating the
    /// paper's per-row store sequencing implies.
    PerRow,
    /// `n` equal banks of consecutive rows, one header per bank.
    PerBank(usize),
    /// One header for the whole macro (the `DomainArray` arrangement).
    PerDomain,
}

impl Granularity {
    /// Stable lowercase label used in cache keys and reports
    /// (`"per_row"`, `"per_bank4"`, `"per_domain"`).
    pub fn label(&self) -> String {
        match self {
            Granularity::PerRow => "per_row".to_owned(),
            Granularity::PerBank(n) => format!("per_bank{n}"),
            Granularity::PerDomain => "per_domain".to_owned(),
        }
    }

    /// Parses a label produced by [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<Granularity> {
        match s {
            "per_row" => Some(Granularity::PerRow),
            "per_domain" => Some(Granularity::PerDomain),
            other => other
                .strip_prefix("per_bank")
                .and_then(|n| n.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .map(Granularity::PerBank),
        }
    }

    /// Number of gating groups for a macro of `rows` rows.
    pub fn groups(&self, rows: usize) -> usize {
        match self {
            Granularity::PerRow => rows,
            Granularity::PerBank(n) => (*n).min(rows),
            Granularity::PerDomain => 1,
        }
    }
}

/// A complete macro specification.
///
/// `design.retention` selects the technology every NV element in the
/// array instantiates; `arch` selects the cell flavour and the standby
/// policy semantics (see [`DomainKind`]).
#[derive(Debug, Clone, Copy)]
pub struct MacroSpec {
    /// Word-line count (cells per column).
    pub rows: usize,
    /// Bit-line pair count (cells per row).
    pub cols: usize,
    /// Column-mux ratio: columns sharing one sense amp / write driver.
    pub mux: usize,
    /// Header-switch granularity.
    pub granularity: Granularity,
    /// Architecture (NVPG / OSR / NOF).
    pub kind: DomainKind,
    /// Cell design point, including the retention technology.
    pub design: CellDesign,
}

impl MacroSpec {
    /// A macro of the paper's Table-I cells: `rows × cols`, mux ratio
    /// `mux`, NVPG architecture, per-domain gating, MTJ retention.
    pub fn new(rows: usize, cols: usize, mux: usize) -> Self {
        MacroSpec {
            rows,
            cols,
            mux,
            granularity: Granularity::PerDomain,
            kind: DomainKind::Nvpg,
            design: CellDesign::table1(),
        }
    }

    /// Returns a copy with another gating granularity.
    #[must_use]
    pub fn with_granularity(mut self, g: Granularity) -> Self {
        self.granularity = g;
        self
    }

    /// Returns a copy with another architecture.
    #[must_use]
    pub fn with_kind(mut self, kind: DomainKind) -> Self {
        self.kind = kind;
        self
    }

    /// Returns a copy re-targeted at a retention technology label, or
    /// `None` for an unknown label.
    pub fn with_technology(mut self, label: &str) -> Option<Self> {
        self.design = CellDesign::for_technology(label)?;
        Some(self)
    }

    /// Number of gating groups.
    pub fn groups(&self) -> usize {
        self.granularity.groups(self.rows)
    }

    /// Rows belonging to gating group `g` (consecutive blocks).
    pub fn group_rows(&self, g: usize) -> std::ops::Range<usize> {
        let groups = self.groups();
        let base = self.rows / groups;
        let extra = self.rows % groups;
        // First `extra` groups get one extra row.
        let start = g * base + g.min(extra);
        let len = base + usize::from(g < extra);
        start..start + len
    }

    /// Gating group that row `row` belongs to.
    pub fn group_of_row(&self, row: usize) -> usize {
        (0..self.groups())
            .find(|&g| self.group_rows(g).contains(&row))
            .expect("row in range")
    }

    /// Validates the spec, returning a typed error for degenerate
    /// parameter combinations.
    ///
    /// # Errors
    ///
    /// [`CircuitError::InvalidValue`] when rows/cols/mux are zero, the
    /// mux ratio does not divide the column count, or a bank split
    /// exceeds the row count.
    pub fn validate(&self) -> Result<(), CircuitError> {
        let fail = |reason: String| {
            Err(CircuitError::InvalidValue {
                element: "macro".to_owned(),
                reason,
            })
        };
        if self.rows == 0 || self.cols == 0 {
            return fail(format!(
                "macro dimensions must be nonzero (got {}×{})",
                self.rows, self.cols
            ));
        }
        if self.mux == 0 || !self.cols.is_multiple_of(self.mux) {
            return fail(format!(
                "mux ratio {} must be a nonzero divisor of the column count {}",
                self.mux, self.cols
            ));
        }
        if let Granularity::PerBank(n) = self.granularity {
            if n == 0 || n > self.rows {
                return fail(format!(
                    "bank count {n} must be in 1..={} for a {}-row macro",
                    self.rows, self.rows
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_labels_round_trip() {
        for g in [
            Granularity::PerRow,
            Granularity::PerBank(4),
            Granularity::PerDomain,
        ] {
            assert_eq!(Granularity::from_label(&g.label()), Some(g));
        }
        assert_eq!(Granularity::from_label("per_bank0"), None);
        assert_eq!(Granularity::from_label("row"), None);
    }

    #[test]
    fn group_rows_partition_the_macro() {
        let spec = MacroSpec::new(10, 4, 2).with_granularity(Granularity::PerBank(3));
        let mut seen = Vec::new();
        for g in 0..spec.groups() {
            for r in spec.group_rows(g) {
                assert_eq!(spec.group_of_row(r), g);
                seen.push(r);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(MacroSpec::new(8, 4, 2).groups(), 1);
        assert_eq!(
            MacroSpec::new(8, 4, 2)
                .with_granularity(Granularity::PerRow)
                .groups(),
            8
        );
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(MacroSpec::new(4, 4, 2).validate().is_ok());
        for bad in [
            MacroSpec::new(0, 4, 2),
            MacroSpec::new(4, 0, 2),
            MacroSpec::new(4, 4, 0),
            MacroSpec::new(4, 4, 3), // 3 does not divide 4
            MacroSpec::new(4, 4, 2).with_granularity(Granularity::PerBank(9)),
            MacroSpec::new(4, 4, 2).with_granularity(Granularity::PerBank(0)),
        ] {
            match bad.validate() {
                Err(CircuitError::InvalidValue { element, .. }) => {
                    assert_eq!(element, "macro")
                }
                other => panic!("expected InvalidValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn technology_retarget() {
        let spec = MacroSpec::new(4, 4, 2).with_technology("fefet").unwrap();
        assert_eq!(spec.design.retention.label(), "fefet");
        assert!(MacroSpec::new(4, 4, 2).with_technology("nope").is_none());
    }
}
