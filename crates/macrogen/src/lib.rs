//! # nvpg-macro
//!
//! Parameterised NV-SRAM **macro** generator. Where `nvpg-cells` models a
//! single cell or a uniform power domain, this crate emits a full macro:
//! the cell array hung off per-group power-gating headers **plus** the
//! periphery the paper's energy numbers implicitly include — row
//! decoder/driver chains, distributed wordline and bitline RC, precharge
//! and equalise devices, column muxes, latch-type sense amplifiers, write
//! drivers and a replica-timing bitline.
//!
//! The retention technology is pluggable: the spec's
//! [`CellDesign`](nvpg_cells::CellDesign) carries a
//! [`RetentionKind`](nvpg_cells::RetentionKind) and every nonvolatile
//! element in the array is attached through the
//! [`RetentionDevice`](nvpg_devices::RetentionDevice) trait, so MTJ,
//! FeFET and NAND-SPIN macros share one netlist path.
//!
//! ```no_run
//! use nvpg_macro::{Granularity, MacroSpec, NvMacro};
//!
//! let spec = MacroSpec::new(16, 16, 4).with_granularity(Granularity::PerRow);
//! let mut m = NvMacro::new(spec, |r, c| (r + c) % 2 == 0)?;
//! m.store(&[0, 1, 2, 3])?;            // store four rows' banks
//! m.shutdown(&[0, 1, 2, 3], true)?;   // gate them off (super cutoff)
//! m.restore(&[0, 1, 2, 3])?;          // bring them back
//! assert!(m.data(0, 0));              // data survived
//! # Ok::<(), nvpg_circuit::CircuitError>(())
//! ```

pub mod build;
pub mod decks;
pub mod spec;

pub use build::{MacroBuilder, MacroPhase, NvMacro};
pub use decks::macro_decks;
pub use spec::{Granularity, MacroSpec};
