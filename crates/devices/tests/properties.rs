//! Property-based tests for the compact device models.

use proptest::prelude::*;

use nvpg_circuit::{DeviceStamp, NodeId, NonlinearDevice};
use nvpg_devices::finfet::{FinFet, FinFetParams};
use nvpg_devices::mtj::{Mtj, MtjParams, MtjState};

fn nfet() -> FinFet {
    FinFet::new(
        "m",
        NodeId::GROUND,
        NodeId::GROUND,
        NodeId::GROUND,
        FinFetParams::nmos_20nm(),
    )
}

proptest! {
    /// Terminal currents always satisfy KCL (sum to zero) and the
    /// conductance rows of drain and source are exact negatives.
    #[test]
    fn finfet_stamp_kcl(
        vd in -1.0f64..1.0,
        vg in -1.0f64..1.0,
        vs in -1.0f64..1.0,
    ) {
        let m = nfet();
        let mut stamp = DeviceStamp::new(3);
        m.load(&[vd, vg, vs], &mut stamp);
        let sum: f64 = stamp.current.iter().sum();
        prop_assert!(sum.abs() < 1e-15);
        for u in 0..3 {
            prop_assert!((stamp.conductance[0][u] + stamp.conductance[2][u]).abs() < 1e-12);
        }
    }

    /// Source/drain exchange antisymmetry: I(d,g,s) = −I(s,g,d).
    #[test]
    fn finfet_terminal_antisymmetry(
        va in -1.0f64..1.0,
        vg in -1.0f64..1.0,
        vb in -1.0f64..1.0,
    ) {
        let m = nfet();
        let fwd = m.ids(va, vg, vb);
        let rev = m.ids(vb, vg, va);
        prop_assert!((fwd + rev).abs() <= 1e-12 * fwd.abs().max(1e-15));
    }

    /// The drain current is continuous: a 1 µV nudge on any terminal
    /// moves the current by a proportionally tiny amount (no branch
    /// discontinuities in the compact model).
    #[test]
    fn finfet_current_continuity(
        vd in 0.0f64..0.9,
        vg in 0.0f64..0.9,
        vs in 0.0f64..0.9,
    ) {
        let m = nfet();
        let base = m.ids(vd, vg, vs);
        for (dd, dg, ds) in [(1e-6, 0.0, 0.0), (0.0, 1e-6, 0.0), (0.0, 0.0, 1e-6)] {
            let nudged = m.ids(vd + dd, vg + dg, vs + ds);
            // Bounded by a generous conductance limit of 10 mS.
            prop_assert!(
                (nudged - base).abs() < 1e-6 * 1e-2 + 1e-15,
                "jump {:e}",
                (nudged - base).abs()
            );
        }
    }

    /// MTJ current is odd-symmetric in bias for the parallel state
    /// (bias-independent resistance) and conductance stays within
    /// [1/R_AP(0), 1/R_P(0)] bounds in all states.
    #[test]
    fn mtj_current_bounds(v in -0.9f64..0.9) {
        let p = MtjParams::table1();
        for state in [MtjState::Parallel, MtjState::AntiParallel] {
            let m = Mtj::new("x", NodeId::GROUND, NodeId::GROUND, p, state);
            let i = m.current(v);
            // |i| is bounded by the extreme conductances.
            let i_max = v.abs() / p.r_parallel();
            let i_min = v.abs() / p.r_antiparallel();
            prop_assert!(i.abs() <= i_max * (1.0 + 1e-12), "{state:?}: {i:e}");
            prop_assert!(i.abs() >= i_min * (1.0 - 1e-12));
            // Odd symmetry.
            prop_assert!((m.current(-v) + i).abs() < 1e-18);
        }
    }

    /// Write-error rate is monotone non-increasing in both pulse duration
    /// and drive current.
    #[test]
    fn wer_monotonicity(
        over1 in 1.05f64..4.0,
        dover in 0.01f64..2.0,
        t1 in 1e-9f64..50e-9,
        dt in 1e-10f64..50e-9,
    ) {
        let p = MtjParams::table1();
        let ic = p.i_critical();
        let a = p.write_error_rate(over1 * ic, t1);
        let longer = p.write_error_rate(over1 * ic, t1 + dt);
        let stronger = p.write_error_rate((over1 + dover) * ic, t1);
        prop_assert!(longer <= a + 1e-15);
        prop_assert!(stronger <= a + 1e-15);
    }

    /// Switching progress in the macromodel never flips on sub-critical
    /// drive regardless of how the pulse is chopped up.
    #[test]
    fn subcritical_never_flips(
        chunks in proptest::collection::vec(1e-10f64..2e-9, 1..30),
        frac in 0.1f64..0.8,
    ) {
        let p = MtjParams::table1();
        let mut m = Mtj::new("x", NodeId::GROUND, NodeId::GROUND, p, MtjState::AntiParallel);
        // Bias for `frac`×I_C through the zero-bias AP resistance; the
        // TMR roll-off raises the actual current somewhat, which is why
        // `frac` stays ≤ 0.8 (at 0.8 the delivered current is still only
        // ≈ 0.84×I_C, safely sub-critical).
        let v = frac * p.i_critical() * p.r_antiparallel();
        prop_assert!(m.current(v).abs() < p.i_critical());
        let mut t = 0.0;
        for dt in chunks {
            m.accept_step(&[v, 0.0], t, dt);
            t += dt;
        }
        prop_assert_eq!(m.mtj_state(), MtjState::AntiParallel);
        prop_assert_eq!(m.flips(), 0);
    }
}
