//! Compact device models for the NV-SRAM power-gating study.
//!
//! Three models, each pinned to the parameters of the paper's Table I:
//!
//! * [`finfet`] — a smooth EKV-style 20 nm FinFET (NMOS/PMOS, fin-count
//!   width quantisation, DIBL, velocity saturation), the stand-in for the
//!   20 nm PTM the paper uses;
//! * [`mtj`] — the spin-transfer-torque magnetic-tunnel-junction
//!   macromodel (bias-dependent TMR, CIMS switching with the Sun
//!   switching-time law) that implements the paper's nonvolatile element;
//! * [`llg`] — a macrospin Landau–Lifshitz–Gilbert integrator used to
//!   validate the threshold CIMS model from first principles.
//!
//! The [`retention`] module abstracts the nonvolatile element behind the
//! [`retention::RetentionDevice`] trait so cells and macros can swap the
//! MTJ for an FeFET retention cell or a NAND-SPIN element without
//! touching the netlist builders.
//!
//! All models implement [`nvpg_circuit::NonlinearDevice`] and plug
//! directly into `nvpg-circuit` netlists:
//!
//! ```
//! use nvpg_circuit::{dc, Circuit};
//! use nvpg_devices::finfet::{FinFet, FinFetParams};
//!
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let out = ckt.node("out");
//! ckt.vsource("v1", vdd, Circuit::GROUND, 0.9)?;
//! ckt.resistor("rl", out, Circuit::GROUND, 100e3)?;
//! // Diode-connected NMOS pulling `out` up toward vdd − Vth.
//! ckt.device(Box::new(FinFet::new("m1", vdd, vdd, out, FinFetParams::nmos_20nm())))?;
//! let op = dc::operating_point(&mut ckt, &Default::default())?;
//! assert!(op.voltage(out) > 0.3 && op.voltage(out) < 0.9);
//! # Ok::<(), nvpg_circuit::CircuitError>(())
//! ```

pub mod finfet;
pub mod iv;
pub mod llg;
pub mod mtj;
pub mod retention;

pub use finfet::{FinFet, FinFetParams, Polarity};
pub use llg::{Macrospin, MacrospinParams, SwitchOutcome};
pub use mtj::{Mtj, MtjParams, MtjState};
pub use retention::{
    decode_state, Fefet, FefetParams, FefetRetention, MtjRetention, NandSpinParams,
    NandSpinRetention, RetentionDevice, RetentionState,
};
