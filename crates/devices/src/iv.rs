//! Device I–V characterisation utilities.
//!
//! Standalone curve generators and parameter extractors that operate on
//! the compact models directly (no circuit assembly): transfer and output
//! characteristics, transconductance, and the max-`gm` threshold-voltage
//! extraction used to sanity-check model cards against their nominal
//! `V_th`.

use crate::finfet::{FinFet, FinFetParams};
use nvpg_circuit::NodeId;

/// A sampled `(voltage, current)` characteristic.
pub type IvCurve = Vec<(f64, f64)>;

fn instance(params: FinFetParams) -> FinFet {
    FinFet::new("iv", NodeId::GROUND, NodeId::GROUND, NodeId::GROUND, params)
}

/// Transfer characteristic `I_D(V_GS)` at fixed `V_DS` (source grounded).
///
/// # Examples
///
/// ```
/// use nvpg_devices::finfet::FinFetParams;
/// use nvpg_devices::iv::transfer_curve;
/// let curve = transfer_curve(FinFetParams::nmos_20nm(), 0.9, 0.0, 0.9, 19);
/// assert_eq!(curve.len(), 19);
/// assert!(curve.last().unwrap().1 > curve[0].1);
/// ```
pub fn transfer_curve(
    params: FinFetParams,
    vds: f64,
    vg_start: f64,
    vg_end: f64,
    points: usize,
) -> IvCurve {
    let dev = instance(params);
    nvpg_units::linspace(vg_start, vg_end, points)
        .into_iter()
        .map(|vg| (vg, dev.ids(vds, vg, 0.0)))
        .collect()
}

/// Output characteristic `I_D(V_DS)` at fixed `V_GS` (source grounded).
pub fn output_curve(
    params: FinFetParams,
    vgs: f64,
    vd_start: f64,
    vd_end: f64,
    points: usize,
) -> IvCurve {
    let dev = instance(params);
    nvpg_units::linspace(vd_start, vd_end, points)
        .into_iter()
        .map(|vd| (vd, dev.ids(vd, vgs, 0.0)))
        .collect()
}

/// Transconductance `gm = dI_D/dV_GS` along a transfer curve (central
/// differences on the model, not on the sampled curve).
pub fn transconductance(
    params: FinFetParams,
    vds: f64,
    vg_start: f64,
    vg_end: f64,
    points: usize,
) -> IvCurve {
    let dev = instance(params);
    const H: f64 = 1e-5;
    nvpg_units::linspace(vg_start, vg_end, points)
        .into_iter()
        .map(|vg| {
            let gm = (dev.ids(vds, vg + H, 0.0) - dev.ids(vds, vg - H, 0.0)) / (2.0 * H);
            (vg, gm)
        })
        .collect()
}

/// Threshold voltage by the maximum-`gm` extrapolation method: the
/// tangent at the max-transconductance point is extrapolated to
/// `I_D = 0`, which is the standard silicon-characterisation definition.
///
/// Uses a low `V_DS` (linear region) as the method prescribes.
pub fn extract_vth_max_gm(params: FinFetParams) -> f64 {
    let vds = 0.05;
    let dev = instance(params);
    let n = 401;
    let vdd = 0.9;
    // Locate max gm.
    let mut best = (0.0, f64::NEG_INFINITY);
    const H: f64 = 1e-5;
    for vg in nvpg_units::linspace(0.0, vdd, n) {
        let gm = (dev.ids(vds, vg + H, 0.0) - dev.ids(vds, vg - H, 0.0)) / (2.0 * H);
        if gm > best.1 {
            best = (vg, gm);
        }
    }
    let (vg_star, gm_star) = best;
    let id_star = dev.ids(vds, vg_star, 0.0);
    // Tangent: I(vg) = id* + gm*·(vg − vg*); zero crossing minus V_DS/2
    // correction (linear-region convention).
    vg_star - id_star / gm_star - 0.5 * vds
}

/// Subthreshold swing (mV/dec) extracted from the transfer curve between
/// two gate biases safely below threshold.
pub fn extract_subthreshold_swing(params: FinFetParams) -> f64 {
    let dev = instance(params);
    let (v1, v2) = (0.05, 0.15);
    let i1 = dev.ids(0.9, v1, 0.0);
    let i2 = dev.ids(0.9, v2, 0.0);
    (v2 - v1) / (i2 / i1).log10() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_curve_is_monotone() {
        let curve = transfer_curve(FinFetParams::nmos_20nm(), 0.9, 0.0, 0.9, 91);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "{w:?}");
        }
    }

    #[test]
    fn output_curve_saturates() {
        let curve = output_curve(FinFetParams::nmos_20nm(), 0.9, 0.0, 0.9, 91);
        // Early slope far steeper than late slope.
        let early = curve[5].1 - curve[0].1;
        let late = curve[90].1 - curve[85].1;
        assert!(early > 5.0 * late, "early {early:e} vs late {late:e}");
        assert_eq!(curve[0].1, 0.0);
    }

    #[test]
    fn gm_peaks_inside_the_sweep() {
        let gm = transconductance(FinFetParams::nmos_20nm(), 0.05, 0.0, 0.9, 91);
        let max = gm
            .iter()
            .cloned()
            .fold((0.0, 0.0), |m, p| if p.1 > m.1 { p } else { m });
        assert!(max.1 > 0.0);
        assert!(max.0 > 0.2 && max.0 < 0.9, "gm peak at {}", max.0);
    }

    #[test]
    fn extracted_vth_matches_card() {
        let params = FinFetParams::nmos_20nm();
        let vth = extract_vth_max_gm(params);
        assert!(
            (vth - params.vth0).abs() < 0.12,
            "extracted {vth} vs card {}",
            params.vth0
        );
    }

    #[test]
    fn extracted_swing_matches_card() {
        let params = FinFetParams::nmos_20nm();
        let ss = extract_subthreshold_swing(params);
        let card = params.subthreshold_swing() * 1e3;
        assert!(
            (ss - card).abs() < 0.25 * card,
            "extracted {ss} mV/dec vs card {card}"
        );
    }

    #[test]
    fn pmos_transfer_mirrors() {
        // PMOS with one terminal at 0.9 V: the high terminal acts as the
        // source, so the device is ON at V_G = 0 and turns OFF as the
        // gate approaches the source potential.
        let curve = transfer_curve(FinFetParams::pmos_20nm(), 0.9, 0.0, 0.9, 11);
        assert!(curve[0].1.abs() > 1e-6, "on at V_G = 0: {:e}", curve[0].1);
        assert!(
            curve.last().unwrap().1.abs() < 1e-7,
            "off at V_G = 0.9: {:e}",
            curve.last().unwrap().1
        );
        // Magnitude monotone decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1.abs() <= w[0].1.abs() + 1e-12);
        }
    }
}
