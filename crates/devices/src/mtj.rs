//! Spin-transfer-torque MTJ macromodel.
//!
//! Reproduces the terminal behaviour pinned down by the paper's Table I
//! (perpendicular CoFeB/MgO/CoFeB junctions per \[18, 19\]):
//!
//! | parameter | value |
//! |---|---|
//! | TMR(0) | 100 % |
//! | RA product (P) | 2 Ω·µm² |
//! | V at half-max TMR, `V_h` | 0.5 V |
//! | CIMS critical current density `J_C` | 5×10⁶ A/cm² |
//! | diameter φ | 20 nm |
//! | `I_C` | 15.7 µA |
//! | `R_P(0)` | 6.36 kΩ |
//! | `R_AP(0)` | 12.7 kΩ |
//!
//! **Resistance**: `R_P` is bias-independent, `R_AP(V) = R_P·(1 +
//! TMR(V))` with the standard Lorentzian roll-off `TMR(V) = TMR₀ / (1 +
//! (V/V_h)²)` that fits measured junctions to ~1.5 %.
//!
//! **Switching (CIMS)**: current-induced magnetisation switching with the
//! Sun precessional-regime model — an over-critical current `I > I_C`
//! switches in `τ(I) = τ_D / (I/I_C − 1)`, implemented as a progress
//! integrator so that partial pulses accumulate and under-critical pulses
//! genuinely fail (exercised by the failure-injection tests). The sign
//! convention follows the usual STT rule:
//!
//! * current flowing **free → pinned** (electrons pinned → free) switches
//!   **AP → P**;
//! * current flowing **pinned → free** switches **P → AP**.
//!
//! Terminal order is **(free, pinned)**; positive terminal current flows
//! into the device at that terminal.

use nvpg_circuit::{DeviceStamp, NodeId, NonlinearDevice};

/// Magnetisation state of the free layer relative to the pinned layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MtjState {
    /// Parallel: low resistance, logic convention "1" in this workspace.
    Parallel,
    /// Antiparallel: high resistance.
    AntiParallel,
}

impl MtjState {
    /// The opposite state.
    pub fn flipped(self) -> MtjState {
        match self {
            MtjState::Parallel => MtjState::AntiParallel,
            MtjState::AntiParallel => MtjState::Parallel,
        }
    }
}

/// MTJ macromodel parameters (defaults = Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjParams {
    /// Zero-bias tunnelling magnetoresistance ratio (1.0 = 100 %).
    pub tmr0: f64,
    /// Resistance–area product in the parallel state (Ω·m²).
    pub ra_product: f64,
    /// Bias voltage at which TMR halves (V).
    pub v_half: f64,
    /// Critical current density for CIMS (A/m²).
    pub jc: f64,
    /// Junction diameter (m).
    pub diameter: f64,
    /// Characteristic switching time scale `τ_D` (s): an over-drive of
    /// `I = 2·I_C` switches in `τ_D`.
    pub tau_d: f64,
    /// Thermal stability factor `Δ = E_b / k_B T` (≈ 60 for the sub-20 nm
    /// perpendicular junctions of refs. \[18, 19\]).
    pub thermal_stability: f64,
    /// Attempt time `τ_0` of the thermal-activation (Néel–Brown) model
    /// (s), conventionally 1 ns.
    pub attempt_time: f64,
}

impl MtjParams {
    /// Table I values: TMR = 100 %, RA = 2 Ω µm², V_h = 0.5 V,
    /// J_C = 5×10⁶ A/cm², φ = 20 nm, τ_D = 2.5 ns (so the paper's
    /// 1.5×I_C, 10 ns store pulse completes with 2× margin).
    pub fn table1() -> Self {
        MtjParams {
            tmr0: 1.0,
            ra_product: 2.0e-12, // 2 Ω·µm² = 2e-12 Ω·m²
            v_half: 0.5,
            jc: 5e10, // 5e6 A/cm² = 5e10 A/m²
            diameter: 20e-9,
            tau_d: 2.5e-9,
            thermal_stability: 60.0,
            attempt_time: 1e-9,
        }
    }

    /// The Fig. 9(b) technology point: `J_C = 1×10⁶ A/cm²`.
    pub fn table1_low_jc() -> Self {
        MtjParams {
            jc: 1e10,
            ..MtjParams::table1()
        }
    }

    /// Junction area (m²).
    pub fn area(&self) -> f64 {
        let r = self.diameter / 2.0;
        std::f64::consts::PI * r * r
    }

    /// Parallel-state resistance at zero bias: `RA / A`.
    pub fn r_parallel(&self) -> f64 {
        self.ra_product / self.area()
    }

    /// Antiparallel-state resistance at zero bias.
    pub fn r_antiparallel(&self) -> f64 {
        self.r_parallel() * (1.0 + self.tmr0)
    }

    /// Bias-dependent TMR ratio.
    pub fn tmr(&self, v: f64) -> f64 {
        self.tmr0 / (1.0 + (v / self.v_half).powi(2))
    }

    /// CIMS critical current `I_C = J_C · A`.
    pub fn i_critical(&self) -> f64 {
        self.jc * self.area()
    }

    /// Sun-model switching time for a constant drive current `i` (A);
    /// `f64::INFINITY` at or below the critical current.
    pub fn switching_time(&self, i: f64) -> f64 {
        let over = i.abs() / self.i_critical() - 1.0;
        if over <= 0.0 {
            f64::INFINITY
        } else {
            self.tau_d / over
        }
    }

    /// Zero-bias retention time from the Néel–Brown thermal-activation
    /// model: `τ_ret = τ_0 · exp(Δ)`. With the default `Δ = 60` this is
    /// ≈ 3.6 × 10¹⁷ s — the "ten-year nonvolatility" class the paper's
    /// retention technology relies on.
    pub fn retention_time(&self) -> f64 {
        self.attempt_time * self.thermal_stability.exp().min(f64::MAX)
    }

    /// Retention time under a sub-critical disturb current `i`: the
    /// barrier is reduced to `Δ·(1 − |i|/I_C)` (thermally-assisted
    /// switching regime). At or above `I_C` this collapses to the attempt
    /// time.
    pub fn retention_time_under_bias(&self, i: f64) -> f64 {
        let reduction = (1.0 - i.abs() / self.i_critical()).max(0.0);
        self.attempt_time * (self.thermal_stability * reduction).exp()
    }

    /// Write-error rate for a drive `i` applied for `pulse` seconds:
    /// `WER = exp(−pulse/τ(i))`, with `τ` from the Sun model above `I_C`
    /// and from thermal activation below it. This is the simple
    /// exponential-tail model behind the paper's remark that "a shorter
    /// store time needs a higher store current" to keep the error rate
    /// down.
    pub fn write_error_rate(&self, i: f64, pulse: f64) -> f64 {
        let tau = if i.abs() > self.i_critical() {
            self.switching_time(i)
        } else {
            self.retention_time_under_bias(i)
        };
        if tau.is_infinite() {
            1.0
        } else {
            (-pulse / tau).exp()
        }
    }
}

/// An MTJ instance with its switching state.
///
/// Terminals: **(free layer, pinned layer)**.
#[derive(Debug, Clone)]
pub struct Mtj {
    name: String,
    nodes: [NodeId; 2],
    params: MtjParams,
    state: MtjState,
    /// Switching-progress integrator in [0, 1).
    progress: f64,
    /// Completed switching events (diagnostics).
    flips: u32,
}

impl Mtj {
    /// Creates an MTJ named `name` between `free` and `pinned`, starting
    /// in `state`.
    pub fn new(
        name: impl Into<String>,
        free: NodeId,
        pinned: NodeId,
        params: MtjParams,
        state: MtjState,
    ) -> Self {
        Mtj {
            name: name.into(),
            nodes: [free, pinned],
            params,
            state,
            progress: 0.0,
            flips: 0,
        }
    }

    /// Current magnetisation state.
    pub fn mtj_state(&self) -> MtjState {
        self.state
    }

    /// Forces the state (used when (re)initialising a stored pattern).
    pub fn set_state(&mut self, state: MtjState) {
        self.state = state;
        self.progress = 0.0;
    }

    /// Number of completed switching events so far.
    pub fn flips(&self) -> u32 {
        self.flips
    }

    /// The model parameters.
    pub fn params(&self) -> &MtjParams {
        &self.params
    }

    /// Junction resistance at bias `v` (free minus pinned) in the current
    /// state.
    pub fn resistance(&self, v: f64) -> f64 {
        match self.state {
            MtjState::Parallel => self.params.r_parallel(),
            MtjState::AntiParallel => self.params.r_parallel() * (1.0 + self.params.tmr(v)),
        }
    }

    /// Junction current for a bias `v` = v(free) − v(pinned): positive
    /// current flows free → pinned inside the device.
    pub fn current(&self, v: f64) -> f64 {
        v / self.resistance(v)
    }

    fn conductance(&self, v: f64) -> f64 {
        // d(i)/d(v) with i = v / R(v).
        match self.state {
            MtjState::Parallel => 1.0 / self.params.r_parallel(),
            MtjState::AntiParallel => {
                // i = v·G_ap(v), G_ap = G_p / (1 + tmr(v)).
                let gp = 1.0 / self.params.r_parallel();
                let tmr = self.params.tmr(v);
                let g = gp / (1.0 + tmr);
                // d tmr/dv = −tmr0 · 2v/V_h² / (1+(v/Vh)²)²
                let vh2 = self.params.v_half * self.params.v_half;
                let denom = 1.0 + v * v / vh2;
                let dtmr = -self.params.tmr0 * 2.0 * v / vh2 / (denom * denom);
                // dG/dv = −gp·dtmr/(1+tmr)².
                let dg = -gp * dtmr / ((1.0 + tmr) * (1.0 + tmr));
                g + v * dg
            }
        }
    }

    /// `true` if current `i` (free → pinned positive) drives a switch out
    /// of the current state.
    fn drives_switch(&self, i: f64) -> bool {
        match self.state {
            // AP → P needs free → pinned current (positive).
            MtjState::AntiParallel => i > 0.0,
            // P → AP needs pinned → free current (negative).
            MtjState::Parallel => i < 0.0,
        }
    }
}

impl NonlinearDevice for Mtj {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn load(&self, v: &[f64], stamp: &mut DeviceStamp) {
        let bias = v[0] - v[1];
        let i = self.current(bias);
        let g = self.conductance(bias);
        stamp.current[0] = i;
        stamp.current[1] = -i;
        stamp.conductance[0][0] = g;
        stamp.conductance[0][1] = -g;
        stamp.conductance[1][0] = -g;
        stamp.conductance[1][1] = g;
    }

    fn accept_step(&mut self, v: &[f64], _t: f64, dt: f64) {
        let bias = v[0] - v[1];
        let i = self.current(bias);
        let ic = self.params.i_critical();
        if self.drives_switch(i) && i.abs() > ic {
            // Progress at rate 1/τ(I): τ_D/(I/I_C − 1).
            let rate = (i.abs() / ic - 1.0) / self.params.tau_d;
            self.progress += rate * dt;
            if self.progress >= 1.0 {
                self.state = self.state.flipped();
                self.progress = 0.0;
                self.flips += 1;
            }
        } else {
            // Sub-critical or wrong-direction drive: the precessional
            // build-up decays quickly (≈ the same time scale).
            self.progress = (self.progress - dt / self.params.tau_d).max(0.0);
        }
    }

    fn state(&self) -> Vec<(String, f64)> {
        vec![
            (
                "state".to_owned(),
                match self.state {
                    MtjState::Parallel => 0.0,
                    MtjState::AntiParallel => 1.0,
                },
            ),
            ("progress".to_owned(), self.progress),
        ]
    }

    fn bypass_tolerance_scale(&self) -> f64 {
        // While a switching event is in flight the next accept_step may
        // flip the state and change the resistance by ~2×; force a full
        // re-evaluation every iteration until the integrator settles.
        if self.progress > 0.0 {
            0.0
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mtj(state: MtjState) -> Mtj {
        Mtj::new(
            "x1",
            NodeId::GROUND,
            NodeId::GROUND,
            MtjParams::table1(),
            state,
        )
    }

    #[test]
    fn table1_derived_quantities() {
        let p = MtjParams::table1();
        assert!(
            (p.r_parallel() - 6.366e3).abs() < 50.0,
            "R_P = {}",
            p.r_parallel()
        );
        assert!(
            (p.r_antiparallel() - 12.73e3).abs() < 100.0,
            "R_AP = {}",
            p.r_antiparallel()
        );
        assert!(
            (p.i_critical() - 15.7e-6).abs() < 0.2e-6,
            "I_C = {}",
            p.i_critical()
        );
        assert!((p.area() - 3.1416e-16).abs() < 1e-19);
    }

    #[test]
    fn tmr_bias_rolloff() {
        let p = MtjParams::table1();
        assert_eq!(p.tmr(0.0), 1.0);
        assert!((p.tmr(0.5) - 0.5).abs() < 1e-12); // half at V_h
        assert!(p.tmr(1.0) < 0.21);
    }

    #[test]
    fn resistance_by_state_and_bias() {
        let m_p = mtj(MtjState::Parallel);
        let m_ap = mtj(MtjState::AntiParallel);
        assert!(m_ap.resistance(0.0) / m_p.resistance(0.0) > 1.99);
        // P-state resistance is bias-independent; AP-state drops with bias.
        assert_eq!(m_p.resistance(0.5), m_p.resistance(0.0));
        assert!(m_ap.resistance(0.5) < m_ap.resistance(0.0));
    }

    #[test]
    fn conductance_matches_numeric_derivative() {
        let m = mtj(MtjState::AntiParallel);
        for v in [-0.6, -0.2, 0.0, 0.1, 0.45, 0.9] {
            let h = 1e-7;
            let num = (m.current(v + h) - m.current(v - h)) / (2.0 * h);
            let ana = m.conductance(v);
            assert!(
                (num - ana).abs() < 1e-6 * num.abs().max(1e-6),
                "v={v}: {num:e} vs {ana:e}"
            );
        }
    }

    #[test]
    fn switching_time_model() {
        let p = MtjParams::table1();
        let ic = p.i_critical();
        assert_eq!(p.switching_time(0.5 * ic), f64::INFINITY);
        assert_eq!(p.switching_time(ic), f64::INFINITY);
        // 1.5×I_C → τ_D / 0.5 = 5 ns.
        assert!((p.switching_time(1.5 * ic) - 5e-9).abs() < 1e-12);
        // 2×I_C → τ_D.
        assert!((p.switching_time(2.0 * ic) - 2.5e-9).abs() < 1e-12);
    }

    #[test]
    fn overdriven_pulse_switches_ap_to_p() {
        let mut m = mtj(MtjState::AntiParallel);
        let i = 1.5 * m.params().i_critical();
        // Positive bias so current flows free → pinned; drive for 10 ns in
        // 0.1 ns steps (the paper's store pulse).
        let v_needed = i * m.resistance(0.0); // approx; direction is what matters
        let mut t = 0.0;
        for _ in 0..100 {
            let dt = 0.1e-9;
            m.accept_step(&[v_needed, 0.0], t, dt);
            t += dt;
        }
        assert_eq!(m.mtj_state(), MtjState::Parallel);
        assert_eq!(m.flips(), 1);
    }

    #[test]
    fn subcritical_pulse_fails_to_switch() {
        let mut m = mtj(MtjState::AntiParallel);
        let v = 0.9 * m.params().i_critical() * m.resistance(0.0);
        for k in 0..1000 {
            m.accept_step(&[v, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::AntiParallel);
        assert_eq!(m.flips(), 0);
    }

    #[test]
    fn wrong_direction_current_does_not_switch() {
        let mut m = mtj(MtjState::AntiParallel);
        // Negative bias: current pinned → free, which drives P → AP, not
        // AP → P.
        let v = -2.0 * m.params().i_critical() * m.resistance(-0.5);
        for k in 0..1000 {
            m.accept_step(&[v, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::AntiParallel);
    }

    #[test]
    fn too_short_pulse_fails_then_progress_decays() {
        let mut m = mtj(MtjState::AntiParallel);
        let ic = m.params().i_critical();
        // Pick the bias that actually delivers 1.5×I_C through the
        // bias-thinned AP resistance (fixed point of v = I·R_AP(v)).
        let mut v = 1.5 * ic * m.resistance(0.0);
        for _ in 0..50 {
            v = 1.5 * ic * m.resistance(v);
        }
        assert!((m.current(v) - 1.5 * ic).abs() < 1e-3 * ic);
        // 2 ns at 1.5×I_C: τ_sw = 5 ns, so no switch.
        for k in 0..20 {
            m.accept_step(&[v, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::AntiParallel);
        // Long idle: progress decays to zero, so a fresh 4 ns pulse still
        // fails (no stale accumulation) ...
        for k in 0..100 {
            m.accept_step(&[0.0, 0.0], 2e-9 + k as f64 * 0.1e-9, 0.1e-9);
        }
        for k in 0..40 {
            m.accept_step(&[v, 0.0], 12e-9 + k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::AntiParallel);
        // ... but continuing the drive past the 5 ns switching time flips.
        for k in 0..15 {
            m.accept_step(&[v, 0.0], 16e-9 + k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::Parallel);
    }

    #[test]
    fn p_to_ap_with_reverse_current() {
        let mut m = mtj(MtjState::Parallel);
        let ic = m.params().i_critical();
        let v = -1.5 * ic * m.params().r_parallel();
        for k in 0..100 {
            m.accept_step(&[v, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(m.mtj_state(), MtjState::AntiParallel);
    }

    #[test]
    fn stamp_satisfies_kcl() {
        let m = mtj(MtjState::Parallel);
        let mut s = DeviceStamp::new(2);
        m.load(&[0.4, 0.1], &mut s);
        assert!((s.current[0] + s.current[1]).abs() < 1e-18);
        let expect = 0.3 / m.params().r_parallel();
        assert!((s.current[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn state_signals() {
        let mut m = mtj(MtjState::AntiParallel);
        let st = NonlinearDevice::state(&m);
        assert_eq!(st[0], ("state".to_owned(), 1.0));
        m.set_state(MtjState::Parallel);
        let st = NonlinearDevice::state(&m);
        assert_eq!(st[0], ("state".to_owned(), 0.0));
        assert_eq!(st[1].0, "progress");
    }

    #[test]
    fn retention_is_astronomically_long_at_zero_bias() {
        let p = MtjParams::table1();
        // Δ = 60 ⇒ τ ≈ 1 ns · e^60 ≈ 10^17 s ≫ 10 years (3.2e8 s).
        assert!(p.retention_time() > 3.2e8 * 1e3);
        // Unbiased retention equals the biased model at i = 0.
        assert_eq!(p.retention_time(), p.retention_time_under_bias(0.0));
    }

    #[test]
    fn disturb_current_degrades_retention() {
        let p = MtjParams::table1();
        let ic = p.i_critical();
        let r0 = p.retention_time_under_bias(0.0);
        let r_half = p.retention_time_under_bias(0.5 * ic);
        let r_90 = p.retention_time_under_bias(0.9 * ic);
        assert!(r_half < r0 / 1e10);
        assert!(r_90 < r_half);
        // At the critical current the barrier is gone.
        assert!((p.retention_time_under_bias(ic) - p.attempt_time).abs() < 1e-12);
    }

    #[test]
    fn write_error_rate_tradeoff() {
        // The paper's design point: 1.5×I_C for 10 ns → τ_sw = 5 ns →
        // WER = e⁻² ≈ 0.135 under this simple tail model; raising the
        // current or lengthening the pulse both cut the error rate.
        let p = MtjParams::table1();
        let ic = p.i_critical();
        let base = p.write_error_rate(1.5 * ic, 10e-9);
        assert!((base - (-2.0_f64).exp()).abs() < 1e-6);
        assert!(p.write_error_rate(2.0 * ic, 10e-9) < base);
        assert!(p.write_error_rate(1.5 * ic, 20e-9) < base);
        // Sub-critical "write" is hopeless within a pulse.
        assert!(p.write_error_rate(0.5 * ic, 10e-9) > 0.999_999);
        // At exactly I_C the barrier vanishes and thermal activation
        // switches within a few attempt times: WER = e^{-pulse/τ0}.
        let at_ic = p.write_error_rate(ic, 10e-9);
        assert!(
            (at_ic - (-10.0_f64).exp()).abs() < 1e-7,
            "WER(I_C) = {at_ic:e}"
        );
    }

    #[test]
    fn low_jc_variant() {
        let p = MtjParams::table1_low_jc();
        assert!((p.i_critical() - 3.14e-6).abs() < 0.05e-6);
    }
}
