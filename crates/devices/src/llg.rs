//! Macrospin Landau–Lifshitz–Gilbert (LLG) switching engine.
//!
//! The threshold CIMS model in [`crate::mtj`] abstracts spin-transfer
//! switching as "progress accumulates at rate `(I/I_C − 1)/τ_D`". This
//! module provides the physics underneath as a cross-check: a single-domain
//! (macrospin) free layer with uniaxial perpendicular anisotropy, damping
//! `α`, and a Slonczewski spin-transfer torque proportional to the drive
//! current, integrated with the adaptive RKF45 solver.
//!
//! The implemented equation (fields in tesla, `p = ẑ` the pinned-layer
//! polarisation, `γ' = γ/(1+α²)`):
//!
//! ```text
//! dm/dt = −γ'·[ m×H_eff + α·m×(m×H_eff) − h_stt·m×(m×ẑ) ]
//! H_eff = H_k·m_z·ẑ,      h_stt = α·H_k·(I/I_C)
//! ```
//!
//! Linearising around `m = +ẑ` shows the anti-damping torque overcomes
//! Gilbert damping exactly when `I > I_C` — the same threshold the Sun
//! model uses — and the switching time scales as `1/(I/I_C − 1)`, which is
//! what [`crate::mtj::MtjParams::switching_time`] encodes. The tests
//! verify both properties numerically.

use nvpg_numeric::{Rkf45, Rkf45Options};

/// Gyromagnetic ratio (rad s⁻¹ T⁻¹).
const GAMMA: f64 = 1.760_859e11;

/// Macrospin free-layer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacrospinParams {
    /// Gilbert damping constant `α`.
    pub alpha: f64,
    /// Effective uniaxial anisotropy field `µ0·H_k` (T), demagnetisation
    /// folded in.
    pub h_k: f64,
    /// Initial tilt angle from the easy axis (rad) — stands in for the
    /// thermal distribution that seeds real switching events.
    pub theta0: f64,
}

impl Default for MacrospinParams {
    fn default() -> Self {
        MacrospinParams {
            alpha: 0.02,
            h_k: 0.2,
            theta0: 0.05,
        }
    }
}

/// Result of a macrospin switching simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchOutcome {
    /// `true` if `m_z` crossed −0.9 within the time budget.
    pub switched: bool,
    /// Time at which the crossing happened (s), or the full budget if it
    /// did not.
    pub time: f64,
}

/// Macrospin LLG simulator.
#[derive(Debug, Clone)]
pub struct Macrospin {
    params: MacrospinParams,
}

impl Macrospin {
    /// Creates a simulator with the given free-layer parameters.
    pub fn new(params: MacrospinParams) -> Self {
        Macrospin { params }
    }

    /// The parameters.
    pub fn params(&self) -> &MacrospinParams {
        &self.params
    }

    fn derivative(&self, m: &[f64], ratio: f64, dm: &mut [f64]) {
        let p = &self.params;
        let gamma_eff = GAMMA / (1.0 + p.alpha * p.alpha);
        let (mx, my, mz) = (m[0], m[1], m[2]);
        // H_eff = H_k·m_z·ẑ.
        let hz = p.h_k * mz;
        // m × H = H_z · (my, −mx, 0).
        let (cx, cy, cz) = (my * hz, -mx * hz, 0.0);
        // m × (m × ẑ) = m_z·m − ẑ; for H ∥ ẑ, m × (m × H) = H_z·(m_z·m − ẑ),
        // so both damping and spin torque share the same vector direction.
        let (dx, dy, dz) = (mz * mx, mz * my, mz * mz - 1.0);
        let damp = p.alpha * hz; // coefficient of (m_z·m − ẑ) from damping
        let stt = p.alpha * p.h_k * ratio; // anti-damping from current
        let k = damp - stt;
        dm[0] = -gamma_eff * (cx + k * dx);
        dm[1] = -gamma_eff * (cy + k * dy);
        dm[2] = -gamma_eff * (cz + k * dz);
    }

    /// Simulates switching under a constant drive of `ratio = I/I_C`,
    /// starting tilted `theta0` from `+ẑ`, for at most `t_max` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t_max` is not positive.
    pub fn switch_under_drive(&self, ratio: f64, t_max: f64) -> SwitchOutcome {
        assert!(t_max > 0.0, "time budget must be positive");
        let p = &self.params;
        let mut m = [p.theta0.sin(), 0.0, p.theta0.cos()];
        let mut solver = Rkf45::new(Rkf45Options {
            reltol: 1e-6,
            abstol: 1e-9,
            max_step: t_max / 200.0,
            ..Rkf45Options::default()
        });
        // Integrate in windows, renormalising |m| and checking the exit
        // condition between windows.
        let window = t_max / 400.0;
        let mut t = 0.0;
        while t < t_max {
            let t_end = (t + window).min(t_max);
            solver.integrate(|_t, y, dy| self.derivative(y, ratio, dy), t, t_end, &mut m);
            let norm = (m[0] * m[0] + m[1] * m[1] + m[2] * m[2]).sqrt();
            for c in &mut m {
                *c /= norm;
            }
            t = t_end;
            if m[2] < -0.9 {
                return SwitchOutcome {
                    switched: true,
                    time: t,
                };
            }
        }
        SwitchOutcome {
            switched: false,
            time: t_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercritical_drive_switches() {
        let sim = Macrospin::new(MacrospinParams::default());
        let out = sim.switch_under_drive(1.5, 100e-9);
        assert!(out.switched, "1.5×I_C must switch, got {out:?}");
        assert!(out.time > 0.0 && out.time < 100e-9);
    }

    #[test]
    fn subcritical_drive_does_not_switch() {
        let sim = Macrospin::new(MacrospinParams::default());
        let out = sim.switch_under_drive(0.8, 50e-9);
        assert!(!out.switched, "0.8×I_C must not switch");
    }

    #[test]
    fn switching_time_decreases_with_overdrive() {
        let sim = Macrospin::new(MacrospinParams::default());
        let t15 = sim.switch_under_drive(1.5, 200e-9);
        let t20 = sim.switch_under_drive(2.0, 200e-9);
        let t30 = sim.switch_under_drive(3.0, 200e-9);
        assert!(t15.switched && t20.switched && t30.switched);
        assert!(t15.time > t20.time && t20.time > t30.time);
    }

    #[test]
    fn switching_time_scales_like_sun_model() {
        // τ ∝ 1/(ratio − 1): the ratio τ(1.5)/τ(2.0) should be ≈ 2.
        let sim = Macrospin::new(MacrospinParams::default());
        let t15 = sim.switch_under_drive(1.5, 400e-9).time;
        let t20 = sim.switch_under_drive(2.0, 400e-9).time;
        let r = t15 / t20;
        assert!((1.4..3.0).contains(&r), "τ(1.5)/τ(2.0) = {r}");
    }

    #[test]
    fn nanosecond_scale_with_default_parameters() {
        // Defaults chosen so a 1.5× drive lands in the ns decade the paper
        // designs its 10 ns store pulse around.
        let sim = Macrospin::new(MacrospinParams::default());
        let t = sim.switch_under_drive(1.5, 400e-9).time;
        assert!(
            (0.3e-9..40e-9).contains(&t),
            "switching time {t:e} not ns-scale"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let sim = Macrospin::new(MacrospinParams::default());
        let _ = sim.switch_under_drive(2.0, 0.0);
    }
}
