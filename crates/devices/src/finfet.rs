//! 20 nm FinFET compact model.
//!
//! A smooth single-piece model in the spirit of EKV, calibrated to the
//! headline numbers of the public 20 nm multi-gate predictive technology
//! model (PTM-MG) that the paper simulates with:
//!
//! * EKV interpolation `F(u) = ln²(1 + e^{u/2})` gives a continuous
//!   transition from exponential subthreshold conduction (slope set by the
//!   ideality factor `n`) to square-law strong inversion;
//! * drain-induced barrier lowering (DIBL) shifts the threshold with
//!   drain bias — this is what makes off-state leakage grow with `V_DS`
//!   and is essential for the Fig. 3(a) leakage-vs-`V_CTRL` shape;
//! * velocity saturation divides the long-channel current by
//!   `1 + V_ov/V_c`;
//! * channel-length modulation adds the familiar `1 + λ·V_DS` slope;
//! * width quantisation: drive scales with the **fin count**, each fin
//!   contributing `2·H_fin + W_fin` of effective width (Table I:
//!   15 nm × 28 nm fins → 71 nm per fin).
//!
//! The model is terminal-symmetric (source/drain swap for negative
//! `V_DS`) and PMOS devices are handled by mirroring all voltages.
//! Conductances for the Newton stamp are obtained by central finite
//! differences of the (cheap) current equation; gate/junction charges use
//! a constant-capacitance partition, which is sufficient for the
//! energy-shape fidelity this study needs.

use nvpg_circuit::{DeviceStamp, NodeId, NonlinearDevice};

/// N- or P-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel (electron) device.
    Nmos,
    /// P-channel (hole) device.
    Pmos,
}

/// FinFET model parameters.
///
/// Defaults (via [`FinFetParams::nmos_20nm`] / [`FinFetParams::pmos_20nm`])
/// are calibrated so that a one-fin device at `V_DD = 0.9 V` shows
/// * on-current of order 100 µA,
/// * off-current of a few nA,
/// * subthreshold swing ≈ 75 mV/dec,
///
/// matching the 20 nm PTM-MG HP flavour closely enough for the ratios the
/// paper's figures depend on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FinFetParams {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Number of parallel fins (width quantisation), ≥ 1.
    pub fins: u32,
    /// Channel length (m).
    pub l: f64,
    /// Fin width (m).
    pub fin_width: f64,
    /// Fin height (m).
    pub fin_height: f64,
    /// Zero-bias threshold voltage magnitude (V).
    pub vth0: f64,
    /// Subthreshold ideality factor `n` (SS = n·φt·ln10).
    pub n_factor: f64,
    /// Mobility–oxide-capacitance product `µ·C_ox` (A/V²); the EKV
    /// specific current is `I_s = i_spec · (W_eff/L) · n · φt²`, and
    /// `I_D = I_s·[F(u_f) − F(u_r)]`.
    pub i_spec: f64,
    /// DIBL coefficient (V of Vth shift per V of `V_DS`).
    pub dibl: f64,
    /// Velocity-saturation critical voltage (V).
    pub v_crit: f64,
    /// Channel-length-modulation coefficient (1/V).
    pub lambda: f64,
    /// Gate capacitance per fin (F).
    pub cg_per_fin: f64,
    /// Source/drain junction capacitance per fin (F).
    pub cj_per_fin: f64,
    /// Absolute temperature (K).
    pub temp: f64,
}

impl FinFetParams {
    /// 20 nm NMOS defaults (Table I geometry).
    pub fn nmos_20nm() -> Self {
        FinFetParams {
            polarity: Polarity::Nmos,
            fins: 1,
            l: 20e-9,
            fin_width: 15e-9,
            fin_height: 28e-9,
            vth0: 0.30,
            n_factor: 1.22,
            i_spec: 1.05e-3,
            dibl: 0.09,
            v_crit: 0.35,
            lambda: 0.06,
            cg_per_fin: 55e-18,
            cj_per_fin: 18e-18,
            temp: 300.0,
        }
    }

    /// 20 nm PMOS defaults (lower mobility, matched |Vth|).
    pub fn pmos_20nm() -> Self {
        FinFetParams {
            polarity: Polarity::Pmos,
            i_spec: 0.75e-3,
            ..FinFetParams::nmos_20nm()
        }
    }

    /// Returns a copy with the given fin count.
    ///
    /// # Panics
    ///
    /// Panics if `fins == 0`.
    #[must_use]
    pub fn with_fins(mut self, fins: u32) -> Self {
        assert!(fins >= 1, "a FinFET needs at least one fin");
        self.fins = fins;
        self
    }

    /// Effective electrical width: `fins · (2·H_fin + W_fin)`.
    pub fn w_eff(&self) -> f64 {
        self.fins as f64 * (2.0 * self.fin_height + self.fin_width)
    }

    /// Thermal voltage at the model temperature.
    pub fn phi_t(&self) -> f64 {
        const K_OVER_Q: f64 = 1.380_649e-23 / 1.602_176_634e-19;
        K_OVER_Q * self.temp
    }

    /// Subthreshold swing in volts/decade.
    pub fn subthreshold_swing(&self) -> f64 {
        self.n_factor * self.phi_t() * std::f64::consts::LN_10
    }
}

/// EKV interpolation function `F(u) = ln²(1 + e^{u/2})`, numerically safe
/// for large |u|.
#[inline]
fn ekv_f(u: f64) -> f64 {
    let half = 0.5 * u;
    let ln1p = if half > 40.0 {
        half // ln(1+e^x) → x
    } else if half < -40.0 {
        return 0.0; // e^{2·half} underflows anyway
    } else {
        half.exp().ln_1p()
    };
    ln1p * ln1p
}

/// A FinFET instance: three terminals in the order **drain, gate, source**
/// (body tied to source rail implicitly, as is usual for fully-depleted
/// fins).
#[derive(Debug, Clone)]
pub struct FinFet {
    name: String,
    nodes: [NodeId; 3],
    params: FinFetParams,
}

impl FinFet {
    /// Creates a FinFET named `name` on nodes `(drain, gate, source)`.
    pub fn new(
        name: impl Into<String>,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: FinFetParams,
    ) -> Self {
        FinFet {
            name: name.into(),
            nodes: [drain, gate, source],
            params,
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &FinFetParams {
        &self.params
    }

    /// Drain current `I_D` (flowing drain → channel → source for NMOS with
    /// positive `V_DS`) as a function of absolute terminal voltages.
    ///
    /// This is the raw model equation; the circuit stamp is derived from
    /// it by finite differences.
    pub fn ids(&self, vd: f64, vg: f64, vs: f64) -> f64 {
        let p = &self.params;
        // PMOS: mirror all voltages, compute as NMOS, negate the current.
        let (vd, vg, vs, sign) = match p.polarity {
            Polarity::Nmos => (vd, vg, vs, 1.0),
            Polarity::Pmos => (-vd, -vg, -vs, -1.0),
        };
        // Source/drain symmetry: compute with the lower terminal as source.
        let (vdx, vsx, dir) = if vd >= vs {
            (vd, vs, 1.0)
        } else {
            (vs, vd, -1.0)
        };

        let phi_t = p.phi_t();
        let vds = vdx - vsx;
        let vth = p.vth0 - p.dibl * vds;
        // Pinch-off voltage referenced to the source.
        let vp = (vg - vsx - vth) / p.n_factor;
        let u_f = vp / phi_t;
        let u_r = (vp - vds) / phi_t;
        let (ff, fr) = (ekv_f(u_f), ekv_f(u_r));

        let i_s = p.i_spec * (p.w_eff() / p.l) * p.n_factor * phi_t * phi_t;
        let i_long = i_s * (ff - fr);

        // Velocity saturation: effective overdrive ≈ 2·φt·√F(u_f).
        let v_ov = 2.0 * phi_t * ff.sqrt();
        let i_vsat = i_long / (1.0 + v_ov / p.v_crit);

        // Channel-length modulation.
        let i = i_vsat * (1.0 + p.lambda * vds);
        sign * dir * i
    }
}

impl NonlinearDevice for FinFet {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn load(&self, v: &[f64], stamp: &mut DeviceStamp) {
        let (vd, vg, vs) = (v[0], v[1], v[2]);
        let id = self.ids(vd, vg, vs);
        // Terminal currents into the device: drain +I_D, source −I_D.
        stamp.current[0] = id;
        stamp.current[2] = -id;

        // Central-difference conductances.
        const H: f64 = 1e-6;
        let dd = (self.ids(vd + H, vg, vs) - self.ids(vd - H, vg, vs)) / (2.0 * H);
        let dg = (self.ids(vd, vg + H, vs) - self.ids(vd, vg - H, vs)) / (2.0 * H);
        let ds = (self.ids(vd, vg, vs + H) - self.ids(vd, vg, vs - H)) / (2.0 * H);
        stamp.conductance[0][0] = dd;
        stamp.conductance[0][1] = dg;
        stamp.conductance[0][2] = ds;
        stamp.conductance[2][0] = -dd;
        stamp.conductance[2][1] = -dg;
        stamp.conductance[2][2] = -ds;

        // Constant-capacitance charge partition: gate charge splits to
        // drain and source; junction caps to the local reference (ground).
        let p = &self.params;
        let cg = p.cg_per_fin * p.fins as f64;
        let cj = p.cj_per_fin * p.fins as f64;
        let half = 0.5 * cg;
        stamp.charge[1] = cg * vg - half * vd - half * vs;
        stamp.charge[0] = half * (vd - vg) + cj * vd;
        stamp.charge[2] = half * (vs - vg) + cj * vs;
        stamp.capacitance[1][1] = cg;
        stamp.capacitance[1][0] = -half;
        stamp.capacitance[1][2] = -half;
        stamp.capacitance[0][1] = -half;
        stamp.capacitance[0][0] = half + cj;
        stamp.capacitance[2][1] = -half;
        stamp.capacitance[2][2] = half + cj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfet() -> FinFet {
        FinFet::new(
            "m1",
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            FinFetParams::nmos_20nm(),
        )
    }

    fn pfet() -> FinFet {
        FinFet::new(
            "m2",
            NodeId::GROUND,
            NodeId::GROUND,
            NodeId::GROUND,
            FinFetParams::pmos_20nm(),
        )
    }

    #[test]
    fn on_and_off_currents_in_calibrated_decades() {
        let m = nfet();
        let i_on = m.ids(0.9, 0.9, 0.0);
        let i_off = m.ids(0.9, 0.0, 0.0);
        assert!(
            (20e-6..400e-6).contains(&i_on),
            "I_on = {i_on:e} out of expected decade"
        );
        assert!(
            (0.5e-9..30e-9).contains(&i_off),
            "I_off = {i_off:e} out of expected decade"
        );
        assert!(i_on / i_off > 1e3, "on/off ratio too small");
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = nfet();
        let p = m.params();
        let i1 = m.ids(0.9, 0.05, 0.0);
        let i2 = m.ids(0.9, 0.05 + p.subthreshold_swing(), 0.0);
        // One swing should be one decade, within 15 %.
        let decades = (i2 / i1).log10();
        assert!((decades - 1.0).abs() < 0.15, "decades = {decades}");
    }

    #[test]
    fn dibl_raises_leakage_with_drain_bias() {
        let m = nfet();
        let lo = m.ids(0.1, 0.0, 0.0);
        let hi = m.ids(0.9, 0.0, 0.0);
        assert!(hi > 2.0 * lo, "DIBL effect absent: {lo:e} vs {hi:e}");
    }

    #[test]
    fn negative_gate_bias_cuts_leakage_exponentially() {
        // This is the V_CTRL leakage-reduction mechanism of Fig. 3(a).
        let m = nfet();
        let at0 = m.ids(0.9, 0.0, 0.0);
        let at70mv = m.ids(0.9, 0.0, 0.07); // source raised 70 mV
        assert!(
            at0 / at70mv > 3.0,
            "source bias should cut leakage: {at0:e} vs {at70mv:e}"
        );
    }

    #[test]
    fn source_drain_symmetry() {
        let m = nfet();
        let fwd = m.ids(0.5, 0.9, 0.1);
        let rev = m.ids(0.1, 0.9, 0.5);
        assert!(
            (fwd + rev).abs() < 1e-12 * fwd.abs().max(1.0),
            "{fwd} vs {rev}"
        );
        assert_eq!(m.ids(0.3, 0.9, 0.3), 0.0);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = nfet();
        let p = pfet();
        // PMOS conducting: source at 0.9, gate at 0, drain at 0.
        let ip = p.ids(0.0, 0.0, 0.9);
        assert!(ip < 0.0, "PMOS drain current should be negative: {ip:e}");
        // Same magnitude class as the NMOS scaled by mobility ratio.
        let in_ = n.ids(0.9, 0.9, 0.0);
        let ratio = -ip / in_;
        let expect = FinFetParams::pmos_20nm().i_spec / FinFetParams::nmos_20nm().i_spec;
        assert!((ratio - expect).abs() < 0.3 * expect, "ratio = {ratio}");
    }

    #[test]
    fn fin_count_scales_current() {
        let one = nfet();
        let mut params = FinFetParams::nmos_20nm().with_fins(7);
        params.temp = 300.0;
        let seven = FinFet::new("m7", NodeId::GROUND, NodeId::GROUND, NodeId::GROUND, params);
        let r = seven.ids(0.9, 0.9, 0.0) / one.ids(0.9, 0.9, 0.0);
        assert!((r - 7.0).abs() < 1e-9, "fin scaling ratio = {r}");
        assert_eq!(params.w_eff(), 7.0 * 71e-9);
    }

    #[test]
    #[should_panic(expected = "at least one fin")]
    fn zero_fins_rejected() {
        let _ = FinFetParams::nmos_20nm().with_fins(0);
    }

    #[test]
    fn saturation_region_flattens() {
        let m = nfet();
        let i1 = m.ids(0.5, 0.9, 0.0);
        let i2 = m.ids(0.9, 0.9, 0.0);
        // Saturated: less than 25 % growth over 0.4 V of drain bias.
        assert!(i2 > i1 && i2 < 1.25 * i1, "{i1:e} -> {i2:e}");
        // Linear region: strong sensitivity at low Vds.
        let lin1 = m.ids(0.02, 0.9, 0.0);
        let lin2 = m.ids(0.04, 0.9, 0.0);
        assert!(lin2 > 1.7 * lin1);
    }

    #[test]
    fn stamp_is_consistent_with_ids() {
        let m = nfet();
        let v = [0.7, 0.9, 0.0];
        let mut stamp = DeviceStamp::new(3);
        m.load(&v, &mut stamp);
        let id = m.ids(v[0], v[1], v[2]);
        assert_eq!(stamp.current[0], id);
        assert_eq!(stamp.current[2], -id);
        assert_eq!(stamp.current[1], 0.0); // no gate leakage
                                           // KCL: currents sum to zero.
        let sum: f64 = stamp.current.iter().sum();
        assert!(sum.abs() < 1e-18);
        // Conductance rows for drain/source are opposite.
        for u in 0..3 {
            assert!((stamp.conductance[0][u] + stamp.conductance[2][u]).abs() < 1e-15);
        }
        // gm and gds positive in saturation.
        assert!(stamp.conductance[0][1] > 0.0, "gm");
        assert!(stamp.conductance[0][0] > 0.0, "gds");
    }

    #[test]
    fn charge_partition_is_charge_neutral_in_caps() {
        let m = nfet();
        let mut stamp = DeviceStamp::new(3);
        m.load(&[0.9, 0.9, 0.0], &mut stamp);
        // The gate charge capacitance row sums to zero (pure inter-terminal
        // capacitance); drain/source rows include grounded junction caps.
        let gate_row_sum: f64 = stamp.capacitance[1].iter().sum();
        assert!(gate_row_sum.abs() < 1e-24);
    }

    #[test]
    fn thermal_parameters() {
        let p = FinFetParams::nmos_20nm();
        assert!((p.phi_t() - 0.02585).abs() < 1e-4);
        let ss = p.subthreshold_swing();
        assert!((0.06..0.09).contains(&ss), "SS = {ss}");
    }
}
