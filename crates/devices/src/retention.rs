//! Pluggable nonvolatile retention elements.
//!
//! The paper's NV-SRAM hangs one two-terminal retention element per
//! storage node between the cell-side PS-FinFET and the shared CTRL
//! line. PR 10 generalises that seam: [`RetentionDevice`] abstracts the
//! element so the cell, domain and macro builders — and the BET
//! comparison on top of them — are written once and parameterised by
//! technology:
//!
//! * [`MtjRetention`] — the paper's spin-transfer-torque MTJ
//!   ([`crate::mtj`]), attached **exactly** as the pre-trait code path
//!   did (same device, same construction), so MTJ results through the
//!   trait are bit-identical to the historical ones;
//! * [`FefetRetention`] — a ferroelectric-FET retention cell following
//!   the FeFET-based 6T NV-SRAM demonstration (arXiv:2603.26439):
//!   polarisation switches when the terminal bias exceeds the coercive
//!   voltage, so the store is voltage-driven and draws orders of
//!   magnitude less current than CIMS;
//! * [`NandSpinRetention`] — a NAND-SPIN element (arXiv:1912.06986):
//!   electrically an MTJ whose effective critical current and switching
//!   time are reduced by the spin–orbit-torque assist, enabling a much
//!   shorter (hence cheaper) store pulse.
//!
//! All three share one terminal convention (inherited from the MTJ
//! macromodel): terminals are **(free, pinned)**, the pinned side faces
//! the cell, and every implementation reports a `"state"` device signal
//! where `> 0.5` means the high-resistance state — so state decode is a
//! single shared function, [`decode_state`].

use nvpg_circuit::{Circuit, CircuitError, DeviceStamp, NodeId, NonlinearDevice};

use crate::mtj::{Mtj, MtjParams, MtjState};

/// Technology-neutral retention state: every supported element is a
/// two-state resistive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetentionState {
    /// Low-resistance state (the MTJ's parallel state).
    LowR,
    /// High-resistance state (the MTJ's antiparallel state).
    HighR,
}

impl RetentionState {
    /// The opposite state.
    pub fn flipped(self) -> RetentionState {
        match self {
            RetentionState::LowR => RetentionState::HighR,
            RetentionState::HighR => RetentionState::LowR,
        }
    }
}

impl From<MtjState> for RetentionState {
    fn from(s: MtjState) -> Self {
        match s {
            MtjState::Parallel => RetentionState::LowR,
            MtjState::AntiParallel => RetentionState::HighR,
        }
    }
}

impl From<RetentionState> for MtjState {
    fn from(s: RetentionState) -> Self {
        match s {
            RetentionState::LowR => MtjState::Parallel,
            RetentionState::HighR => MtjState::AntiParallel,
        }
    }
}

/// Decodes the shared `"state"` device signal (`> 0.5` = high
/// resistance) emitted by every retention implementation.
pub fn decode_state(signals: &[(String, f64)]) -> Option<RetentionState> {
    let v = signals.iter().find(|(label, _)| label == "state")?.1;
    Some(if v > 0.5 {
        RetentionState::HighR
    } else {
        RetentionState::LowR
    })
}

/// A pluggable two-terminal nonvolatile retention element.
///
/// Implementations attach their device between a *free* terminal (the
/// CTRL line) and a *pinned* terminal (the cell side), mirroring the MTJ
/// orientation of the paper's Fig. 2, and share the drive convention the
/// cell sequencing relies on:
///
/// * cell → CTRL drive (H-store) switches **low-R → high-R**;
/// * CTRL → cell drive (L-store) switches **high-R → low-R**.
pub trait RetentionDevice {
    /// Stable lowercase technology label (`"mtj"`, `"fefet"`,
    /// `"nand_spin"`) — doubles as the request-schema value in the
    /// serving layer.
    fn technology(&self) -> &'static str;

    /// Builds the element named `name` between `free` (CTRL side) and
    /// `pinned` (cell side), starting in `state`.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors (duplicate names).
    fn attach(
        &self,
        ckt: &mut Circuit,
        name: &str,
        free: NodeId,
        pinned: NodeId,
        state: RetentionState,
    ) -> Result<(), CircuitError>;

    /// Low-state (parallel-analog) resistance at zero bias (Ω).
    fn low_resistance(&self) -> f64;

    /// High-state (antiparallel-analog) resistance at zero bias (Ω).
    fn high_resistance(&self) -> f64;

    /// Zero-disturb retention time (s).
    fn retention_time(&self) -> f64;

    /// Write-error rate for a drive of magnitude `drive` applied for
    /// `pulse` seconds. The drive unit is the technology's natural
    /// switching variable: amperes for current-switched elements (MTJ,
    /// NAND-SPIN), volts for the voltage-switched FeFET.
    fn write_error_rate(&self, drive: f64, pulse: f64) -> f64;

    /// Retention time under a sustained disturb of magnitude `drive`
    /// (same unit as [`write_error_rate`](Self::write_error_rate)) — the
    /// quantity the macro-level read/write-disturb checks compare
    /// against access times.
    fn disturb_retention_time(&self, drive: f64) -> f64;
}

// ---------------------------------------------------------------------
// MTJ (the paper's baseline technology)
// ---------------------------------------------------------------------

/// The paper's STT-MTJ as a [`RetentionDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtjRetention {
    /// Macromodel parameters (Table I by default).
    pub params: MtjParams,
}

impl MtjRetention {
    /// Wraps a parameter set.
    pub fn new(params: MtjParams) -> Self {
        MtjRetention { params }
    }
}

impl RetentionDevice for MtjRetention {
    fn technology(&self) -> &'static str {
        "mtj"
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        name: &str,
        free: NodeId,
        pinned: NodeId,
        state: RetentionState,
    ) -> Result<(), CircuitError> {
        // Exactly the pre-trait construction: same device, same argument
        // order — MTJ results through the trait stay bit-identical.
        ckt.device(Box::new(Mtj::new(
            name,
            free,
            pinned,
            self.params,
            state.into(),
        )))
    }

    fn low_resistance(&self) -> f64 {
        self.params.r_parallel()
    }

    fn high_resistance(&self) -> f64 {
        self.params.r_antiparallel()
    }

    fn retention_time(&self) -> f64 {
        self.params.retention_time()
    }

    fn write_error_rate(&self, drive: f64, pulse: f64) -> f64 {
        self.params.write_error_rate(drive, pulse)
    }

    fn disturb_retention_time(&self, drive: f64) -> f64 {
        self.params.retention_time_under_bias(drive)
    }
}

// ---------------------------------------------------------------------
// FeFET retention cell (arXiv:2603.26439)
// ---------------------------------------------------------------------

/// FeFET retention-cell parameters.
///
/// The element is reduced to its terminal behaviour: a two-state
/// resistor whose ferroelectric polarisation flips when the terminal
/// bias exceeds the coercive voltage for long enough (nucleation-limited
/// switching, linearised to the same progress-integrator form the MTJ
/// uses). The resistances are chosen so the PS-FinFET source-follower
/// still develops well over the coercive voltage across the element
/// during the paper's store waveforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FefetParams {
    /// Low-resistance (program) state resistance (Ω).
    pub r_low: f64,
    /// High-resistance (erase) state resistance (Ω).
    pub r_high: f64,
    /// Coercive voltage: below this magnitude no polarisation switching
    /// occurs (V).
    pub v_coercive: f64,
    /// Characteristic switching time scale: a bias of `2·V_c` switches
    /// in `tau_switch` (s).
    pub tau_switch: f64,
    /// Zero-disturb polarisation retention time (s).
    pub retention: f64,
}

impl FefetParams {
    /// Defaults following the FeFET 6T NV-SRAM demonstration
    /// (arXiv:2603.26439): ~100× resistance window, 10-year-class
    /// retention, and a coercive voltage low enough that the element —
    /// not the series PS-FinFET, which current-limits the low-R path to
    /// a ~0.25 V IR drop — controls switching under the paper's 0.65 V
    /// SR / 0.5 V CTRL store waveforms, within the 10 ns store pulse.
    pub fn demo() -> Self {
        FefetParams {
            r_low: 100e3,
            r_high: 10e6,
            v_coercive: 0.15,
            tau_switch: 2e-9,
            retention: 3.2e8, // ≈ 10 years
        }
    }

    /// Switching time at bias `v`: `τ_s / (|v|/V_c − 1)` above the
    /// coercive voltage, infinite below it.
    pub fn switching_time(&self, v: f64) -> f64 {
        let over = v.abs() / self.v_coercive - 1.0;
        if over <= 0.0 {
            f64::INFINITY
        } else {
            self.tau_switch / over
        }
    }
}

/// A ferroelectric-FET retention cell as a circuit device.
#[derive(Debug, Clone)]
pub struct Fefet {
    name: String,
    nodes: [NodeId; 2],
    params: FefetParams,
    state: RetentionState,
    progress: f64,
    flips: u32,
}

impl Fefet {
    /// Creates a FeFET retention element named `name` between `free`
    /// (CTRL side) and `pinned` (cell side), starting in `state`.
    pub fn new(
        name: impl Into<String>,
        free: NodeId,
        pinned: NodeId,
        params: FefetParams,
        state: RetentionState,
    ) -> Self {
        Fefet {
            name: name.into(),
            nodes: [free, pinned],
            params,
            state,
            progress: 0.0,
            flips: 0,
        }
    }

    /// Current polarisation state.
    pub fn retention_state(&self) -> RetentionState {
        self.state
    }

    /// Completed polarisation reversals.
    pub fn flips(&self) -> u32 {
        self.flips
    }

    fn resistance(&self) -> f64 {
        match self.state {
            RetentionState::LowR => self.params.r_low,
            RetentionState::HighR => self.params.r_high,
        }
    }

    /// `true` if bias `v` = v(free) − v(pinned) drives a switch out of
    /// the current state. Matches the MTJ drive convention: cell → CTRL
    /// drive (negative bias) writes low-R → high-R.
    fn drives_switch(&self, v: f64) -> bool {
        match self.state {
            RetentionState::LowR => v < 0.0,
            RetentionState::HighR => v > 0.0,
        }
    }
}

impl NonlinearDevice for Fefet {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn load(&self, v: &[f64], stamp: &mut DeviceStamp) {
        let g = 1.0 / self.resistance();
        let i = (v[0] - v[1]) * g;
        stamp.current[0] = i;
        stamp.current[1] = -i;
        stamp.conductance[0][0] = g;
        stamp.conductance[0][1] = -g;
        stamp.conductance[1][0] = -g;
        stamp.conductance[1][1] = g;
    }

    fn accept_step(&mut self, v: &[f64], _t: f64, dt: f64) {
        let bias = v[0] - v[1];
        if self.drives_switch(bias) && bias.abs() > self.params.v_coercive {
            let rate = (bias.abs() / self.params.v_coercive - 1.0) / self.params.tau_switch;
            self.progress += rate * dt;
            if self.progress >= 1.0 {
                self.state = self.state.flipped();
                self.progress = 0.0;
                self.flips += 1;
            }
        } else {
            self.progress = (self.progress - dt / self.params.tau_switch).max(0.0);
        }
    }

    fn state(&self) -> Vec<(String, f64)> {
        vec![
            (
                "state".to_owned(),
                match self.state {
                    RetentionState::LowR => 0.0,
                    RetentionState::HighR => 1.0,
                },
            ),
            ("progress".to_owned(), self.progress),
        ]
    }

    fn bypass_tolerance_scale(&self) -> f64 {
        // A polarisation reversal in flight changes the resistance by
        // ~100×; force full re-evaluation until the integrator settles.
        if self.progress > 0.0 {
            0.0
        } else {
            1.0
        }
    }
}

/// The FeFET retention cell as a [`RetentionDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FefetRetention {
    /// Element parameters.
    pub params: FefetParams,
}

impl FefetRetention {
    /// Wraps a parameter set.
    pub fn new(params: FefetParams) -> Self {
        FefetRetention { params }
    }
}

impl RetentionDevice for FefetRetention {
    fn technology(&self) -> &'static str {
        "fefet"
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        name: &str,
        free: NodeId,
        pinned: NodeId,
        state: RetentionState,
    ) -> Result<(), CircuitError> {
        ckt.device(Box::new(Fefet::new(name, free, pinned, self.params, state)))
    }

    fn low_resistance(&self) -> f64 {
        self.params.r_low
    }

    fn high_resistance(&self) -> f64 {
        self.params.r_high
    }

    fn retention_time(&self) -> f64 {
        self.params.retention
    }

    fn write_error_rate(&self, drive: f64, pulse: f64) -> f64 {
        let tau = self.params.switching_time(drive);
        if tau.is_infinite() {
            1.0
        } else {
            (-pulse / tau).exp()
        }
    }

    fn disturb_retention_time(&self, drive: f64) -> f64 {
        // Sub-coercive disturb barely erodes the polarisation barrier;
        // model the same linear barrier reduction the MTJ uses, with the
        // coercive voltage as the collapse point.
        let reduction = (1.0 - drive.abs() / self.params.v_coercive).max(0.0);
        // retention = attempt · exp(Δ_eff): recover an effective Δ from
        // the zero-bias retention against a 1 ns attempt time.
        let attempt = 1e-9;
        let delta = (self.params.retention / attempt).ln();
        attempt * (delta * reduction).exp()
    }
}

// ---------------------------------------------------------------------
// NAND-SPIN element (arXiv:1912.06986)
// ---------------------------------------------------------------------

/// NAND-SPIN element parameters: an MTJ whose write path is assisted by
/// spin–orbit torque, lowering the effective critical current and the
/// switching time constant by `assist`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandSpinParams {
    /// The underlying junction (read path is a plain MTJ).
    pub mtj: MtjParams,
    /// SOT write-assist factor (> 1): the effective CIMS critical
    /// current density and τ_D are both divided by this.
    pub assist: f64,
}

impl NandSpinParams {
    /// Defaults following the NAND-SPIN nonvolatile-flip-flop work
    /// (arXiv:1912.06986): Table I junction with a 4× write assist.
    pub fn demo() -> Self {
        NandSpinParams {
            mtj: MtjParams::table1(),
            assist: 4.0,
        }
    }

    /// The effective junction the write path sees: `J_C` and `τ_D`
    /// scaled down by the assist factor.
    pub fn effective(&self) -> MtjParams {
        MtjParams {
            jc: self.mtj.jc / self.assist,
            tau_d: self.mtj.tau_d / self.assist,
            ..self.mtj
        }
    }
}

/// The NAND-SPIN element as a [`RetentionDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NandSpinRetention {
    /// Element parameters.
    pub params: NandSpinParams,
}

impl NandSpinRetention {
    /// Wraps a parameter set.
    pub fn new(params: NandSpinParams) -> Self {
        NandSpinRetention { params }
    }
}

impl RetentionDevice for NandSpinRetention {
    fn technology(&self) -> &'static str {
        "nand_spin"
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        name: &str,
        free: NodeId,
        pinned: NodeId,
        state: RetentionState,
    ) -> Result<(), CircuitError> {
        // Electrically an MTJ with the SOT-assisted effective parameters.
        ckt.device(Box::new(Mtj::new(
            name,
            free,
            pinned,
            self.params.effective(),
            state.into(),
        )))
    }

    fn low_resistance(&self) -> f64 {
        self.params.effective().r_parallel()
    }

    fn high_resistance(&self) -> f64 {
        self.params.effective().r_antiparallel()
    }

    fn retention_time(&self) -> f64 {
        self.params.effective().retention_time()
    }

    fn write_error_rate(&self, drive: f64, pulse: f64) -> f64 {
        self.params.effective().write_error_rate(drive, pulse)
    }

    fn disturb_retention_time(&self, drive: f64) -> f64 {
        self.params.effective().retention_time_under_bias(drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpg_circuit::dc::operating_point;

    #[test]
    fn state_conversions_round_trip() {
        for s in [RetentionState::LowR, RetentionState::HighR] {
            assert_eq!(RetentionState::from(MtjState::from(s)), s);
            assert_eq!(s.flipped().flipped(), s);
        }
        assert_eq!(
            RetentionState::from(MtjState::Parallel),
            RetentionState::LowR
        );
        assert_eq!(
            MtjState::from(RetentionState::HighR),
            MtjState::AntiParallel
        );
    }

    #[test]
    fn decode_state_reads_the_shared_signal() {
        let sig = vec![("state".to_owned(), 1.0), ("progress".to_owned(), 0.0)];
        assert_eq!(decode_state(&sig), Some(RetentionState::HighR));
        let sig = vec![("state".to_owned(), 0.0)];
        assert_eq!(decode_state(&sig), Some(RetentionState::LowR));
        assert_eq!(decode_state(&[]), None);
    }

    #[test]
    fn mtj_retention_attaches_the_exact_legacy_device() {
        // The bit-identity contract: attaching through the trait and
        // constructing the Mtj directly must produce identical circuits.
        let p = MtjParams::table1();
        let build = |via_trait: bool| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.vsource("v1", a, Circuit::GROUND, 0.3).unwrap();
            ckt.resistor("r1", b, Circuit::GROUND, 1e3).unwrap();
            if via_trait {
                MtjRetention::new(p)
                    .attach(&mut ckt, "x1", a, b, RetentionState::HighR)
                    .unwrap();
            } else {
                ckt.device(Box::new(Mtj::new("x1", a, b, p, MtjState::AntiParallel)))
                    .unwrap();
            }
            let op = operating_point(&mut ckt, &Default::default()).unwrap();
            op.as_slice().to_vec()
        };
        let via_trait = build(true);
        let direct = build(false);
        for (x, y) in via_trait.iter().zip(&direct) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fefet_switches_on_over_coercive_bias_only() {
        let p = FefetParams::demo();
        let mut f = Fefet::new(
            "f1",
            NodeId::GROUND,
            NodeId::GROUND,
            p,
            RetentionState::LowR,
        );
        // Sub-coercive bias: no switch, ever.
        for k in 0..1000 {
            f.accept_step(&[-0.10, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(f.retention_state(), RetentionState::LowR);
        // Wrong-direction bias: no switch.
        for k in 0..1000 {
            f.accept_step(&[0.4, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(f.retention_state(), RetentionState::LowR);
        // −0.4 V (cell → CTRL direction) for 10 ns: switches low → high.
        for k in 0..100 {
            f.accept_step(&[-0.4, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(f.retention_state(), RetentionState::HighR);
        assert_eq!(f.flips(), 1);
        // And back with the opposite polarity.
        for k in 0..100 {
            f.accept_step(&[0.4, 0.0], k as f64 * 0.1e-9, 0.1e-9);
        }
        assert_eq!(f.retention_state(), RetentionState::LowR);
    }

    #[test]
    fn fefet_resistances_and_stamp() {
        let p = FefetParams::demo();
        let f = Fefet::new(
            "f1",
            NodeId::GROUND,
            NodeId::GROUND,
            p,
            RetentionState::HighR,
        );
        let mut s = DeviceStamp::new(2);
        f.load(&[0.4, 0.1], &mut s);
        assert!((s.current[0] - 0.3 / p.r_high).abs() < 1e-15);
        assert!((s.current[0] + s.current[1]).abs() < 1e-18);
        let ratio = p.r_high / p.r_low;
        assert!(ratio > 50.0, "FeFET window should be large: {ratio}");
    }

    #[test]
    fn fefet_switching_time_law() {
        let p = FefetParams::demo();
        assert_eq!(p.switching_time(0.1), f64::INFINITY);
        assert_eq!(p.switching_time(p.v_coercive), f64::INFINITY);
        // 2×V_c → τ_switch.
        assert!((p.switching_time(2.0 * p.v_coercive) - p.tau_switch).abs() < 1e-15);
    }

    #[test]
    fn technology_labels_are_stable() {
        assert_eq!(MtjRetention::new(MtjParams::table1()).technology(), "mtj");
        assert_eq!(
            FefetRetention::new(FefetParams::demo()).technology(),
            "fefet"
        );
        assert_eq!(
            NandSpinRetention::new(NandSpinParams::demo()).technology(),
            "nand_spin"
        );
    }

    #[test]
    fn nand_spin_assist_lowers_write_cost() {
        let ns = NandSpinParams::demo();
        let eff = ns.effective();
        let base = ns.mtj;
        assert!((eff.i_critical() - base.i_critical() / 4.0).abs() < 1e-12);
        assert!(eff.tau_d < base.tau_d);
        // The same drive current writes with a far lower error rate.
        let i = 1.5 * base.i_critical();
        let dev = NandSpinRetention::new(ns);
        let mtj = MtjRetention::new(base);
        assert!(dev.write_error_rate(i, 10e-9) < mtj.write_error_rate(i, 10e-9));
        // Read-path resistances are unchanged (same RA product).
        assert_eq!(dev.low_resistance(), mtj.low_resistance());
    }

    #[test]
    fn retention_and_disturb_models_are_sane() {
        let devices: Vec<Box<dyn RetentionDevice>> = vec![
            Box::new(MtjRetention::new(MtjParams::table1())),
            Box::new(FefetRetention::new(FefetParams::demo())),
            Box::new(NandSpinRetention::new(NandSpinParams::demo())),
        ];
        for dev in &devices {
            // Ten-year-class retention at zero disturb.
            assert!(
                dev.retention_time() >= 3.2e8,
                "{}: retention {:e}",
                dev.technology(),
                dev.retention_time()
            );
            let undisturbed = dev.disturb_retention_time(0.0);
            let rel = (undisturbed - dev.retention_time()).abs() / dev.retention_time();
            assert!(
                rel < 1e-9,
                "{}: zero-disturb mismatch {rel:e}",
                dev.technology()
            );
            assert!(dev.high_resistance() > dev.low_resistance());
        }
        // A half-threshold disturb erodes retention by many decades.
        let mtj = MtjRetention::new(MtjParams::table1());
        let half = 0.5 * MtjParams::table1().i_critical();
        assert!(mtj.disturb_retention_time(half) < mtj.retention_time() / 1e10);
        let fefet = FefetRetention::new(FefetParams::demo());
        assert!(
            fefet.disturb_retention_time(0.11) < fefet.retention_time() / 1e3,
            "sub-coercive disturb should erode FeFET retention"
        );
    }
}
