//! Parameter-sweep helpers.
//!
//! The paper's figures are families of sweeps: `V_CTRL` from 0 to 0.2 V
//! (Fig. 3(a)), `n_RW` on a log axis from 1 to 10⁴ (Fig. 7), `t_SD`
//! logarithmically from 1 µs to 10 ms (Fig. 8). [`linspace`], [`logspace`]
//! and the [`Sweep`] description type feed those axes.

/// `n` evenly spaced points from `start` to `end` inclusive.
///
/// Returns a single-element vector for `n == 1` (the start point) and an
/// empty vector for `n == 0`.
///
/// # Examples
///
/// ```
/// use nvpg_units::linspace;
/// assert_eq!(linspace(0.0, 1.0, 5), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// ```
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (end - start) / (n - 1) as f64;
            (0..n)
                .map(|i| {
                    if i == n - 1 {
                        end // avoid accumulated rounding on the endpoint
                    } else {
                        start + step * i as f64
                    }
                })
                .collect()
        }
    }
}

/// `n` logarithmically spaced points from `start` to `end` inclusive.
///
/// # Panics
///
/// Panics if `start` or `end` is not strictly positive.
///
/// # Examples
///
/// ```
/// use nvpg_units::logspace;
/// let pts = logspace(1e-6, 1e-2, 5);
/// assert!((pts[1] - 1e-5).abs() < 1e-12);
/// assert_eq!(pts.len(), 5);
/// ```
pub fn logspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    assert!(
        start > 0.0 && end > 0.0,
        "logspace endpoints must be positive, got {start} and {end}"
    );
    linspace(start.ln(), end.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// A declarative sweep axis: either linear or logarithmic.
///
/// Used by experiment definitions so that the same sweep can be reported in
/// figure metadata and expanded into sample points.
///
/// # Examples
///
/// ```
/// use nvpg_units::Sweep;
/// let s = Sweep::linear(0.0, 0.2, 21);
/// assert_eq!(s.points().len(), 21);
/// let s = Sweep::log(1e-6, 1e-2, 9);
/// assert_eq!(s.points().len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Sweep {
    /// Evenly spaced points.
    Linear {
        /// First point.
        start: f64,
        /// Last point (inclusive).
        end: f64,
        /// Number of points.
        n: usize,
    },
    /// Logarithmically spaced points (endpoints must be positive).
    Log {
        /// First point.
        start: f64,
        /// Last point (inclusive).
        end: f64,
        /// Number of points.
        n: usize,
    },
    /// An explicit list of points.
    Explicit(Vec<f64>),
}

impl Sweep {
    /// Creates a linear sweep.
    pub fn linear(start: f64, end: f64, n: usize) -> Self {
        Sweep::Linear { start, end, n }
    }

    /// Creates a logarithmic sweep.
    pub fn log(start: f64, end: f64, n: usize) -> Self {
        Sweep::Log { start, end, n }
    }

    /// Expands the sweep into its sample points.
    ///
    /// # Panics
    ///
    /// Panics if a logarithmic sweep has non-positive endpoints.
    pub fn points(&self) -> Vec<f64> {
        match self {
            Sweep::Linear { start, end, n } => linspace(*start, *end, *n),
            Sweep::Log { start, end, n } => logspace(*start, *end, *n),
            Sweep::Explicit(points) => points.clone(),
        }
    }

    /// Number of points the sweep expands to.
    pub fn len(&self) -> usize {
        match self {
            Sweep::Linear { n, .. } | Sweep::Log { n, .. } => *n,
            Sweep::Explicit(points) => points.len(),
        }
    }

    /// `true` if the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FromIterator<f64> for Sweep {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Sweep::Explicit(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_exact() {
        let pts = linspace(0.0, 0.2, 21);
        assert_eq!(pts.len(), 21);
        assert_eq!(pts[0], 0.0);
        assert_eq!(pts[20], 0.2);
        assert!((pts[10] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn linspace_degenerate() {
        assert!(linspace(1.0, 2.0, 0).is_empty());
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
        assert_eq!(linspace(1.0, 2.0, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn linspace_descending() {
        let pts = linspace(1.0, 0.0, 3);
        assert_eq!(pts, vec![1.0, 0.5, 0.0]);
    }

    #[test]
    fn logspace_decades() {
        let pts = logspace(1.0, 1000.0, 4);
        let expect = [1.0, 10.0, 100.0, 1000.0];
        for (p, e) in pts.iter().zip(expect) {
            assert!((p - e).abs() / e < 1e-12, "{p} vs {e}");
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn logspace_rejects_nonpositive() {
        let _ = logspace(0.0, 1.0, 3);
    }

    #[test]
    fn sweep_expansion() {
        assert_eq!(Sweep::linear(0.0, 1.0, 3).points(), vec![0.0, 0.5, 1.0]);
        assert_eq!(Sweep::log(1.0, 100.0, 3).points()[1].round(), 10.0);
        let s: Sweep = [1.0, 2.0].into_iter().collect();
        assert_eq!(s.points(), vec![1.0, 2.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Sweep::Explicit(vec![]).is_empty());
    }
}
