//! Engineering-notation formatting.
//!
//! All experiment harnesses print quantities the way the paper's figures
//! label them: mantissa in `[1, 1000)` with an SI prefix, e.g. `15.7 µA`,
//! `6.37 kΩ`, `141 fJ`. [`format_eng`] is the convenience entry point;
//! [`EngFormat`] exposes precision control.

use std::fmt;

/// SI prefixes from `1e-18` (atto) to `1e18` (exa), index 6 = no prefix.
const PREFIXES: [&str; 13] = [
    "a", "f", "p", "n", "µ", "m", "", "k", "M", "G", "T", "P", "E",
];

/// A value paired with a unit symbol, displayed in engineering notation.
///
/// # Examples
///
/// ```
/// use nvpg_units::EngFormat;
/// assert_eq!(EngFormat::new(15.7e-6, "A").to_string(), "15.7 µA");
/// assert_eq!(EngFormat::new(0.0, "V").to_string(), "0 V");
/// assert_eq!(EngFormat::new(-2.5e3, "Ω").precision(4).to_string(), "-2.500 kΩ");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngFormat<'a> {
    value: f64,
    symbol: &'a str,
    sig_figs: usize,
}

impl<'a> EngFormat<'a> {
    /// Creates a formatter with the default of three significant figures.
    pub fn new(value: f64, symbol: &'a str) -> Self {
        EngFormat {
            value,
            symbol,
            sig_figs: 3,
        }
    }

    /// Sets the number of significant figures (clamped to `\[1, 17\]`).
    #[must_use]
    pub fn precision(mut self, sig_figs: usize) -> Self {
        self.sig_figs = sig_figs.clamp(1, 17);
        self
    }
}

impl fmt::Display for EngFormat<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.value;
        if v == 0.0 {
            return write!(f, "0 {}", self.symbol);
        }
        if !v.is_finite() {
            return write!(f, "{} {}", v, self.symbol);
        }
        let exp = v.abs().log10().floor() as i32;
        // Engineering exponent: multiple of 3, clamped to the prefix table.
        let mut eng_exp = (exp.div_euclid(3) * 3).clamp(-18, 18);
        let mut mantissa = v / 10f64.powi(eng_exp);
        // log10().floor() can land one off right at exact powers of ten
        // (log10(1000.0) may round just below 3); renormalise until the
        // mantissa sits in [1, 1000) or the prefix table runs out.
        while mantissa.abs() >= 1000.0 && eng_exp < 18 {
            eng_exp += 3;
            mantissa = v / 10f64.powi(eng_exp);
        }
        while mantissa.abs() < 1.0 && eng_exp > -18 {
            eng_exp -= 3;
            mantissa = v / 10f64.powi(eng_exp);
        }
        // Digits after the decimal point so that `sig_figs` total digits
        // show — derived from where the mantissa's leading digit actually
        // is, not from assuming it landed in [1, 1000). Values past the
        // ends of the prefix table keep mantissas like 0.001 (sub-atto)
        // or 1000 (supra-exa), where the assumption printed `0.00 aJ`.
        let lead = (mantissa.abs().log10().floor() as i32) + 1;
        let decimals = (self.sig_figs as i32 - lead).max(0) as usize;
        let prefix = PREFIXES[(eng_exp / 3 + 6) as usize];
        // Rounding can push e.g. 999.6 -> 1000; rewrap into the next prefix.
        // The rollover decision must judge the *rounded text* (what the
        // reader sees), so it re-parses `rounded`. `{:.*}` of a finite
        // f64 always re-parses; should that ever fail, the explicit
        // fallback is to print `rounded` under the current prefix with no
        // rollover — never to substitute the unrounded mantissa, whose
        // rollover verdict could disagree with the printed digits.
        let rounded = format!("{:.*}", decimals, mantissa);
        match rounded.parse::<f64>() {
            Ok(reparsed) if reparsed.abs() >= 1000.0 && eng_exp < 18 => {
                let prefix = PREFIXES[(eng_exp / 3 + 7) as usize];
                let m = reparsed / 1000.0;
                let decimals = self.sig_figs.saturating_sub(1);
                write!(f, "{:.*} {}{}", decimals, m, prefix, self.symbol)
            }
            _ => write!(f, "{} {}{}", rounded, prefix, self.symbol),
        }
    }
}

/// Formats `value` with `symbol` in engineering notation, three significant
/// figures.
///
/// # Examples
///
/// ```
/// use nvpg_units::format_eng;
/// assert_eq!(format_eng(6.366e3, "Ω"), "6.37 kΩ");
/// assert_eq!(format_eng(1.41e-13, "J"), "141 fJ");
/// ```
pub fn format_eng(value: f64, symbol: &str) -> String {
    EngFormat::new(value, symbol).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_sign() {
        assert_eq!(format_eng(0.0, "V"), "0 V");
        assert_eq!(format_eng(-15.7e-6, "A"), "-15.7 µA");
    }

    #[test]
    fn prefix_selection_across_scales() {
        assert_eq!(format_eng(1e-15, "J"), "1.00 fJ");
        assert_eq!(format_eng(2.5e-12, "F"), "2.50 pF");
        assert_eq!(format_eng(3.3e-9, "s"), "3.30 ns");
        assert_eq!(format_eng(0.9, "V"), "900 mV");
        assert_eq!(format_eng(1.0, "V"), "1.00 V");
        assert_eq!(format_eng(6.366e3, "Ω"), "6.37 kΩ");
        assert_eq!(format_eng(300e6, "Hz"), "300 MHz");
        assert_eq!(format_eng(1e9, "Hz"), "1.00 GHz");
    }

    #[test]
    fn rounding_rolls_over_to_next_prefix() {
        assert_eq!(format_eng(999.96e-6, "A"), "1.00 mA");
    }

    #[test]
    fn precision_control() {
        assert_eq!(
            EngFormat::new(15.7e-6, "A").precision(5).to_string(),
            "15.700 µA"
        );
        assert_eq!(
            EngFormat::new(15.7e-6, "A").precision(1).to_string(),
            "16 µA"
        );
    }

    #[test]
    fn extreme_values_clamp_to_prefix_table() {
        // Below atto the mantissa drops under 1; the decimal count must
        // follow it so the significant digits survive (this used to
        // print "0.00 aJ").
        assert_eq!(format_eng(1e-21, "J"), "0.00100 aJ");
        assert_eq!(format_eng(2.5e-20, "J"), "0.0250 aJ");
        assert_eq!(format_eng(-1e-21, "J"), "-0.00100 aJ");
        // Above exa the mantissa exceeds 1000 with no prefix to roll
        // into; all integer digits still print.
        assert_eq!(format_eng(1e21, "J"), "1000 EJ");
        assert_eq!(format_eng(1.234e22, "J"), "12340 EJ");
        assert_eq!(
            EngFormat::new(1e-21, "J").precision(1).to_string(),
            "0.001 aJ"
        );
    }

    #[test]
    fn exact_powers_of_ten_stay_in_range() {
        // log10().floor() can come out one low at exact powers of ten;
        // the mantissa must still land in [1, 1000) with a full-precision
        // rendering, not 1000 ± rounding of the neighbouring prefix.
        assert_eq!(format_eng(1e3, "Ω"), "1.00 kΩ");
        assert_eq!(format_eng(1e-6, "A"), "1.00 µA");
        assert_eq!(format_eng(1e-3, "V"), "1.00 mV");
        assert_eq!(format_eng(1e6, "Hz"), "1.00 MHz");
        assert_eq!(format_eng(1e-9, "F"), "1.00 nF");
        assert_eq!(format_eng(1e-18, "J"), "1.00 aJ");
        assert_eq!(format_eng(1e18, "J"), "1.00 EJ");
        // Just below a power of ten must not round up a prefix early.
        assert_eq!(format_eng(999.4e-9, "s"), "999 ns");
    }

    #[test]
    fn formatted_mantissas_always_reparse() {
        // Service responses embed these strings in JSON; the mantissa
        // must be machine-readable for every scale and precision. Strip
        // the unit, map the prefix back to its power, and require the
        // re-parsed number to match the input to formatting precision.
        let mut checked = 0usize;
        for exp10 in -20..=20 {
            for mant in [1.0, 1.5, 2.5, 9.994, 99.96, 999.6, 999.96] {
                for sig in [1usize, 3, 6] {
                    let v = mant * 10f64.powi(exp10);
                    let text = EngFormat::new(v, "J").precision(sig).to_string();
                    let body = text.strip_suffix('J').unwrap_or_else(|| {
                        panic!("`{text}` lost its unit");
                    });
                    let body = body.trim_end();
                    let (num, scale) = match PREFIXES
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| !p.is_empty())
                        .find(|(_, p)| body.ends_with(*p))
                    {
                        Some((i, p)) => (
                            body.strip_suffix(p).unwrap().trim_end(),
                            10f64.powi((i as i32 - 6) * 3),
                        ),
                        None => (body, 1.0),
                    };
                    let parsed: f64 = num.parse().unwrap_or_else(|_| {
                        panic!("mantissa of `{text}` does not re-parse");
                    });
                    let back = parsed * scale;
                    // One-significant-figure rounding can move the value
                    // by up to half a leading digit.
                    let tol = v.abs() * 0.5 * 10f64.powi(1 - sig as i32) + f64::MIN_POSITIVE;
                    assert!(
                        (back - v).abs() <= tol,
                        "`{text}` re-parses to {back}, expected ~{v}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 800, "grid unexpectedly small: {checked}");
    }

    #[test]
    fn non_finite_values() {
        assert_eq!(format_eng(f64::INFINITY, "V"), "inf V");
        assert_eq!(format_eng(f64::NAN, "V"), "NaN V");
    }
}
