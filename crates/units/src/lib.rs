//! Physical quantities for circuit-level energy analysis.
//!
//! The `nvpg` workspace manipulates voltages, currents, energies and times
//! across six orders of magnitude within a single experiment (nanosecond
//! store pulses against millisecond shutdown intervals; femtojoule dynamic
//! energies against picowatt leakage). Bare `f64`s make it far too easy to
//! add a joule to a watt or pass a time where a voltage is expected, so this
//! crate provides zero-cost newtypes with the dimensional cross-products the
//! rest of the workspace actually needs:
//!
//! ```
//! use nvpg_units::{Volts, Amps, Seconds};
//!
//! let v = Volts(0.9);
//! let i = Amps(15.7e-6);
//! let p = v * i;                 // Watts
//! let e = p * Seconds(10e-9);    // Joules
//! assert!((e.0 - 1.413e-13).abs() < 1e-18);
//! ```
//!
//! In addition it provides [engineering-notation formatting](eng) (`15.7 µA`,
//! `141.3 fJ`) used by every experiment harness, and [`sweep`] helpers for
//! the linear and logarithmic parameter sweeps that drive the paper's
//! figures.

pub mod eng;
pub mod quantity;
pub mod sweep;

pub use eng::{format_eng, EngFormat};
pub use quantity::{
    Amps, AmpsPerSqMeter, Celsius, Coulombs, Farads, Hertz, Joules, Kelvin, Meters, Ohms, Seconds,
    SquareMeters, Volts, Watts,
};
pub use sweep::{linspace, logspace, Sweep};
