//! Newtype quantities and their dimensional arithmetic.
//!
//! Every quantity is a transparent wrapper over `f64` with full ordering,
//! hashing-free equality, and the usual same-unit arithmetic (`+`, `-`,
//! scalar `*`/`/`, unary `-`). Cross-unit products and quotients are defined
//! only where the workspace uses them (Ohm's law, power, energy, charge,
//! capacitor charging), which keeps dimensional mistakes out of the energy
//! accounting.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Defines a transparent `f64` newtype with same-unit arithmetic.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $symbol:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[repr(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Unit symbol used by [`std::fmt::Display`] and engineering
            /// formatting (e.g. `"V"` for [`Volts`]).
            pub const SYMBOL: &'static str = $symbol;

            /// Returns the raw `f64` value in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the element-wise minimum of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns the element-wise maximum of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: $name, hi: $name) -> $name {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", crate::eng::format_eng(self.0, $symbol))
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(v: f64) -> Self {
                $name(v)
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Dimensionless ratio of two same-unit quantities.
        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Length in meters.
    Meters,
    "m"
);
quantity!(
    /// Area in square meters.
    SquareMeters,
    "m²"
);
quantity!(
    /// Current density in amperes per square meter.
    AmpsPerSqMeter,
    "A/m²"
);
quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);
quantity!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C"
);

// ---------------------------------------------------------------------------
// Cross-unit arithmetic (only relations the workspace uses).
// ---------------------------------------------------------------------------

/// Ohm's law: `V = I · R`.
impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `V = R · I`.
impl Mul<Amps> for Ohms {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Amps) -> Volts {
        Volts(self.0 * rhs.0)
    }
}

/// Ohm's law: `I = V / R`.
impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// Ohm's law: `R = V / I`.
impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

/// Instantaneous power: `P = V · I`.
impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Instantaneous power: `P = I · V`.
impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// Energy: `E = P · t`.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Energy: `E = t · P`.
impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Average power: `P = E / t`.
impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// Duration at constant power: `t = E / P`.
impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// Charge: `Q = I · t`.
impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// Charge on a capacitor: `Q = C · V`.
impl Mul<Volts> for Farads {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// Total current: `I = J · A`.
impl Mul<SquareMeters> for AmpsPerSqMeter {
    type Output = Amps;
    #[inline]
    fn mul(self, rhs: SquareMeters) -> Amps {
        Amps(self.0 * rhs.0)
    }
}

/// Current density: `J = I / A`.
impl Div<SquareMeters> for Amps {
    type Output = AmpsPerSqMeter;
    #[inline]
    fn div(self, rhs: SquareMeters) -> AmpsPerSqMeter {
        AmpsPerSqMeter(self.0 / rhs.0)
    }
}

/// Period of a periodic signal: `t = 1 / f`.
impl Hertz {
    /// Returns the period `1/f`.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvpg_units::{Hertz, Seconds};
    /// assert_eq!(Hertz(300e6).period(), Seconds(1.0 / 300e6));
    /// ```
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// Returns the frequency `1/t` of a signal with this period.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvpg_units::{Hertz, Seconds};
    /// assert!((Seconds(1e-9).frequency().0 - 1e9).abs() < 1.0);
    /// ```
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz(1.0 / self.0)
    }
}

impl Celsius {
    /// Converts to absolute temperature.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvpg_units::Celsius;
    /// assert_eq!(Celsius(27.0).to_kelvin().0, 300.15);
    /// ```
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + 273.15)
    }
}

impl Kelvin {
    /// Thermal voltage `kT/q` at this temperature.
    ///
    /// # Examples
    ///
    /// ```
    /// use nvpg_units::Kelvin;
    /// let vt = Kelvin(300.0).thermal_voltage();
    /// assert!((vt.0 - 0.02585).abs() < 1e-4);
    /// ```
    #[inline]
    pub fn thermal_voltage(self) -> Volts {
        const BOLTZMANN: f64 = 1.380_649e-23;
        const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;
        Volts(BOLTZMANN * self.0 / ELEMENTARY_CHARGE)
    }
}

impl Meters {
    /// Area of a disc with this diameter (used for circular MTJ pillars).
    ///
    /// # Examples
    ///
    /// ```
    /// use nvpg_units::Meters;
    /// let a = Meters(20e-9).disc_area();
    /// assert!((a.0 - 3.1416e-16).abs() < 1e-19);
    /// ```
    #[inline]
    pub fn disc_area(self) -> SquareMeters {
        let r = self.0 / 2.0;
        SquareMeters(std::f64::consts::PI * r * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volts(0.9);
        let r = Ohms(6.366e3);
        let i = v / r;
        assert!((i.0 - 0.9 / 6.366e3).abs() < 1e-12);
        let v2 = i * r;
        assert!((v2.0 - v.0).abs() < 1e-12);
        assert!(((v / i).0 - r.0).abs() < 1e-6);
    }

    #[test]
    fn power_and_energy() {
        let p = Volts(0.9) * Amps(1e-6);
        assert!((p.0 - 0.9e-6).abs() < 1e-15);
        let e = p * Seconds(10e-9);
        assert!((e.0 - 9e-15).abs() < 1e-24);
        assert!(((e / Seconds(10e-9)).0 - p.0).abs() < 1e-15);
        assert!(((e / p).0 - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn same_unit_arithmetic() {
        let a = Joules(2.0) + Joules(3.0) - Joules(1.0);
        assert_eq!(a, Joules(4.0));
        let b = -a;
        assert_eq!(b, Joules(-4.0));
        assert_eq!(a * 2.0, Joules(8.0));
        assert_eq!(2.0 * a, Joules(8.0));
        assert_eq!(a / 2.0, Joules(2.0));
        assert_eq!(a / Joules(2.0), 2.0);
    }

    #[test]
    fn assign_ops() {
        let mut v = Volts(1.0);
        v += Volts(0.5);
        v -= Volts(0.2);
        v *= 2.0;
        v /= 4.0;
        assert!((v.0 - 0.65).abs() < 1e-12);
    }

    #[test]
    fn sum_of_energies() {
        let total: Joules = [Joules(1e-15), Joules(2e-15), Joules(3e-15)]
            .into_iter()
            .sum();
        assert!((total.0 - 6e-15).abs() < 1e-24);
    }

    #[test]
    fn min_max_clamp_abs() {
        assert_eq!(Volts(-1.0).abs(), Volts(1.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(3.0).clamp(Volts(0.0), Volts(0.9)), Volts(0.9));
        assert!(Volts(1.0).is_finite());
        assert!(!Volts(f64::NAN).is_finite());
    }

    #[test]
    fn current_density_times_area() {
        // Table I: J_C = 5e6 A/cm² = 5e10 A/m², φ = 20 nm ⇒ I_C ≈ 15.7 µA.
        let jc = AmpsPerSqMeter(5e10);
        let area = Meters(20e-9).disc_area();
        let ic = jc * area;
        assert!((ic.0 - 15.7e-6).abs() < 0.1e-6, "I_C = {}", ic);
        let back = ic / area;
        assert!((back.0 - jc.0).abs() / jc.0 < 1e-12);
    }

    #[test]
    fn thermal_voltage_at_room_temperature() {
        let vt = Celsius(27.0).to_kelvin().thermal_voltage();
        assert!((vt.0 - 0.02585).abs() < 2e-4);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Hertz(300e6);
        let t = f.period();
        assert!((t.frequency().0 - f.0).abs() < 1.0);
    }

    #[test]
    fn charge_relations() {
        let q1 = Amps(1e-6) * Seconds(1e-9);
        assert!((q1.0 - 1e-15).abs() < 1e-24);
        let q2 = Farads(1e-15) * Volts(0.9);
        assert!((q2.0 - 0.9e-15).abs() < 1e-24);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Amps(15.7e-6)), "15.7 µA");
        assert_eq!(format!("{}", Joules(1.41e-13)), "141 fJ");
    }

    #[test]
    fn conversions_from_into_f64() {
        let v: Volts = 0.9.into();
        assert_eq!(v, Volts(0.9));
        let x: f64 = v.into();
        assert_eq!(x, 0.9);
        assert_eq!(v.value(), 0.9);
    }
}
