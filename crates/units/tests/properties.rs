//! Property-based tests for quantities, formatting and sweeps.

use proptest::prelude::*;

use nvpg_units::{format_eng, linspace, logspace, Amps, Joules, Ohms, Seconds, Volts, Watts};

proptest! {
    /// Engineering formatting always carries the unit symbol and a
    /// mantissa in [1, 1000) for positive finite inputs in the prefix
    /// range.
    #[test]
    fn eng_format_mantissa_in_range(exp in -17.0f64..17.0, m in 1.0f64..9.99) {
        let v = m * 10f64.powf(exp);
        let s = format_eng(v, "V");
        prop_assert!(s.ends_with('V'), "{s}");
        let mantissa: f64 = s
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        prop_assert!((1.0..1000.0).contains(&mantissa), "{s}");
    }

    /// Formatting a negated value only flips the sign.
    #[test]
    fn eng_format_sign_symmetry(v in 1e-15f64..1e15) {
        let pos = format_eng(v, "A");
        let neg = format_eng(-v, "A");
        prop_assert_eq!(neg, format!("-{pos}"));
    }

    /// Ohm's law round trip: (V/R)·R recovers V to relative precision.
    #[test]
    fn ohms_law_round_trip(v in 1e-3f64..10.0, r in 1.0f64..1e9) {
        let volts = Volts(v);
        let ohms = Ohms(r);
        let back: Volts = (volts / ohms) * ohms;
        prop_assert!((back.0 - v).abs() <= 1e-12 * v);
    }

    /// Power/energy relations are mutually consistent.
    #[test]
    fn power_energy_consistency(p in 1e-12f64..1.0, t in 1e-9f64..1.0) {
        let e: Joules = Watts(p) * Seconds(t);
        prop_assert!(((e / Seconds(t)).0 - p).abs() <= 1e-12 * p);
        prop_assert!(((e / Watts(p)).0 - t).abs() <= 1e-12 * t);
    }

    /// Current scaling is linear in both factors.
    #[test]
    fn scalar_multiplication_commutes(i in -1.0f64..1.0, k in 0.0f64..100.0) {
        prop_assert_eq!(Amps(i) * k, k * Amps(i));
    }

    /// linspace: exact endpoints, requested length, uniform spacing.
    #[test]
    fn linspace_properties(a in -1e3f64..1e3, span in 1e-6f64..1e3, n in 2usize..200) {
        let b = a + span;
        let pts = linspace(a, b, n);
        prop_assert_eq!(pts.len(), n);
        prop_assert_eq!(pts[0], a);
        prop_assert_eq!(pts[n - 1], b);
        let step = (b - a) / (n - 1) as f64;
        for (i, w) in pts.windows(2).enumerate() {
            prop_assert!(((w[1] - w[0]) - step).abs() < 1e-9 * step.abs() + 1e-12, "at {i}");
        }
    }

    /// logspace: strictly increasing, all positive, exact endpoints.
    #[test]
    fn logspace_properties(a_exp in -12.0f64..3.0, decades in 0.1f64..10.0, n in 2usize..100) {
        let a = 10f64.powf(a_exp);
        let b = a * 10f64.powf(decades);
        let pts = logspace(a, b, n);
        prop_assert_eq!(pts.len(), n);
        prop_assert!((pts[0] - a).abs() <= 1e-12 * a);
        prop_assert!((pts[n - 1] - b).abs() <= 1e-9 * b);
        for w in pts.windows(2) {
            prop_assert!(w[1] > w[0]);
            prop_assert!(w[0] > 0.0);
        }
        // Constant ratio between consecutive points.
        if n > 2 {
            let r0 = pts[1] / pts[0];
            for w in pts.windows(2) {
                prop_assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0);
            }
        }
    }
}
