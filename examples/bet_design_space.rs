//! Break-even-time design-space exploration + Monte-Carlo variation.
//!
//! ```text
//! cargo run --release --example bet_design_space [mc_samples]
//! ```
//!
//! Two studies beyond the paper's nominal analysis:
//!
//! 1. **Store-pulse design space** — the BET as a function of the store
//!    current margin (via `V_SR`) and the pulse duration, showing the
//!    energy/reliability trade the paper fixes at 1.5×I_C / 10 ns;
//! 2. **Device variation** — Gaussian `V_th`/TMR/`J_C` spread,
//!    re-simulating the cell per sample and reporting the BET
//!    distribution and any store/restore failures.

use nvpg::cells::design::CellDesign;
use nvpg::core::bet::bet_closed_form;
use nvpg::core::corners::{corner_analysis, Corner};
use nvpg::core::variation::{run_variation, VariationSpec};
use nvpg::core::{Architecture, BenchmarkParams, Bet, Experiments};
use nvpg::units::format_eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mc_samples: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(15);

    let params = BenchmarkParams::fig7_default();

    println!("== store-pulse design space (BET for the 32x32 domain, n_RW = 10)\n");
    println!(
        "{:>8} {:>10} | {:>10} {:>12} {:>12} | {:>12}",
        "V_SR", "pulse", "store ok?", "E_store", "E_restore", "BET(NVPG)"
    );
    for v_sr in [0.55, 0.65, 0.75] {
        for pulse in [5e-9, 10e-9, 20e-9] {
            let mut design = CellDesign::table1();
            design.conditions.v_sr = v_sr;
            design.conditions.store_duration = pulse;
            let exp = Experiments::new(design)?;
            let ch = exp.characterization();
            let bet = match bet_closed_form(exp.model(), Architecture::Nvpg, &params) {
                Bet::At(t) => format_eng(t.0, "s"),
                other => format!("{other:?}"),
            };
            println!(
                "{:>7}V {:>10} | {:>10} {:>12} {:>12} | {:>12}",
                v_sr,
                format_eng(pulse, "s"),
                if ch.store_ok { "yes" } else { "NO" },
                format_eng(ch.e_store, "J"),
                format_eng(ch.e_restore, "J"),
                if ch.store_ok { bet } else { "-".into() },
            );
        }
    }
    println!(
        "\nreading: under-driven or too-short pulses genuinely fail to switch the\n\
         MTJs (store ok = NO); over-long pulses burn energy linearly and push the\n\
         BET up. The paper's 1.5x I_C x 10 ns sits at the knee.\n"
    );

    println!("== process corners (30 mV V_th steps)\n");
    println!(
        "{:>6} | {:>12} {:>12} {:>12} | {:>10}",
        "corner", "P_normal", "P_sleep", "BET(NVPG)", "margins"
    );
    for r in corner_analysis(&CellDesign::table1(), 0.03, &Corner::ALL, &params)? {
        let sp = r.characterization.static_power;
        println!(
            "{:>6} | {:>12} {:>12} {:>12} | {:>10}",
            r.corner.to_string(),
            format_eng(sp.p_nv_normal, "W"),
            format_eng(sp.p_nv_sleep, "W"),
            r.bet.map_or("-".into(), |t| format_eng(t, "s")),
            if r.characterization.store_ok && r.characterization.restore_ok {
                "ok"
            } else {
                "FAIL"
            },
        );
    }
    println!();

    println!("== Monte-Carlo device variation ({mc_samples} samples)\n");
    let spec = VariationSpec {
        samples: mc_samples,
        ..VariationSpec::default()
    };
    let out = run_variation(&CellDesign::table1(), &spec, &params)?;
    println!(
        "   sigma(V_th) = {}, sigma(TMR)/TMR = {:.0}%, sigma(J_C)/J_C = {:.0}%",
        format_eng(spec.sigma_vth, "V"),
        spec.sigma_tmr_rel * 100.0,
        spec.sigma_jc_rel * 100.0
    );
    println!(
        "   store failures: {}   restore failures: {}   non-convergent: {}",
        out.store_failures, out.restore_failures, out.simulation_failures
    );
    if let (Some(mean), Some(std)) = (out.mean_bet(), out.std_bet()) {
        println!(
            "   BET over {} surviving samples: mean = {}, sigma = {}",
            out.bets.len(),
            format_eng(mean, "s"),
            format_eng(std, "s")
        );
        let min = out.bets.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = out.bets.iter().cloned().fold(0.0_f64, f64::max);
        println!(
            "   range: {} … {}",
            format_eng(min, "s"),
            format_eng(max, "s")
        );
    }
    Ok(())
}
