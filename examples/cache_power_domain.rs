//! Cache power-domain study — the paper's motivating scenario.
//!
//! ```text
//! cargo run --release --example cache_power_domain
//! ```
//!
//! A lower-level cache is organised as NV-SRAM power domains (the paper
//! suggests ≤ ~10 kB per domain). This example sweeps the domain size
//! from 128 B to 16 kB and, for a workload with bursts of `n_RW` accesses
//! between idle gaps, reports:
//!
//! * the per-cell `E_cyc` of OSR / NVPG / NOF,
//! * each architecture's break-even time,
//! * the largest domain that still has a BET below a given idle budget —
//!   the fine-grained-power-management design rule of §IV.

use nvpg::cells::design::CellDesign;
use nvpg::core::bet::bet_closed_form;
use nvpg::core::{Architecture, BenchmarkParams, Bet, Experiments, PowerDomain};
use nvpg::units::format_eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("characterising the Table I cell...");
    let exp = Experiments::new(CellDesign::table1())?;
    let model = exp.model();

    let n_rw = 100;
    let t_sl = 100e-9;
    let t_sd = 1e-3; // a 1 ms idle gap
    println!(
        "workload: n_RW = {n_rw} access rounds, t_SL = {}, idle gap t_SD = {}\n",
        format_eng(t_sl, "s"),
        format_eng(t_sd, "s")
    );

    println!(
        "{:>8} {:>8} | {:>12} {:>12} {:>12} | {:>12} {:>14}",
        "rows N", "size", "E_OSR", "E_NVPG", "E_NOF", "BET(NVPG)", "BET(store-free)"
    );
    for rows in [32u32, 128, 512, 2048, 4096] {
        let domain = PowerDomain::new(rows, 32);
        let params = BenchmarkParams {
            n_rw,
            t_sl,
            t_sd,
            domain,
            reads_per_write: 1,
            store_free: false,
        };
        let e = |arch| model.e_cyc(arch, &params).0;
        let bet = |store_free| {
            let p = BenchmarkParams {
                store_free,
                ..params
            };
            match bet_closed_form(model, Architecture::Nvpg, &p) {
                Bet::At(t) => format_eng(t.0, "s"),
                other => format!("{other:?}"),
            }
        };
        println!(
            "{:>8} {:>7}B | {:>12} {:>12} {:>12} | {:>12} {:>14}",
            rows,
            domain.bytes(),
            format_eng(e(Architecture::Osr), "J"),
            format_eng(e(Architecture::Nvpg), "J"),
            format_eng(e(Architecture::Nof), "J"),
            bet(false),
            bet(true),
        );
    }

    // Design rule: largest domain whose BET fits a 100 µs idle budget.
    let budget = 100e-6;
    let mut best: Option<u32> = None;
    for rows in (1..=12).map(|k| 1u32 << k) {
        let params = BenchmarkParams {
            n_rw,
            t_sl,
            t_sd: 0.0,
            domain: PowerDomain::new(rows, 32),
            reads_per_write: 1,
            store_free: true,
        };
        if let Bet::At(t) = bet_closed_form(model, Architecture::Nvpg, &params) {
            if t.0 <= budget {
                best = Some(rows);
            }
        }
    }
    match best {
        Some(rows) => println!(
            "\nwith store-free shutdown, domains up to {} B break even within {}",
            PowerDomain::new(rows, 32).bytes(),
            format_eng(budget, "s")
        ),
        None => println!(
            "\nno domain size breaks even within {}",
            format_eng(budget, "s")
        ),
    }

    // Performance check: what NOF costs in time for the same work.
    let params = BenchmarkParams {
        n_rw,
        t_sl,
        t_sd,
        domain: PowerDomain::default_32x32(),
        reads_per_write: 1,
        store_free: false,
    };
    let t_nvpg = model.cycle_duration(Architecture::Nvpg, &params).0;
    let t_nof = model.cycle_duration(Architecture::Nof, &params).0;
    println!(
        "performance: the same benchmark takes {} under NVPG but {} under NOF ({:.1}x slower)",
        format_eng(t_nvpg, "s"),
        format_eng(t_nof, "s"),
        t_nof / t_nvpg
    );
    Ok(())
}
