//! Normally-off microcontroller scenario.
//!
//! ```text
//! cargo run --release --example normally_off_mcu
//! ```
//!
//! The paper concedes that NOF is "literally applicable to normally-off
//! applications such as specific microcontrollers with very long standby
//! intervals between occasional operations" — while being unsuitable for
//! always-on parts. This example quantifies that boundary: a duty-cycled
//! MCU wakes up, performs a burst of `n_RW` access rounds on its working
//! SRAM, and sleeps for `t_standby`. We sweep the standby interval from
//! 10 µs to 10 s and report the average power of each architecture, and
//! the standby interval beyond which each nonvolatile scheme beats the
//! volatile baseline.

use nvpg::cells::design::CellDesign;
use nvpg::core::policy::IdleDistribution;
use nvpg::core::workload::{simulate_trace, GatingPolicy, Workload};
use nvpg::core::{Architecture, BenchmarkParams, Experiments, PowerDomain};
use nvpg::units::{format_eng, logspace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("characterising the Table I cell...");
    let exp = Experiments::new(CellDesign::table1())?;
    let model = exp.model();

    let n_rw = 10; // a short housekeeping burst
    let domain = PowerDomain::default_32x32();

    println!("duty-cycled MCU: burst of {n_rw} rounds, then standby (32x32 domain)\n");
    println!(
        "{:>12} | {:>12} {:>12} {:>12} | winner",
        "standby", "P_OSR", "P_NVPG", "P_NOF"
    );

    let mut nvpg_cross: Option<f64> = None;
    let mut nof_cross: Option<f64> = None;

    for t_standby in logspace(10e-6, 10.0, 13) {
        let params = BenchmarkParams {
            n_rw,
            t_sl: 0.0,
            t_sd: t_standby,
            domain,
            reads_per_write: 1,
            store_free: false,
        };
        // Average power = cycle energy / cycle duration.
        let avg = |arch| {
            let e = model.e_cyc(arch, &params).0;
            let t = model.cycle_duration(arch, &params).0;
            e / t
        };
        let (p_osr, p_nvpg, p_nof) = (
            avg(Architecture::Osr),
            avg(Architecture::Nvpg),
            avg(Architecture::Nof),
        );
        let winner = if p_nvpg <= p_osr && p_nvpg <= p_nof {
            "NVPG"
        } else if p_osr <= p_nof {
            "OSR"
        } else {
            "NOF"
        };
        if p_nvpg < p_osr && nvpg_cross.is_none() {
            nvpg_cross = Some(t_standby);
        }
        if p_nof < p_osr && nof_cross.is_none() {
            nof_cross = Some(t_standby);
        }
        println!(
            "{:>12} | {:>12} {:>12} {:>12} | {winner}",
            format_eng(t_standby, "s"),
            format_eng(p_osr, "W"),
            format_eng(p_nvpg, "W"),
            format_eng(p_nof, "W"),
        );
    }

    println!();
    match nvpg_cross {
        Some(t) => println!(
            "NVPG beats the volatile baseline for standbys ≥ {}",
            format_eng(t, "s")
        ),
        None => println!("NVPG never beat the baseline in the swept range"),
    }
    match nof_cross {
        Some(t) => println!(
            "NOF beats the volatile baseline for standbys ≥ {}",
            format_eng(t, "s")
        ),
        None => println!("NOF never beat the baseline in the swept range"),
    }
    println!(
        "\nthe paper's conclusion in one line: even where NOF wins against OSR,\n\
         NVPG wins harder — NOF's only niche is tolerating *unannounced* power loss."
    );

    // Trace-driven check: replay a sampled sensor-style workload (heavy-
    // tailed idles) under the runtime gating policies.
    println!("\ntrace replay: 500 bursts, Pareto(1.5) idles, x_min = 50 µs\n");
    let params = BenchmarkParams {
        n_rw,
        t_sl: 0.0,
        t_sd: 0.0,
        domain,
        reads_per_write: 1,
        store_free: false,
    };
    let workload = Workload::synthetic(
        7,
        500,
        10.0,
        IdleDistribution::Pareto {
            alpha: 1.5,
            x_min: 50e-6,
        },
    );
    let pm = nvpg::core::policy::PolicyModel::from_energy_model(exp.model(), &params);
    for (label, policy) in [
        ("never gate (OSR)", GatingPolicy::NeverGate),
        ("always gate (NOF-like)", GatingPolicy::AlwaysGate),
        ("timeout = BET", GatingPolicy::Timeout(pm.break_even())),
        ("oracle (lower bound)", GatingPolicy::Oracle),
    ] {
        let out = simulate_trace(exp.model(), &params, policy, &workload);
        println!(
            "   {label:<24} E = {:>10}  avg P = {:>10}  gates = {}",
            format_eng(out.energy, "J"),
            format_eng(out.avg_power, "W"),
            out.gates
        );
    }
    Ok(())
}
