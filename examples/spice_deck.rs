//! SPICE-deck workflow: parse → DC → transient → AC → SVG.
//!
//! ```text
//! cargo run --release --example spice_deck [out.svg]
//! ```
//!
//! Demonstrates the simulator as a standalone tool, independent of the
//! NV-SRAM study: a two-stage RC filter written as a SPICE deck with a
//! subcircuit, solved for its operating point, stepped through a pulse
//! transient, swept in AC, and rendered to an SVG Bode plot.

use nvpg::circuit::parser::parse_deck;
use nvpg::circuit::vcd::to_vcd;
use nvpg::circuit::{ac::ac_sweep, dc, transient, TransientOptions};
use nvpg::units::{format_eng, logspace};
use nvpg_bench::svg::render_svg;
use nvpg_core::{Figure, Series};

const DECK: &str = "\
* two-stage RC low-pass built from a subcircuit
.subckt stage in out
Rs in out 10k
Cs out 0 1p
.ends
V1 vin 0 PULSE(0 1 2n 100p 100p 200n 500n)
Xa vin mid stage
Xb mid out stage
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let svg_path = std::env::args().nth(1);

    let mut ckt = parse_deck(DECK)?;
    println!(
        "parsed deck: {} elements, {} nodes",
        ckt.element_count(),
        ckt.node_count()
    );

    // DC operating point (pulse starts at 0).
    let op = dc::operating_point(&mut ckt, &Default::default())?;
    println!(
        "dc: v(mid) = {:.3} V, v(out) = {:.3} V",
        op.voltage_by_name("mid").unwrap(),
        op.voltage_by_name("out").unwrap()
    );

    // Transient: the pulse charges both stages.
    let tr = transient::transient(&mut ckt, &TransientOptions::to(120e-9), &op)?.trace;
    let t90 = tr.crossing("v(out)", 0.9, true, 0.0)?;
    match t90 {
        Some(t) => println!("transient: v(out) reaches 0.9 V at {}", format_eng(t, "s")),
        None => println!("transient: v(out) did not reach 0.9 V in the window"),
    }
    // Waveforms for GTKWave/Surfer.
    std::fs::write("/tmp/spice_deck.vcd", to_vcd(&tr, "spice_deck"))?;
    println!("wrote /tmp/spice_deck.vcd ({} samples)", tr.len());

    // AC: Bode magnitude of the two-pole response.
    let op0 = dc::operating_point(&mut ckt, &Default::default())?;
    let freqs = logspace(1e5, 1e9, 61);
    let sweep = ac_sweep(&mut ckt, &op0, "v1", &freqs)?;
    let mag = sweep.magnitude("out")?;
    let fc = mag
        .iter()
        .find(|&&(_, m)| m < std::f64::consts::FRAC_1_SQRT_2)
        .map(|&(f, _)| f);
    if let Some(fc) = fc {
        println!("ac: -3 dB at ≈ {}", format_eng(fc, "Hz"));
    }

    if let Some(path) = svg_path {
        let fig = Figure {
            id: "spice_deck".into(),
            caption: "two-stage RC filter Bode magnitude".into(),
            x_label: "f (Hz)".into(),
            y_label: "|v(out)/v(in)|".into(),
            log_x: true,
            log_y: true,
            series: vec![
                Series::new("|H(f)| stage 2", mag),
                Series::new("|H(f)| stage 1", sweep.magnitude("mid")?),
            ],
        };
        std::fs::write(&path, render_svg(&fig))?;
        println!("wrote {path}");
    }
    Ok(())
}
