//! Quickstart: one NV-SRAM cell through a full nonvolatile power cycle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's Table I cell, latches `Q = 1`, stores it into the
//! MTJs, powers the cell off, wakes it up, and confirms the data
//! survived — then asks the architecture model what shutdown duration
//! makes that round trip worth its energy (the break-even time).

use nvpg::cells::bench::CellBench;
use nvpg::cells::cell::{CellKind, MtjConfig};
use nvpg::cells::design::CellDesign;
use nvpg::core::bet::bet_closed_form;
use nvpg::core::{Architecture, BenchmarkParams, Bet, Experiments};
use nvpg::units::{format_eng, Joules};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = CellDesign::table1();

    // --- Cell level: a real power cycle through the transient simulator.
    println!("1. building the PS-FinFET NV-SRAM cell (Table I design)");
    let mut bench = CellBench::new(design, CellKind::NvSram, true, MtjConfig::stored(false))?;
    println!("   latched Q = {}", bench.data() as u8);

    println!("2. storing the state into the MTJs (two-step CIMS store)");
    let store_phases = bench.store()?;
    let e_store: Joules = store_phases.iter().map(|p| p.energy).sum();
    println!(
        "   MTJ pattern now {:?}, store energy = {e_store}",
        bench.mtj_states().expect("NV cell")
    );

    println!("3. shutdown (super cutoff) — the cell loses its volatile state");
    bench.shutdown_enter(true, 3e-9)?;
    bench.idle(500e-9)?; // let the virtual rail collapse
    let (q, qb) = bench.storage_voltages();
    println!("   storage nodes collapsed to q = {q:.3} V, qb = {qb:.3} V");

    println!("4. restore — the MTJ imbalance re-latches the bistable");
    let restore = bench.restore()?;
    println!(
        "   woke up with Q = {} (restore energy = {})",
        bench.data() as u8,
        restore.energy
    );
    assert!(bench.data(), "data must survive the power cycle");

    // --- Architecture level: when is that round trip worth it?
    println!("5. characterising the cell and solving the break-even time");
    let exp = Experiments::new(design)?;
    let params = BenchmarkParams::fig7_default();
    match bet_closed_form(exp.model(), Architecture::Nvpg, &params) {
        Bet::At(t) => println!(
            "   NVPG break-even time for a 32x32 domain at n_RW = {}: {}",
            params.n_rw,
            format_eng(t.0, "s")
        ),
        other => println!("   {other:?}"),
    }
    println!("done — see the other examples for the full comparisons.");
    Ok(())
}
